//! Workload applications for stochastic-NoC evaluation.
//!
//! The applications the paper uses to evaluate on-chip stochastic
//! communication, each built on the [`noc_fabric::IpCore`] interface and
//! run through the [`stochastic_noc::Simulation`] engine:
//!
//! * [`master_slave`] — the Master–Slave π computation of §4.1.1
//!   (Equation 4), with optional slave replication for tile-crash
//!   tolerance;
//! * [`fft2d`] — the parallel two-dimensional FFT of §4.1.2 (scatter the
//!   row blocks, transform in parallel, gather and assemble), with worker
//!   replication;
//! * [`mp3`] — the MP3-style encoder pipeline of §4.2 (Figure 4-7):
//!   signal acquisition → psychoacoustic model + MDCT → iterative
//!   encoding → bit reservoir → output, with output bit-rate monitoring;
//! * [`beamforming`] — the acoustic delay-and-sum beamforming traffic of
//!   Chapter 5's on-chip diversity experiment.
//!
//! # Examples
//!
//! ```
//! use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
//!
//! let outcome = MasterSlaveApp::new(MasterSlaveParams::default()).run();
//! assert!(outcome.completed);
//! let pi = outcome.pi_estimate.expect("all partial sums collected");
//! assert!((pi - std::f64::consts::PI).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beamforming;
pub mod fft2d;
pub mod mapping;
pub mod master_slave;
pub mod mp3;
pub mod reliable;
pub mod wire;
