//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on value types
//! (no serializer backend is available in the offline build environment),
//! so the traits are markers and the derives expand to nothing. The
//! `derive` feature exists so workspace manifests written against real
//! serde keep working unchanged.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
