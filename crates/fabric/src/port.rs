//! Port directions of a grid tile — the four edges of Figure 3-5, each
//! with its own buffer and RND forwarding circuit in the paper's tile
//! design.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::LinkId;
use crate::topology::Grid2d;

/// One of the four edges of a grid tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards smaller `y`.
    North,
    /// Towards larger `x`.
    East,
    /// Towards larger `y`.
    South,
    /// Towards smaller `x`.
    West,
}

impl Direction {
    /// All four directions, clockwise from north.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite edge (the receive port matching this send port).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// The `(dx, dy)` step this direction takes on the grid.
    pub fn delta(self) -> (isize, isize) {
        match self {
            Direction::North => (0, -1),
            Direction::East => (1, 0),
            Direction::South => (0, 1),
            Direction::West => (-1, 0),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::East => "east",
            Direction::South => "south",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

impl Grid2d {
    /// Which of the sender's four ports a directed link leaves through.
    ///
    /// # Panics
    ///
    /// Panics if the link id is outside this grid's topology.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_fabric::{Direction, Grid2d, NodeId};
    ///
    /// let grid = Grid2d::new(4, 4);
    /// // Interior tile 5 at (1,1) has all four ports wired:
    /// let mut dirs: Vec<Direction> = grid
    ///     .topology()
    ///     .out_links(NodeId(5))
    ///     .iter()
    ///     .map(|&l| grid.port_of(l))
    ///     .collect();
    /// dirs.sort();
    /// assert_eq!(dirs.len(), 4);
    /// ```
    pub fn port_of(&self, link: LinkId) -> Direction {
        let link = self.topology().link(link);
        let (fx, fy) = self.coordinates(link.from);
        let (tx, ty) = self.coordinates(link.to);
        let dx = tx as isize - fx as isize;
        let dy = ty as isize - fy as isize;
        match (dx, dy) {
            (0, -1) => Direction::North,
            (1, 0) => Direction::East,
            (0, 1) => Direction::South,
            (-1, 0) => Direction::West,
            other => unreachable!("grid link with step {other:?}"),
        }
    }

    /// The outgoing link of `node` in `direction`, if the tile has that
    /// port wired (edge tiles do not).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the grid.
    pub fn link_towards(&self, node: crate::node::NodeId, direction: Direction) -> Option<LinkId> {
        self.topology()
            .out_links(node)
            .iter()
            .copied()
            .find(|&l| self.port_of(l) == direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn deltas_cancel_with_opposites() {
        for d in Direction::ALL {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn interior_tile_has_all_four_ports() {
        let grid = Grid2d::new(4, 4);
        let node = grid.node_at(1, 1);
        let mut dirs: Vec<Direction> = grid
            .topology()
            .out_links(node)
            .iter()
            .map(|&l| grid.port_of(l))
            .collect();
        dirs.sort();
        let mut expect = Direction::ALL.to_vec();
        expect.sort();
        assert_eq!(dirs, expect);
    }

    #[test]
    fn corner_tile_misses_two_ports() {
        let grid = Grid2d::new(4, 4);
        let origin = grid.node_at(0, 0);
        assert!(grid.link_towards(origin, Direction::North).is_none());
        assert!(grid.link_towards(origin, Direction::West).is_none());
        assert!(grid.link_towards(origin, Direction::East).is_some());
        assert!(grid.link_towards(origin, Direction::South).is_some());
    }

    #[test]
    fn link_towards_reaches_the_right_neighbour() {
        let grid = Grid2d::new(4, 4);
        let node = grid.node_at(2, 2);
        let east = grid
            .link_towards(node, Direction::East)
            .expect("interior tile");
        assert_eq!(grid.topology().link(east).to, grid.node_at(3, 2));
        let north = grid
            .link_towards(node, Direction::North)
            .expect("interior tile");
        assert_eq!(grid.topology().link(north).to, grid.node_at(2, 1));
    }

    #[test]
    fn every_grid_link_has_a_direction() {
        let grid = Grid2d::new(5, 3);
        for link in grid.topology().links() {
            let d = grid.port_of(link.id);
            // Following the direction from `from` lands on `to`.
            let (fx, fy) = grid.coordinates(link.from);
            let (dx, dy) = d.delta();
            let target = grid.node_at((fx as isize + dx) as usize, (fy as isize + dy) as usize);
            assert_eq!(target, link.to);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Direction::North.to_string(), "north");
        assert_eq!(NodeId(0).to_string(), "n0"); // re-export sanity
    }
}
