//! The paper's Equation 2 and Equation 3, plus the energy×delay product.

use crate::units::{Bits, Hertz, Joules, Seconds};

/// Computes the optimal duration of a gossip round (**Equation 2**):
/// `T_R = N_packets/round · S / f`.
///
/// `packets_per_round` is the application-dependent average number of
/// packets a link sends per round, `packet_size` the average packet size,
/// and `link_frequency` the maximum frequency of any link.
///
/// # Examples
///
/// ```
/// use noc_energy::{round_duration, Bits, Hertz};
///
/// // 2 packets of 64 bits per round over a 381 MHz link:
/// let tr = round_duration(2.0, Bits(64), Hertz::from_mhz(381.0));
/// assert!((tr.seconds() - 2.0 * 64.0 / 381.0e6).abs() < 1e-15);
/// ```
///
/// # Panics
///
/// Panics if `packets_per_round` is negative or `link_frequency` is not
/// strictly positive.
pub fn round_duration(packets_per_round: f64, packet_size: Bits, link_frequency: Hertz) -> Seconds {
    assert!(
        packets_per_round >= 0.0,
        "packets per round cannot be negative"
    );
    assert!(
        link_frequency.hertz() > 0.0,
        "link frequency must be positive"
    );
    Seconds(packets_per_round * packet_size.bits() as f64 / link_frequency.hertz())
}

/// Computes the communication energy (**Equation 3**):
/// `E = N_packets · S · E_bit`.
///
/// `packets` is the total number of packet transmissions observed in the
/// network (every hop counts — each link traversal toggles wires), `packet
/// size` the average size and `energy_per_bit` the technology parameter.
///
/// # Examples
///
/// ```
/// use noc_energy::{communication_energy, Bits, Joules};
///
/// let e = communication_energy(1000, Bits(128), Joules::new(2.4e-10));
/// assert!((e.joules() - 1000.0 * 128.0 * 2.4e-10).abs() < 1e-15);
/// ```
pub fn communication_energy(packets: u64, packet_size: Bits, energy_per_bit: Joules) -> Joules {
    Joules(packets as f64 * packet_size.bits() as f64 * energy_per_bit.joules())
}

/// The energy×delay figure of merit used in §4.1.4 (J·s, typically quoted
/// per bit).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyDelay(pub f64);

impl EnergyDelay {
    /// The raw value in joule-seconds.
    pub fn joule_seconds(self) -> f64 {
        self.0
    }
}

/// Computes the energy×delay product of a transfer.
///
/// # Examples
///
/// ```
/// use noc_energy::{energy_delay_product, Joules, Seconds};
///
/// let ed = energy_delay_product(Joules::new(2.4e-10), Seconds::new(29.0e-3));
/// assert!(ed.joule_seconds() > 0.0);
/// ```
pub fn energy_delay_product(energy: Joules, delay: Seconds) -> EnergyDelay {
    EnergyDelay(energy.joules() * delay.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyLibrary;

    #[test]
    fn equation_2_matches_hand_computation() {
        // 3 packets/round, 100-bit packets, 50 MHz link: 3*100/50e6 = 6 us.
        let tr = round_duration(3.0, Bits(100), Hertz::from_mhz(50.0));
        assert!((tr.micros() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_packets_per_round_gives_zero_duration() {
        let tr = round_duration(0.0, Bits(64), Hertz::from_mhz(100.0));
        assert_eq!(tr.seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_packet_rate_rejected() {
        let _ = round_duration(-1.0, Bits(64), Hertz::from_mhz(100.0));
    }

    #[test]
    fn equation_3_scales_linearly_in_packets() {
        let e1 = communication_energy(100, Bits(64), Joules::new(1e-10));
        let e2 = communication_energy(200, Bits(64), Joules::new(1e-10));
        assert!((e2.joules() - 2.0 * e1.joules()).abs() < 1e-20);
    }

    #[test]
    fn zero_packets_dissipate_nothing() {
        let e = communication_energy(0, Bits(64), Joules::new(1e-10));
        assert_eq!(e, Joules::ZERO);
    }

    #[test]
    fn paper_energy_delay_shapes_hold() {
        // The paper reports ~7e-12 J*s/bit for the NoC and ~133e-12 for the
        // bus; reproduce the ordering (not the absolute values) from the
        // technology points alone: per-bit energy times per-bit transfer
        // time at max frequency.
        let bus = TechnologyLibrary::BUS_0_25UM;
        let link = TechnologyLibrary::NOC_LINK_0_25UM;
        let ed_bus = energy_delay_product(bus.energy_per_bit, bus.max_frequency.period());
        let ed_link = energy_delay_product(link.energy_per_bit, link.max_frequency.period());
        assert!(ed_link.joule_seconds() < ed_bus.joule_seconds());
        // Even with stochastic retransmission overhead far larger than the
        // paper's 19x raw gap, the link still wins: the raw ratio is ~80.
        let ratio = ed_bus.joule_seconds() / ed_link.joule_seconds();
        assert!(ratio > 19.0, "raw energy-delay ratio was {ratio}");
    }
}
