//! The MP3-style encoder pipeline of §4.2 (Figure 4-7).
//!
//! Six pipeline IPs mapped onto NoC tiles, communicating only through
//! stochastic gossip:
//!
//! ```text
//! SignalAcquisition ──frames──► PsychoacousticModel ──weights──► IterativeEncoding
//!         │                                                          ▲      │
//!         └───────────frames──► MDCT ────────coefficients────────────┘      │granules
//!                                                                           ▼
//!                                                   BitReservoir ──► Output
//! ```
//!
//! As documented in DESIGN.md, the paper's LAME-over-PVM setup is
//! substituted by this from-scratch pipeline over synthetic PCM: the same
//! module graph, message kinds and rate behaviour, which is what the
//! communication experiments measure. The Output IP records the arrival
//! round of every encoded granule, giving the bit-rate and jitter curves
//! of Figures 4-8 through 4-11.

use std::cell::RefCell;
use std::rc::Rc;

use noc_dsp::bitstream::BitReservoir;
use noc_dsp::psycho::PsychoModel;
use noc_dsp::quantize::{code_into_writer, rate_control};
use noc_dsp::signal::SignalGenerator;
use noc_dsp::MdctFrame;
use noc_fabric::{Grid2d, IpContext, IpCore, NodeId};
use noc_faults::{CrashSchedule, FaultModel};
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

use crate::wire::{put_f64_slice, put_u32, PayloadReader};

const TAG_FRAME: u8 = 21;
const TAG_WEIGHTS: u8 = 22;
const TAG_COEFFS: u8 = 23;
const TAG_GRANULE: u8 = 24;
const TAG_BITS: u8 = 25;

/// Samples per pipeline frame (one MDCT hop).
pub const FRAME_SAMPLES: usize = 64;
/// Psychoacoustic analysis bands.
pub const BANDS: usize = 16;

/// Parameters of an MP3-pipeline run.
#[derive(Debug, Clone)]
pub struct Mp3Params {
    /// Grid side (4 in the paper's NoC experiments).
    pub grid_side: usize,
    /// Number of audio frames to encode.
    pub frames: u32,
    /// Nominal bit budget per frame (before reservoir adjustment).
    pub bits_per_frame: usize,
    /// Bit-reservoir capacity.
    pub reservoir_capacity: usize,
    /// Rounds between consecutive source frames (pacing).
    pub frame_interval: u64,
    /// Protocol configuration.
    pub config: StochasticConfig,
    /// Fault model.
    pub fault_model: FaultModel,
    /// Explicit crash events.
    pub crash_schedule: CrashSchedule,
    /// RNG seed (also varies the programme material's noise).
    pub seed: u64,
}

impl Default for Mp3Params {
    fn default() -> Self {
        Self {
            grid_side: 4,
            frames: 24,
            bits_per_frame: 400,
            reservoir_capacity: 1600,
            frame_interval: 2,
            config: StochasticConfig::default().with_max_rounds(600),
            fault_model: FaultModel::none(),
            crash_schedule: CrashSchedule::new(),
            seed: 0,
        }
    }
}

/// Tile mapping of the six pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mp3Mapping {
    /// Signal acquisition (PCM source).
    pub acquisition: NodeId,
    /// Psychoacoustic model.
    pub psycho: NodeId,
    /// MDCT filterbank.
    pub mdct: NodeId,
    /// Iterative (rate-loop) encoder.
    pub encoder: NodeId,
    /// Bit reservoir.
    pub reservoir: NodeId,
    /// Output / bitstream sink.
    pub output: NodeId,
}

impl Mp3Mapping {
    /// The default placement on a 4×4 grid: stages spread across the
    /// fabric so every hop exercises the network.
    pub fn default_on_grid(side: usize) -> Self {
        assert!(side >= 3, "mp3 pipeline needs at least a 3x3 grid");
        let n = |x: usize, y: usize| NodeId(y * side + x);
        Self {
            acquisition: n(0, 0),
            psycho: n(side - 1, 0),
            mdct: n(0, side - 1),
            encoder: n(side / 2, side / 2),
            reservoir: n(side - 1, side - 1),
            output: n(side - 1, side / 2),
        }
    }

    /// All six tiles.
    pub fn tiles(&self) -> [NodeId; 6] {
        [
            self.acquisition,
            self.psycho,
            self.mdct,
            self.encoder,
            self.reservoir,
            self.output,
        ]
    }
}

/// Outcome of an MP3 run.
#[derive(Debug, Clone)]
pub struct Mp3Outcome {
    /// Did every frame reach the output within the round budget?
    pub completed: bool,
    /// Round at which the last frame arrived at the output.
    pub completion_round: Option<u64>,
    /// Frames that reached the output.
    pub frames_delivered: u32,
    /// Frames requested.
    pub frames_requested: u32,
    /// Total encoded bits that reached the output.
    pub output_bits: u64,
    /// Per-frame arrival round at the output (indexed by frame id).
    pub arrival_rounds: Vec<Option<u64>>,
    /// Per-frame encoded size in bits.
    pub frame_bits: Vec<Option<u32>>,
    /// Per-frame coded granule that reached the output: the quantizer
    /// step and the Elias-gamma coded coefficient bytes.
    pub granules: Vec<Option<(f64, Vec<u8>)>>,
    /// Full engine report.
    pub report: SimulationReport,
}

impl Mp3Outcome {
    /// Average output bit-rate in bits per round, measured from first to
    /// last delivered frame. `None` if fewer than two frames arrived.
    pub fn bitrate_per_round(&self) -> Option<f64> {
        let arrivals: Vec<u64> = self.arrival_rounds.iter().flatten().copied().collect();
        if arrivals.len() < 2 {
            return None;
        }
        let first = *arrivals.iter().min().expect("non-empty");
        let last = *arrivals.iter().max().expect("non-empty");
        if last == first {
            return None;
        }
        Some(self.output_bits as f64 / (last - first) as f64)
    }

    /// Decodes one delivered granule back into MDCT coefficients.
    ///
    /// Returns `None` if the frame never arrived or its bitstream is
    /// truncated. This is the decoder half of the "Output" stage: proof
    /// that what crossed the NoC is a playable bitstream, not a byte
    /// count.
    pub fn decode_granule(&self, frame: usize) -> Option<Vec<f64>> {
        let (step, bytes) = self.granules.get(frame)?.as_ref()?;
        let mut reader = noc_dsp::bitstream::BitReader::new(bytes);
        let quants: Option<Vec<i32>> = (0..FRAME_SAMPLES)
            .map(|_| reader.read_signed_gamma())
            .collect();
        Some(noc_dsp::quantize::dequantize_all(&quants?, *step))
    }

    /// Jitter: standard deviation of inter-frame arrival gaps (rounds).
    pub fn jitter(&self) -> Option<f64> {
        let mut arrivals: Vec<u64> = self.arrival_rounds.iter().flatten().copied().collect();
        if arrivals.len() < 3 {
            return None;
        }
        arrivals.sort_unstable();
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        Some(var.sqrt())
    }
}

// ---------------------------------------------------------------------
// Pipeline IPs
// ---------------------------------------------------------------------

struct AcquisitionIp {
    psycho: NodeId,
    mdct: NodeId,
    generator: SignalGenerator,
    frames: u32,
    interval: u64,
    sent: u32,
}

impl IpCore for AcquisitionIp {
    fn on_round(&mut self, ctx: &mut IpContext) {
        if self.sent >= self.frames || !ctx.round().is_multiple_of(self.interval) {
            return;
        }
        let frame = self.generator.next_frame(FRAME_SAMPLES);
        let mut payload = vec![TAG_FRAME];
        put_u32(&mut payload, self.sent);
        put_f64_slice(&mut payload, &frame);
        ctx.send(self.psycho, payload.clone());
        ctx.send(self.mdct, payload);
        self.sent += 1;
    }

    fn is_done(&self) -> bool {
        self.sent >= self.frames
    }

    fn name(&self) -> &str {
        "acquisition"
    }
}

struct PsychoIp {
    encoder: NodeId,
    model: PsychoModel,
    frames: u32,
    processed: u32,
}

impl IpCore for PsychoIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_FRAME) {
            return;
        }
        let Some(frame_id) = r.u32() else { return };
        let Some(samples) = r.f64_slice() else { return };
        if samples.len() != FRAME_SAMPLES {
            return;
        }
        let analysis = self.model.analyze(&samples);
        let weights = analysis.allocation_weights();
        let mut out = vec![TAG_WEIGHTS];
        put_u32(&mut out, frame_id);
        put_f64_slice(&mut out, &weights);
        ctx.send(self.encoder, out);
        self.processed += 1;
    }

    fn is_done(&self) -> bool {
        self.processed >= self.frames
    }

    fn name(&self) -> &str {
        "psychoacoustic"
    }
}

struct MdctIp {
    encoder: NodeId,
    engine: MdctFrame,
    frames: u32,
    processed: u32,
}

impl IpCore for MdctIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_FRAME) {
            return;
        }
        let Some(frame_id) = r.u32() else { return };
        let Some(samples) = r.f64_slice() else { return };
        if samples.len() != FRAME_SAMPLES {
            return;
        }
        let coeffs = self.engine.analyze(&samples);
        let mut out = vec![TAG_COEFFS];
        put_u32(&mut out, frame_id);
        put_f64_slice(&mut out, &coeffs);
        ctx.send(self.encoder, out);
        self.processed += 1;
    }

    fn is_done(&self) -> bool {
        self.processed >= self.frames
    }

    fn name(&self) -> &str {
        "mdct"
    }
}

struct EncoderIp {
    reservoir: NodeId,
    bits_per_frame: usize,
    frames: u32,
    pending_weights: std::collections::BTreeMap<u32, Vec<f64>>,
    pending_coeffs: std::collections::BTreeMap<u32, Vec<f64>>,
    encoded: u32,
}

impl EncoderIp {
    fn try_encode(&mut self, ctx: &mut IpContext, frame_id: u32) {
        let (Some(weights), Some(coeffs)) = (
            self.pending_weights.get(&frame_id),
            self.pending_coeffs.get(&frame_id),
        ) else {
            return;
        };
        // Perceptual weighting: scale coefficients by per-band weights so
        // the rate loop spends bits where the psychoacoustic model wants
        // them (a simplification of MP3's per-band scalefactors).
        let per_band = coeffs.len() / weights.len().max(1);
        let weighted: Vec<f64> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let band = (i / per_band.max(1)).min(weights.len() - 1);
                c * (0.5 + weights[band] * weights.len() as f64)
            })
            .collect();
        let result = rate_control(&weighted, self.bits_per_frame);
        let writer = code_into_writer(&result.quantized);
        let mut out = vec![TAG_GRANULE];
        put_u32(&mut out, frame_id);
        put_u32(&mut out, result.bits as u32);
        crate::wire::put_f64(&mut out, result.step);
        out.extend_from_slice(writer.as_bytes());
        ctx.send(self.reservoir, out);
        self.pending_weights.remove(&frame_id);
        self.pending_coeffs.remove(&frame_id);
        self.encoded += 1;
    }
}

impl IpCore for EncoderIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let Some(tag) = r.u8() else { return };
        let Some(frame_id) = r.u32() else { return };
        let Some(values) = r.f64_slice() else { return };
        match tag {
            TAG_WEIGHTS if values.len() == BANDS => {
                self.pending_weights.insert(frame_id, values);
            }
            TAG_COEFFS if values.len() == FRAME_SAMPLES => {
                self.pending_coeffs.insert(frame_id, values);
            }
            _ => return,
        }
        self.try_encode(ctx, frame_id);
    }

    fn is_done(&self) -> bool {
        self.encoded >= self.frames
    }

    fn name(&self) -> &str {
        "iterative-encoder"
    }
}

struct ReservoirIp {
    output: NodeId,
    reservoir: BitReservoir,
    nominal_bits: usize,
    frames: u32,
    processed: u32,
}

impl IpCore for ReservoirIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_GRANULE) {
            return;
        }
        let (Some(frame_id), Some(bits), Some(step)) = (r.u32(), r.u32(), r.f64()) else {
            return;
        };
        let bits = bits as usize;
        // Smooth the rate: easy frames donate surplus, hard frames draw.
        let final_bits = if bits < self.nominal_bits {
            self.reservoir.deposit(self.nominal_bits - bits);
            bits
        } else {
            let need = bits - self.nominal_bits;
            let granted = self.reservoir.withdraw(need);
            self.nominal_bits + granted
        };
        let mut out = vec![TAG_BITS];
        put_u32(&mut out, frame_id);
        put_u32(&mut out, final_bits as u32);
        crate::wire::put_f64(&mut out, step);
        let coded_start = payload.len() - r.remaining();
        out.extend_from_slice(&payload[coded_start..]);
        ctx.send(self.output, out);
        self.processed += 1;
    }

    fn is_done(&self) -> bool {
        self.processed >= self.frames
    }

    fn name(&self) -> &str {
        "bit-reservoir"
    }
}

#[derive(Debug)]
struct OutputState {
    arrival_rounds: Vec<Option<u64>>,
    frame_bits: Vec<Option<u32>>,
    /// The actual coded granules: (quantizer step, Elias-gamma bytes).
    granules: Vec<Option<(f64, Vec<u8>)>>,
    delivered: u32,
    completion_round: Option<u64>,
}

struct OutputIp {
    frames: u32,
    state: Rc<RefCell<OutputState>>,
}

impl IpCore for OutputIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_BITS) {
            return;
        }
        let (Some(frame_id), Some(bits), Some(step)) = (r.u32(), r.u32(), r.f64()) else {
            return;
        };
        if frame_id >= self.frames || !step.is_finite() || step <= 0.0 {
            return;
        }
        let mut state = self.state.borrow_mut();
        let slot = frame_id as usize;
        if state.arrival_rounds[slot].is_some() {
            return;
        }
        let coded_start = payload.len() - r.remaining();
        state.arrival_rounds[slot] = Some(ctx.round());
        state.frame_bits[slot] = Some(bits);
        state.granules[slot] = Some((step, payload[coded_start..].to_vec()));
        state.delivered += 1;
        if state.delivered == self.frames {
            state.completion_round = Some(ctx.round());
        }
    }

    fn is_done(&self) -> bool {
        self.state.borrow().delivered >= self.frames
    }

    fn name(&self) -> &str {
        "output"
    }
}

/// A configured MP3-pipeline application.
///
/// # Examples
///
/// ```
/// use noc_apps::mp3::{Mp3App, Mp3Params};
///
/// let params = Mp3Params {
///     frames: 8,
///     ..Mp3Params::default()
/// };
/// let outcome = Mp3App::new(params).run();
/// assert!(outcome.completed);
/// assert_eq!(outcome.frames_delivered, 8);
/// ```
#[derive(Debug)]
pub struct Mp3App {
    params: Mp3Params,
    mapping: Mp3Mapping,
}

impl Mp3App {
    /// Creates the application with the default stage mapping.
    ///
    /// # Panics
    ///
    /// Panics if the grid side is below 3 or no frames are requested.
    pub fn new(params: Mp3Params) -> Self {
        assert!(params.frames > 0, "at least one frame must be encoded");
        assert!(params.frame_interval > 0, "frame interval must be positive");
        let mapping = Mp3Mapping::default_on_grid(params.grid_side);
        Self { params, mapping }
    }

    /// The stage mapping in use.
    pub fn mapping(&self) -> &Mp3Mapping {
        &self.mapping
    }

    /// Runs the encoder pipeline.
    pub fn run(self) -> Mp3Outcome {
        let p = &self.params;
        let m = &self.mapping;
        let state = Rc::new(RefCell::new(OutputState {
            arrival_rounds: vec![None; p.frames as usize],
            frame_bits: vec![None; p.frames as usize],
            granules: vec![None; p.frames as usize],
            delivered: 0,
            completion_round: None,
        }));

        let builder = SimulationBuilder::new(Grid2d::new(p.grid_side, p.grid_side))
            .config(p.config)
            .fault_model(p.fault_model)
            .crash_schedule(p.crash_schedule.clone())
            .seed(p.seed)
            .with_ip(
                m.acquisition,
                Box::new(AcquisitionIp {
                    psycho: m.psycho,
                    mdct: m.mdct,
                    generator: SignalGenerator::music_like(p.seed),
                    frames: p.frames,
                    interval: p.frame_interval,
                    sent: 0,
                }),
            )
            .with_ip(
                m.psycho,
                Box::new(PsychoIp {
                    encoder: m.encoder,
                    model: PsychoModel::new(FRAME_SAMPLES, BANDS),
                    frames: p.frames,
                    processed: 0,
                }),
            )
            .with_ip(
                m.mdct,
                Box::new(MdctIp {
                    encoder: m.encoder,
                    engine: MdctFrame::new(FRAME_SAMPLES * 2),
                    frames: p.frames,
                    processed: 0,
                }),
            )
            .with_ip(
                m.encoder,
                Box::new(EncoderIp {
                    reservoir: m.reservoir,
                    bits_per_frame: p.bits_per_frame,
                    frames: p.frames,
                    pending_weights: Default::default(),
                    pending_coeffs: Default::default(),
                    encoded: 0,
                }),
            )
            .with_ip(
                m.reservoir,
                Box::new(ReservoirIp {
                    output: m.output,
                    reservoir: BitReservoir::new(p.reservoir_capacity),
                    nominal_bits: p.bits_per_frame,
                    frames: p.frames,
                    processed: 0,
                }),
            )
            .with_ip(
                m.output,
                Box::new(OutputIp {
                    frames: p.frames,
                    state: Rc::clone(&state),
                }),
            );
        let mut sim = builder.build();
        let report = sim.run();
        let state = state.borrow();
        let output_bits: u64 = state.frame_bits.iter().flatten().map(|&b| b as u64).sum();
        Mp3Outcome {
            completed: state.delivered == p.frames,
            completion_round: state.completion_round,
            frames_delivered: state.delivered,
            frames_requested: p.frames,
            output_bits,
            arrival_rounds: state.arrival_rounds.clone(),
            frame_bits: state.frame_bits.clone(),
            granules: state.granules.clone(),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(frames: u32) -> Mp3Params {
        Mp3Params {
            frames,
            ..Mp3Params::default()
        }
    }

    #[test]
    fn fault_free_pipeline_encodes_everything() {
        let outcome = Mp3App::new(quick_params(12)).run();
        assert!(outcome.completed, "delivered {}", outcome.frames_delivered);
        assert_eq!(outcome.frames_delivered, 12);
        assert!(outcome.output_bits > 0);
        assert!(outcome.frame_bits.iter().all(|b| b.is_some()));
    }

    #[test]
    fn delivered_bitstream_decodes_into_coefficients() {
        let outcome = Mp3App::new(quick_params(6)).run();
        assert!(outcome.completed);
        for frame in 0..6 {
            let coeffs = outcome
                .decode_granule(frame)
                .unwrap_or_else(|| panic!("granule {frame} must decode"));
            assert_eq!(coeffs.len(), FRAME_SAMPLES);
            assert!(coeffs.iter().all(|c| c.is_finite()));
        }
        // Non-silent programme material quantizes to non-zero spectra.
        let any_energy =
            (0..6).any(|f| outcome.decode_granule(f).unwrap().iter().any(|&c| c != 0.0));
        assert!(any_energy, "decoded granules are all silence");
    }

    #[test]
    fn frames_arrive_in_bounded_bits() {
        let params = quick_params(10);
        let budget = params.bits_per_frame + params.reservoir_capacity;
        let outcome = Mp3App::new(params).run();
        for bits in outcome.frame_bits.iter().flatten() {
            assert!(
                (*bits as usize) <= budget,
                "frame exceeded budget+reservoir: {bits}"
            );
        }
    }

    #[test]
    fn bitrate_is_sustained_fault_free() {
        let outcome = Mp3App::new(quick_params(16)).run();
        let rate = outcome.bitrate_per_round().expect("two or more frames");
        assert!(rate > 0.0);
        // One frame every 2 rounds at ~bits_per_frame bits each: the rate
        // should be within a factor of a few of bits_per_frame/interval.
        assert!(rate < 400.0 * 4.0, "rate {rate}");
    }

    #[test]
    fn jitter_is_low_without_faults() {
        // Under deterministic flooding the pipeline latency per frame is
        // constant, so inter-arrival gaps equal the source pacing exactly.
        let params = Mp3Params {
            config: StochasticConfig::flooding(16).with_max_rounds(600),
            ..quick_params(16)
        };
        let outcome = Mp3App::new(params).run();
        let jitter = outcome.jitter().expect("enough frames");
        assert!(jitter < 0.5, "fault-free flooding jitter {jitter}");
    }

    #[test]
    fn sync_errors_increase_jitter_but_not_loss() {
        // Compare under flooding so the only jitter source is the clocks.
        let flood = |sigma: f64| Mp3Params {
            fault_model: FaultModel::builder().sigma_synch(sigma).build().unwrap(),
            config: StochasticConfig::flooding(16).with_max_rounds(800),
            seed: 3,
            ..quick_params(16)
        };
        let base = Mp3App::new(flood(0.0)).run();
        let noisy = Mp3App::new(flood(0.45)).run();
        assert!(noisy.completed, "sync errors must not lose frames");
        assert!(
            noisy.jitter().unwrap() > base.jitter().unwrap(),
            "noisy {} vs base {}",
            noisy.jitter().unwrap(),
            base.jitter().unwrap()
        );
    }

    #[test]
    fn moderate_overflow_is_survivable() {
        let params = Mp3Params {
            fault_model: FaultModel::builder().p_overflow(0.4).build().unwrap(),
            config: StochasticConfig::new(0.75, 20)
                .unwrap()
                .with_max_rounds(900),
            seed: 7,
            ..quick_params(10)
        };
        let outcome = Mp3App::new(params).run();
        assert!(
            outcome.frames_delivered >= 9,
            "40% overflow delivered only {}",
            outcome.frames_delivered
        );
    }

    #[test]
    fn extreme_overflow_kills_the_encode() {
        let params = Mp3Params {
            fault_model: FaultModel::builder().p_overflow(0.97).build().unwrap(),
            config: StochasticConfig::default().with_max_rounds(200),
            seed: 9,
            ..quick_params(10)
        };
        let outcome = Mp3App::new(params).run();
        assert!(!outcome.completed, "97% overflow should prevent completion");
    }

    #[test]
    fn upsets_slow_but_rarely_stop_the_encode() {
        let params = Mp3Params {
            fault_model: FaultModel::builder().p_upset(0.4).build().unwrap(),
            config: StochasticConfig::new(0.75, 24)
                .unwrap()
                .with_max_rounds(1200),
            seed: 11,
            ..quick_params(8)
        };
        let clean_params = Mp3Params {
            config: StochasticConfig::new(0.75, 24)
                .unwrap()
                .with_max_rounds(1200),
            seed: 11,
            ..quick_params(8)
        };
        let noisy = Mp3App::new(params).run();
        let clean = Mp3App::new(clean_params).run();
        assert!(noisy.completed, "40% upsets should be survivable");
        assert!(
            noisy.completion_round.unwrap() >= clean.completion_round.unwrap(),
            "upsets cannot speed things up"
        );
    }

    #[test]
    fn crashed_pipeline_stage_is_fatal() {
        // Unlike fabric tiles, the pipeline stages are single points of
        // computation: killing the encoder mid-run stops the encode (the
        // paper: "the applications will fail completely because too many
        // important modules are not working").
        let mapping = Mp3Mapping::default_on_grid(4);
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(mapping.encoder.index(), 10);
        let params = Mp3Params {
            crash_schedule: schedule,
            config: StochasticConfig::default().with_max_rounds(200),
            ..quick_params(12)
        };
        let outcome = Mp3App::new(params).run();
        assert!(!outcome.completed);
        assert!(
            outcome.frames_delivered < 12,
            "a dead encoder cannot deliver everything"
        );
    }

    #[test]
    fn crashed_relay_tile_is_survivable() {
        // A dead tile that hosts no pipeline stage only removes gossip
        // paths; the encode still completes.
        let mapping = Mp3Mapping::default_on_grid(4);
        let stage_tiles = mapping.tiles();
        let relay = (0..16)
            .map(NodeId)
            .find(|n| !stage_tiles.contains(n))
            .expect("a free tile exists");
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(relay.index(), 0);
        let params = Mp3Params {
            crash_schedule: schedule,
            config: StochasticConfig::new(0.7, 20).unwrap().with_max_rounds(600),
            seed: 5,
            ..quick_params(10)
        };
        let outcome = Mp3App::new(params).run();
        assert!(outcome.completed, "gossip routes around a dead relay");
    }

    #[test]
    fn mapping_tiles_are_distinct() {
        let mapping = Mp3Mapping::default_on_grid(4);
        let mut tiles = mapping.tiles().to_vec();
        tiles.sort();
        tiles.dedup();
        assert_eq!(tiles.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least a 3x3")]
    fn tiny_grid_rejected() {
        let _ = Mp3Mapping::default_on_grid(2);
    }
}
