//! Allowlisted negative: last-resort diagnostics before an abort.

pub fn fatal(msg: &str) -> ! {
    // noc-lint: allow(stdout-in-lib, reason = "last words before abort; no sink can observe a process that is gone")
    eprintln!("fatal: {msg}");
    std::process::abort()
}
