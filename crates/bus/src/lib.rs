//! Shared on-chip bus baseline with arbitration.
//!
//! The traditional SoC interconnect the paper compares against (§4.1.4):
//! all IP modules hang off one shared bus; a transfer occupies the bus
//! exclusively for `bits / f` seconds, so contention serializes traffic.
//! The bus is a single point of failure — if it dies, all communication
//! stops, which is exactly why the paper argues for stochastic NoCs.
//!
//! The built-in technology point is the paper's 0.25 µm extraction: a bus
//! spanning the side of the tile grid runs at 43 MHz and dissipates
//! 21.6e-10 J/bit (versus 381 MHz / 2.4e-10 for a single-tile NoC link).
//!
//! # Examples
//!
//! ```
//! use noc_bus::{Arbitration, BusConfig, BusSimulation, Transfer};
//!
//! let mut bus = BusSimulation::new(16, BusConfig::default());
//! bus.submit(Transfer::new(0, 5, 64, 0.0));
//! bus.submit(Transfer::new(1, 6, 64, 0.0));
//! let report = bus.run();
//! assert_eq!(report.completed_transfers, 2);
//! // Two 64-byte transfers serialized over one 43 MHz bus:
//! assert!(report.makespan.seconds() > 0.0);
//! # let _ = Arbitration::RoundRobin;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_energy::{communication_energy, Bits, EnergyDelay, Joules, Seconds, TechnologyLibrary};
use serde::Serialize;

/// Bus arbitration policy: who wins when several masters request the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum Arbitration {
    /// Grants rotate fairly between requesting modules.
    #[default]
    RoundRobin,
    /// Lower module index always wins (fixed priority).
    FixedPriority,
}

/// Configuration of a bus simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BusConfig {
    /// Electrical parameters (frequency, energy/bit).
    pub tech: TechnologyLibrary,
    /// Arbitration policy.
    pub arbitration: Arbitration,
}

impl Default for BusConfig {
    /// The paper's 0.25 µm bus point with round-robin arbitration.
    fn default() -> Self {
        Self {
            tech: TechnologyLibrary::BUS_0_25UM,
            arbitration: Arbitration::RoundRobin,
        }
    }
}

/// A requested bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Transfer {
    /// Sending module index.
    pub source: usize,
    /// Receiving module index.
    pub destination: usize,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Time at which the request is raised, in seconds.
    pub submit_time: f64,
}

impl Transfer {
    /// Creates a transfer request.
    pub fn new(source: usize, destination: usize, bytes: usize, submit_time: f64) -> Self {
        Self {
            source,
            destination,
            bytes,
            submit_time,
        }
    }

    /// Size on the bus, in bits.
    pub fn bits(&self) -> Bits {
        Bits::from_bytes(self.bytes as u64)
    }
}

/// Outcome of one completed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CompletedTransfer {
    /// The original request.
    pub transfer: Transfer,
    /// When the bus was granted.
    pub grant_time: f64,
    /// When the last bit arrived.
    pub finish_time: f64,
}

impl CompletedTransfer {
    /// End-to-end latency (submit to last bit), in seconds.
    pub fn latency(&self) -> Seconds {
        Seconds::new(self.finish_time - self.transfer.submit_time)
    }
}

/// Aggregated result of a bus run.
#[derive(Debug, Clone, Serialize)]
pub struct BusReport {
    /// Transfers that completed.
    pub completed_transfers: usize,
    /// Total bits moved over the bus.
    pub total_bits: Bits,
    /// Time at which the last transfer finished.
    pub makespan: Seconds,
    /// Per-transfer outcomes, in completion order.
    pub transfers: Vec<CompletedTransfer>,
    /// True if the bus crashed and undelivered transfers were lost.
    pub bus_failed: bool,
    tech: TechnologyLibrary,
}

impl BusReport {
    /// Mean end-to-end latency over completed transfers.
    pub fn average_latency(&self) -> Option<Seconds> {
        if self.transfers.is_empty() {
            return None;
        }
        let total: f64 = self.transfers.iter().map(|t| t.latency().seconds()).sum();
        Some(Seconds::new(total / self.transfers.len() as f64))
    }

    /// Worst end-to-end latency.
    pub fn max_latency(&self) -> Option<Seconds> {
        self.transfers
            .iter()
            .map(|t| t.latency().seconds())
            .max_by(|a, b| a.total_cmp(b))
            .map(Seconds::new)
    }

    /// Total energy under Equation 3 with the bus technology's `E_bit`.
    pub fn total_energy(&self) -> Joules {
        communication_energy(self.total_bits.bits(), Bits(1), self.tech.energy_per_bit)
    }

    /// Energy per transmitted bit.
    pub fn energy_per_bit(&self) -> Joules {
        self.tech.energy_per_bit
    }

    /// Energy×delay figure of merit (total energy × makespan).
    pub fn energy_delay(&self) -> EnergyDelay {
        noc_energy::energy_delay_product(self.total_energy(), self.makespan)
    }

    /// Bus utilization: fraction of the makespan the bus spent actually
    /// transferring bits (the remainder is idle time between bursty
    /// submissions). 0.0 for an empty run.
    pub fn utilization(&self) -> f64 {
        if self.makespan.seconds() <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .transfers
            .iter()
            .map(|t| t.finish_time - t.grant_time)
            .sum();
        busy / self.makespan.seconds()
    }
}

/// A shared-bus interconnect simulation.
///
/// Submit transfer requests, then [`BusSimulation::run`] serializes them
/// under the arbitration policy and reports latency and energy.
#[derive(Debug, Clone)]
pub struct BusSimulation {
    modules: usize,
    config: BusConfig,
    pending: Vec<Transfer>,
    failed: bool,
}

impl BusSimulation {
    /// Creates a bus with `modules` attached IP modules.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is zero.
    pub fn new(modules: usize, config: BusConfig) -> Self {
        assert!(modules > 0, "a bus needs at least one module");
        Self {
            modules,
            config,
            pending: Vec::new(),
            failed: false,
        }
    }

    /// Number of attached modules.
    pub fn module_count(&self) -> usize {
        self.modules
    }

    /// Marks the bus as crashed: pending and future transfers are lost.
    /// Models the single-point-of-failure property of the shared medium.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Queues a transfer request.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, the transfer is a
    /// self-transfer, or the submit time is negative/NaN.
    pub fn submit(&mut self, transfer: Transfer) {
        assert!(
            transfer.source < self.modules && transfer.destination < self.modules,
            "endpoint outside 0..{}",
            self.modules
        );
        assert_ne!(
            transfer.source, transfer.destination,
            "self-transfers never touch the bus"
        );
        assert!(
            transfer.submit_time >= 0.0 && !transfer.submit_time.is_nan(),
            "submit time must be non-negative"
        );
        self.pending.push(transfer);
    }

    /// Runs all queued transfers to completion and returns the report.
    ///
    /// The bus serves one transfer at a time: among the requests already
    /// submitted at the moment the bus frees up, the arbiter picks the
    /// winner; the transfer then holds the bus for `bits / f` seconds.
    /// Arbitration overhead itself is ignored, as in the paper.
    pub fn run(&mut self) -> BusReport {
        let mut pending = std::mem::take(&mut self.pending);
        let mut completed: Vec<CompletedTransfer> = Vec::new();
        let mut total_bits = Bits(0);
        let mut now = 0.0_f64;
        let mut rr_next = 0usize; // round-robin pointer

        if self.failed {
            return BusReport {
                completed_transfers: 0,
                total_bits: Bits(0),
                makespan: Seconds::new(0.0),
                transfers: Vec::new(),
                bus_failed: true,
                tech: self.config.tech,
            };
        }

        // Stable processing: sort by submit time for the waiting queue.
        pending.sort_by(|a, b| a.submit_time.total_cmp(&b.submit_time));

        while !pending.is_empty() {
            // Requests raised by `now`:
            let ready: Vec<usize> = pending
                .iter()
                .enumerate()
                .filter(|(_, t)| t.submit_time <= now)
                .map(|(i, _)| i)
                .collect();
            let winner_idx = if ready.is_empty() {
                // Bus idle: jump to the earliest future request.
                now = pending[0].submit_time;
                0
            } else {
                match self.config.arbitration {
                    Arbitration::FixedPriority => *ready
                        .iter()
                        .min_by_key(|&&i| pending[i].source)
                        .expect("ready is non-empty"),
                    Arbitration::RoundRobin => {
                        // First requester at or after the rotating pointer.
                        *ready
                            .iter()
                            .min_by_key(|&&i| {
                                let s = pending[i].source;
                                (s + self.modules - rr_next) % self.modules
                            })
                            .expect("ready is non-empty")
                    }
                }
            };
            let transfer = pending.remove(winner_idx);
            let grant_time = now.max(transfer.submit_time);
            let duration = transfer.bits().bits() as f64 / self.config.tech.max_frequency.hertz();
            let finish_time = grant_time + duration;
            total_bits += transfer.bits();
            rr_next = (transfer.source + 1) % self.modules;
            now = finish_time;
            completed.push(CompletedTransfer {
                transfer,
                grant_time,
                finish_time,
            });
        }

        BusReport {
            completed_transfers: completed.len(),
            total_bits,
            makespan: Seconds::new(now),
            transfers: completed,
            bus_failed: false,
            tech: self.config.tech,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_transfer_duration(bytes: usize) -> f64 {
        (bytes * 8) as f64 / 43.0e6
    }

    #[test]
    fn single_transfer_latency_is_bits_over_frequency() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 100, 0.0));
        let report = bus.run();
        assert_eq!(report.completed_transfers, 1);
        let expect = one_transfer_duration(100);
        assert!((report.makespan.seconds() - expect).abs() < 1e-12);
        assert!((report.transfers[0].latency().seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn contention_serializes_transfers() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        for src in 0..3 {
            bus.submit(Transfer::new(src, 3, 64, 0.0));
        }
        let report = bus.run();
        let d = one_transfer_duration(64);
        assert!((report.makespan.seconds() - 3.0 * d).abs() < 1e-12);
        // The last-granted transfer waited for two others.
        let worst = report.max_latency().unwrap().seconds();
        assert!((worst - 3.0 * d).abs() < 1e-12);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let mut bus = BusSimulation::new(2, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 64, 0.0));
        bus.submit(Transfer::new(1, 0, 64, 1.0)); // long after the first
        let report = bus.run();
        let d = one_transfer_duration(64);
        assert!((report.makespan.seconds() - (1.0 + d)).abs() < 1e-12);
        // Second transfer saw no queueing delay:
        assert!((report.transfers[1].latency().seconds() - d).abs() < 1e-12);
    }

    #[test]
    fn round_robin_rotates_grants() {
        let mut bus = BusSimulation::new(3, BusConfig::default());
        // All submit at t=0; round-robin starts at module 0 and rotates.
        bus.submit(Transfer::new(2, 0, 8, 0.0));
        bus.submit(Transfer::new(0, 1, 8, 0.0));
        bus.submit(Transfer::new(1, 2, 8, 0.0));
        let report = bus.run();
        let order: Vec<usize> = report.transfers.iter().map(|t| t.transfer.source).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn fixed_priority_favors_low_indices() {
        let config = BusConfig {
            arbitration: Arbitration::FixedPriority,
            ..BusConfig::default()
        };
        let mut bus = BusSimulation::new(3, config);
        bus.submit(Transfer::new(2, 0, 8, 0.0));
        bus.submit(Transfer::new(1, 2, 8, 0.0));
        // Module 1 and 2 compete; 1 wins both rounds it contends.
        let report = bus.run();
        let order: Vec<usize> = report.transfers.iter().map(|t| t.transfer.source).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn energy_matches_equation_3_at_bus_rates() {
        let mut bus = BusSimulation::new(2, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 1000, 0.0));
        let report = bus.run();
        let expect = 8000.0 * 21.6e-10;
        assert!((report.total_energy().joules() - expect).abs() < 1e-12);
    }

    #[test]
    fn failed_bus_delivers_nothing() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 64, 0.0));
        bus.fail();
        let report = bus.run();
        assert!(report.bus_failed);
        assert_eq!(report.completed_transfers, 0);
        assert_eq!(report.total_energy(), Joules::ZERO);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        let report = bus.run();
        assert_eq!(report.completed_transfers, 0);
        assert_eq!(report.average_latency(), None);
        assert_eq!(report.max_latency(), None);
        assert_eq!(report.makespan.seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-transfers")]
    fn self_transfer_rejected() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        bus.submit(Transfer::new(1, 1, 64, 0.0));
    }

    #[test]
    #[should_panic(expected = "outside 0..")]
    fn out_of_range_endpoint_rejected() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        bus.submit(Transfer::new(0, 9, 64, 0.0));
    }

    #[test]
    fn saturated_bus_has_full_utilization() {
        let mut bus = BusSimulation::new(4, BusConfig::default());
        for src in 0..3 {
            bus.submit(Transfer::new(src, 3, 64, 0.0));
        }
        let report = bus.run();
        assert!((report.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_lower_utilization() {
        let mut bus = BusSimulation::new(2, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 64, 0.0));
        bus.submit(Transfer::new(1, 0, 64, 1.0));
        let report = bus.run();
        let d = one_transfer_duration(64);
        let expect = 2.0 * d / (1.0 + d);
        assert!((report.utilization() - expect).abs() < 1e-9);
        assert!(report.utilization() < 0.1, "mostly idle");
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let mut bus = BusSimulation::new(2, BusConfig::default());
        assert_eq!(bus.run().utilization(), 0.0);
    }

    #[test]
    fn energy_delay_combines_energy_and_makespan() {
        let mut bus = BusSimulation::new(2, BusConfig::default());
        bus.submit(Transfer::new(0, 1, 128, 0.0));
        let report = bus.run();
        let ed = report.energy_delay().joule_seconds();
        let expect = report.total_energy().joules() * report.makespan.seconds();
        assert!((ed - expect).abs() < 1e-24);
    }
}
