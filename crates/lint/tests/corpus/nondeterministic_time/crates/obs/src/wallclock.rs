//! Scoped negative: noc-obs wraps the one sanctioned clock read.

pub fn start() -> std::time::Instant {
    std::time::Instant::now()
}
