//! **Figure 3-1** — message spreading in a 1000-node fully connected
//! network: simulated rumor spread versus the Equation 1 recurrence.

use stochastic_noc::spread;

use crate::{Scale, TrialRunner};

/// One round of the spread curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadPoint {
    /// Gossip round.
    pub round: usize,
    /// Informed nodes predicted by the Equation 1 recurrence.
    pub theory: f64,
    /// Informed nodes averaged over simulated rumor runs.
    pub simulated: f64,
}

/// Runs the Figure 3-1 experiment: `n = 1000` nodes, 20 rounds.
pub fn run(scale: Scale) -> Vec<SpreadPoint> {
    let n = 1000;
    let rounds = 20;
    let theory = spread::deterministic_curve(n, rounds);
    let reps = scale.repetitions();
    let runs =
        TrialRunner::for_figure("fig3-1", reps).run(|seed| spread::simulate_rumor(n, rounds, seed));
    let mut sim_avg = vec![0.0f64; rounds + 1];
    for sim in &runs {
        for (acc, &s) in sim_avg.iter_mut().zip(sim) {
            *acc += s as f64 / reps as f64;
        }
    }
    (0..=rounds)
        .map(|round| SpreadPoint {
            round,
            theory: theory[round],
            simulated: sim_avg[round],
        })
        .collect()
}

/// Prints the figure's series plus the `S_n` landmark.
pub fn print(points: &[SpreadPoint]) {
    crate::stats::print_table_header(
        "Figure 3-1: message spreading, 1000-node fully connected network",
        &["round", "theory I(t)", "simulated I(t)"],
    );
    for p in points {
        println!("{}\t{:.1}\t{:.1}", p.round, p.theory, p.simulated);
    }
    println!(
        "S_n estimate (log2 n + ln n): {:.1} rounds",
        spread::rounds_to_inform_all(1000)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_reaches_everyone_within_20_rounds() {
        let points = run(Scale::Quick);
        assert_eq!(points.len(), 21);
        let last = points.last().unwrap();
        assert!(last.theory > 999.0);
        assert!(last.simulated > 990.0);
    }

    #[test]
    fn simulation_tracks_theory() {
        let points = run(Scale::Quick);
        for p in &points {
            let tolerance = (p.theory * 0.3).max(5.0);
            assert!(
                (p.simulated - p.theory).abs() < tolerance,
                "round {}: sim {:.1} vs theory {:.1}",
                p.round,
                p.simulated,
                p.theory
            );
        }
    }
}
