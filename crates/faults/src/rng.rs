//! Gaussian sampling via the Box–Muller transform.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! normal distribution needed for synchronization-error sampling is
//! implemented here directly.

use rand::Rng;

/// A Box–Muller Gaussian sampler.
///
/// Generates standard-normal variates in pairs and caches the spare, so on
/// average only one pair of uniforms is consumed per two samples.
///
/// # Examples
///
/// ```
/// use noc_faults::GaussianSampler;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut gauss = GaussianSampler::new();
/// let x = gauss.sample(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one sample from `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation cannot be negative");
        mean + std_dev * self.sample_standard(rng)
    }

    /// The cached Box–Muller spare, if the last pair draw left one.
    ///
    /// Checkpointing must capture this: losing a cached spare shifts
    /// every later Gaussian draw by one uniform pair.
    pub fn spare(&self) -> Option<f64> {
        self.spare
    }

    /// Rebuilds a sampler around a previously captured spare.
    pub fn from_spare(spare: Option<f64>) -> Self {
        Self { spare }
    }

    /// Draws one standard-normal sample.
    pub fn sample_standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(radius * theta.sin());
        radius * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(2024);
        let mut g = GaussianSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample_standard(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn mean_and_std_are_applied() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = GaussianSampler::new();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn zero_std_collapses_to_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = GaussianSampler::new();
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng, 3.5, 0.0), 3.5);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_std_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = GaussianSampler::new();
        let _ = g.sample(&mut rng, 0.0, -1.0);
    }

    #[test]
    fn spare_cache_is_used() {
        // Two consecutive samples consume one Box-Muller pair: the second
        // sample must not advance the RNG.
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut g = GaussianSampler::new();
        let _first = g.sample_standard(&mut rng_a);
        let state_probe_a: u64 = {
            let _second = g.sample_standard(&mut rng_a);
            rng_a.gen()
        };

        let mut rng_b = StdRng::seed_from_u64(8);
        let mut g2 = GaussianSampler::new();
        let _only = g2.sample_standard(&mut rng_b);
        let state_probe_b: u64 = rng_b.gen();

        assert_eq!(state_probe_a, state_probe_b);
    }
}
