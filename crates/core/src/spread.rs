//! Epidemic-spreading theory of §3.1 and the rumor experiment of
//! Figure 3-1.
//!
//! In the classic randomized-gossip model over a fully connected
//! population, every informed node passes the rumor to one uniformly
//! random node per round. The number of informed nodes `I(t)` is tightly
//! approximated by the deterministic recurrence (**Equation 1**):
//!
//! ```text
//! I(t+1) = n − (n − I(t)) · e^(−I(t)/n),   I(0) = 1
//! ```
//!
//! and the number of rounds until everyone is informed is
//! `S_n = log2 n + ln n + O(1)` (Pittel, 1987). This module provides the
//! recurrence, the `S_n` estimate, and a Monte-Carlo simulation of the
//! rumor process for Figure 3-1's 1000-node curve.
//!
//! # Examples
//!
//! ```
//! use stochastic_noc::spread;
//!
//! let curve = spread::deterministic_curve(1000, 20);
//! // Less than 20 rounds reach all 1000 nodes:
//! assert!(curve.last().copied().unwrap() > 999.0);
//! assert!(spread::rounds_to_inform_all(1000) < 20.0);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iterates Equation 1 for `rounds` rounds, returning
/// `[I(0), I(1), …, I(rounds)]` (length `rounds + 1`).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn deterministic_curve(n: usize, rounds: usize) -> Vec<f64> {
    assert!(n > 0, "population must be positive");
    let n_f = n as f64;
    let mut curve = Vec::with_capacity(rounds + 1);
    let mut informed = 1.0_f64;
    curve.push(informed);
    for _ in 0..rounds {
        informed = n_f - (n_f - informed) * (-informed / n_f).exp();
        curve.push(informed);
    }
    curve
}

/// The `S_n ≈ log2 n + ln n` estimate of the rounds needed to inform the
/// whole population.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn rounds_to_inform_all(n: usize) -> f64 {
    assert!(n > 0, "population must be positive");
    let n_f = n as f64;
    n_f.log2() + n_f.ln()
}

/// Simulates the classic rumor process on a fully connected population:
/// each informed node passes the rumor to one uniformly random node per
/// round. Returns the informed count after each round (`[I(0), …]`,
/// length `rounds + 1`).
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use stochastic_noc::spread;
///
/// let curve = spread::simulate_rumor(1000, 20, 7);
/// assert_eq!(curve[0], 1);
/// assert!(curve.windows(2).all(|w| w[1] >= w[0]), "monotone growth");
/// ```
pub fn simulate_rumor(n: usize, rounds: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "population must be positive");
    // noc-lint: allow(rng-draw-site, reason = "self-contained analytic-validation Monte Carlo with its own caller-provided seed; no engine or tape involved")
    let mut rng = StdRng::seed_from_u64(seed);
    let mut informed = vec![false; n];
    informed[0] = true;
    let mut count = 1usize;
    let mut curve = Vec::with_capacity(rounds + 1);
    curve.push(count);
    for _ in 0..rounds {
        let holders: Vec<usize> = (0..n).filter(|&i| informed[i]).collect();
        for _ in holders {
            // noc-lint: allow(rng-draw-site, reason = "self-contained analytic-validation Monte Carlo with its own caller-provided seed; no engine or tape involved")
            let target = rng.gen_range(0..n);
            if !informed[target] {
                informed[target] = true;
                count += 1;
            }
        }
        curve.push(count);
    }
    curve
}

/// Number of simulated rounds until all `n` nodes are informed (capped at
/// `max_rounds`; returns `None` if the cap is hit first).
pub fn simulated_rounds_to_inform_all(n: usize, max_rounds: usize, seed: u64) -> Option<usize> {
    let curve = simulate_rumor(n, max_rounds, seed);
    curve.iter().position(|&c| c == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_starts_at_one_and_is_monotone() {
        let curve = deterministic_curve(1000, 25);
        assert_eq!(curve[0], 1.0);
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
        assert!(curve.iter().all(|&c| c <= 1000.0));
    }

    #[test]
    fn thousand_nodes_reached_in_under_20_rounds() {
        // Figure 3-1: "in less than 20 rounds, as many as 1000 nodes can
        // be reached".
        let curve = deterministic_curve(1000, 20);
        assert!(
            curve[20] > 999.0,
            "deterministic curve reached {} of 1000",
            curve[20]
        );
        let sim = simulate_rumor(1000, 20, 3);
        assert!(sim[20] >= 995, "simulated spread reached {}", sim[20]);
    }

    #[test]
    fn growth_is_initially_exponential() {
        // Early phase: I(t) roughly doubles each round (growth factor
        // close to 2 while I << n).
        let curve = deterministic_curve(100_000, 10);
        for t in 1..8 {
            let factor = curve[t + 1] / curve[t];
            assert!(
                (1.8..=2.0).contains(&factor),
                "round {t} growth factor {factor}"
            );
        }
    }

    #[test]
    fn s_n_estimate_matches_pittel() {
        // S_1000 ~ log2(1000) + ln(1000) ~ 9.97 + 6.91 ~ 16.9
        let s = rounds_to_inform_all(1000);
        assert!((16.0..18.0).contains(&s), "S_1000 = {s}");
    }

    #[test]
    fn simulation_tracks_the_recurrence() {
        let n = 2000;
        let rounds = 18;
        let det = deterministic_curve(n, rounds);
        // Average several seeds to tame variance.
        let seeds = 5;
        let mut avg = vec![0.0; rounds + 1];
        for seed in 0..seeds {
            let sim = simulate_rumor(n, rounds, seed);
            for (a, s) in avg.iter_mut().zip(&sim) {
                *a += *s as f64 / seeds as f64;
            }
        }
        for t in 0..=rounds {
            let rel = (avg[t] - det[t]).abs() / det[t].max(1.0);
            assert!(
                rel < 0.25,
                "round {t}: sim {:.1} vs theory {:.1}",
                avg[t],
                det[t]
            );
        }
    }

    #[test]
    fn simulated_completion_time_near_estimate() {
        let n = 500;
        let estimate = rounds_to_inform_all(n);
        let got = simulated_rounds_to_inform_all(n, 100, 11)
            .expect("500 nodes informed within 100 rounds") as f64;
        assert!(
            (got - estimate).abs() < 8.0,
            "simulated {got} vs estimate {estimate}"
        );
    }

    #[test]
    fn single_node_population_is_trivially_informed() {
        assert_eq!(simulate_rumor(1, 5, 0), vec![1; 6]);
        assert_eq!(deterministic_curve(1, 3)[0], 1.0);
        assert_eq!(simulated_rounds_to_inform_all(1, 5, 0), Some(0));
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        let _ = deterministic_curve(0, 5);
    }
}
