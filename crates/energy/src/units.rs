//! Newtype units so energies, times, frequencies and sizes cannot be mixed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An energy in joules.
///
/// # Examples
///
/// ```
/// use noc_energy::Joules;
///
/// let a = Joules::new(1.0);
/// let b = Joules::new(2.0);
/// assert_eq!((a + b).joules(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(pub f64);

/// A duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(pub f64);

/// A frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hertz(pub f64);

/// A data size in bits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bits(pub u64);

impl Joules {
    /// Creates an energy value.
    pub fn new(joules: f64) -> Self {
        Self(joules)
    }

    /// The raw value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);
}

impl Seconds {
    /// Creates a duration.
    pub fn new(seconds: f64) -> Self {
        Self(seconds)
    }

    /// The raw value in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The value expressed in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Hertz {
    /// Creates a frequency.
    pub fn new(hertz: f64) -> Self {
        Self(hertz)
    }

    /// Convenience constructor from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// The raw value in hertz.
    pub fn hertz(self) -> f64 {
        self.0
    }

    /// The corresponding clock period.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "period of a non-positive frequency");
        Seconds(1.0 / self.0)
    }
}

impl Bits {
    /// Creates a size from a bit count.
    pub fn new(bits: u64) -> Self {
        Self(bits)
    }

    /// Creates a size from a byte count.
    pub fn from_bytes(bytes: u64) -> Self {
        Self(bytes * 8)
    }

    /// The raw bit count.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// The size in whole bytes, rounding up.
    pub fn bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |acc, j| acc + j)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits(0), |acc, b| acc + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} J", self.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} s", self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2} MHz", self.0 / 1e6)
        } else {
            write!(f, "{:.2} Hz", self.0)
        }
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_arithmetic() {
        let e = Joules::new(2.0) + Joules::new(3.0) - Joules::new(1.0);
        assert_eq!(e, Joules::new(4.0));
        assert_eq!(e * 2.0, Joules::new(8.0));
        assert_eq!(e / 2.0, Joules::new(2.0));
    }

    #[test]
    fn joules_sum() {
        let total: Joules = (1..=4).map(|i| Joules::new(i as f64)).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn hertz_period() {
        let f = Hertz::from_mhz(100.0);
        assert!((f.period().seconds() - 1e-8).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "non-positive frequency")]
    fn zero_frequency_has_no_period() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    fn bits_conversions() {
        assert_eq!(Bits::from_bytes(3), Bits(24));
        assert_eq!(Bits(9).bytes_ceil(), 2);
        assert_eq!(Bits(16).bytes_ceil(), 2);
        let total: Bits = [Bits(8), Bits(16)].into_iter().sum();
        assert_eq!(total, Bits(24));
    }

    #[test]
    fn seconds_micros() {
        assert!((Seconds::new(2.5e-6).micros() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Hertz::from_mhz(43.0).to_string(), "43.00 MHz");
        assert_eq!(Bits(64).to_string(), "64 bits");
        assert!(Joules::new(2.4e-10).to_string().contains('J'));
        assert!(Seconds::new(1e-6).to_string().contains('s'));
    }
}
