//! True positive: the bench harness is no longer exempt — raw clock
//! reads must go through noc_obs::Stopwatch.

pub fn time_batch() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
