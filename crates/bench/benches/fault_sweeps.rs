//! Figure 4-5 / 4-10 benches: one fault-sweep grid point under upsets
//! and under overflow.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use noc_faults::FaultModel;
use std::hint::black_box;
use stochastic_noc::StochasticConfig;

fn bench_fault_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4-5/4-10 fault sweeps");
    group.sample_size(10);

    for (label, model) in [
        (
            "upset 0.3",
            FaultModel::builder().p_upset(0.3).build().unwrap(),
        ),
        (
            "overflow 0.3",
            FaultModel::builder().p_overflow(0.3).build().unwrap(),
        ),
        (
            "sigma 0.3",
            FaultModel::builder().sigma_synch(0.3).build().unwrap(),
        ),
    ] {
        group.bench_function(format!("master-slave under {label}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let params = MasterSlaveParams {
                    config: StochasticConfig::new(0.5, 20).unwrap().with_max_rounds(300),
                    fault_model: model,
                    terms: 10_000,
                    seed,
                    ..MasterSlaveParams::default()
                };
                black_box(MasterSlaveApp::new(params).run().completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sweeps);
criterion_main!(benches);
