//! **Figure 4-10** — impact of buffer overflow and synchronization
//! errors on the MP3 encoding latency.
//!
//! Expected shapes: dropped-packet levels barely move latency until a
//! fatal region (> ~80%) where encoding cannot complete (the paper's
//! point "A"); synchronization errors never prevent termination but
//! widen the latency spread (jitter).

use noc_apps::mp3::{Mp3App, Mp3Params};
use noc_faults::FaultModel;
use stochastic_noc::StochasticConfig;

use crate::stats::mean_std;
use crate::{Scale, TrialRunner};

/// Which fault axis a row sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Axis {
    /// Probability that a packet is dropped by buffer overflow.
    DroppedPackets(f64),
    /// Synchronization-error standard deviation (fraction of `T_R`).
    SigmaSynch(f64),
}

/// One point of either panel.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// The swept fault level.
    pub axis: Axis,
    /// Mean latency over completed runs.
    pub latency_rounds: Option<f64>,
    /// Standard deviation of the latency (the jitter indicator).
    pub latency_std: Option<f64>,
    /// Fraction of runs that completed.
    pub completion_ratio: f64,
}

/// Runs both panels of Figure 4-10.
pub fn run(scale: Scale) -> Vec<LatencyPoint> {
    let (drops, sigmas): (Vec<f64>, Vec<f64>) = match scale {
        Scale::Quick => (vec![0.0, 0.4, 0.9], vec![0.0, 0.3]),
        Scale::Full => (
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        ),
    };
    let mut rows = Vec::new();
    for &d in &drops {
        let model = FaultModel::builder().p_overflow(d).build().expect("valid");
        rows.push(run_point(Axis::DroppedPackets(d), model, scale));
    }
    for &s in &sigmas {
        let model = FaultModel::builder().sigma_synch(s).build().expect("valid");
        rows.push(run_point(Axis::SigmaSynch(s), model, scale));
    }
    rows
}

fn run_point(axis: Axis, model: FaultModel, scale: Scale) -> LatencyPoint {
    let reps = scale.repetitions();
    let label = match axis {
        Axis::DroppedPackets(d) => format!("fig4-10/dropped={d:.2}"),
        Axis::SigmaSynch(s) => format!("fig4-10/sigma={s:.2}"),
    };
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| {
        let params = Mp3Params {
            frames: 8,
            config: StochasticConfig::new(0.6, 20)
                .expect("valid")
                .with_max_rounds(500),
            fault_model: model,
            seed,
            ..Mp3Params::default()
        };
        Mp3App::new(params).run()
    });
    let mut latencies = Vec::new();
    let mut completions = 0;
    for outcome in outcomes {
        if outcome.completed {
            completions += 1;
            if let Some(r) = outcome.completion_round {
                latencies.push(r as f64);
            }
        }
    }
    let stats = mean_std(&latencies);
    LatencyPoint {
        axis,
        latency_rounds: stats.map(|(m, _)| m),
        latency_std: stats.map(|(_, s)| s),
        completion_ratio: completions as f64 / reps as f64,
    }
}

/// Prints both panels.
pub fn print(rows: &[LatencyPoint]) {
    crate::stats::print_table_header(
        "Figure 4-10: MP3 latency vs dropped packets / sync errors",
        &["axis", "level", "latency [rounds]", "std", "completion"],
    );
    for r in rows {
        let (axis, level) = match r.axis {
            Axis::DroppedPackets(d) => ("dropped", d),
            Axis::SigmaSynch(s) => ("sigma", s),
        };
        println!(
            "{}\t{:.2}\t{}\t{}\t{:.2}",
            axis,
            level,
            r.latency_rounds
                .map_or("-".to_string(), |l| format!("{l:.1}")),
            r.latency_std.map_or("-".to_string(), |s| format!("{s:.1}")),
            r.completion_ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dropped(rows: &[LatencyPoint], level: f64) -> &LatencyPoint {
        rows.iter()
            .find(|r| matches!(r.axis, Axis::DroppedPackets(d) if d == level))
            .expect("point present")
    }

    fn sigma(rows: &[LatencyPoint], level: f64) -> &LatencyPoint {
        rows.iter()
            .find(|r| matches!(r.axis, Axis::SigmaSynch(s) if s == level))
            .expect("point present")
    }

    #[test]
    fn moderate_drops_are_survivable_and_extreme_drops_fatal() {
        let rows = run(Scale::Quick);
        assert!(dropped(&rows, 0.0).completion_ratio == 1.0);
        assert!(
            dropped(&rows, 0.4).completion_ratio > 0.5,
            "40% drops should usually complete"
        );
        assert!(
            dropped(&rows, 0.9).completion_ratio < dropped(&rows, 0.0).completion_ratio,
            "90% drops cannot match the fault-free completion rate"
        );
    }

    #[test]
    fn sync_errors_never_prevent_termination() {
        let rows = run(Scale::Quick);
        assert_eq!(sigma(&rows, 0.3).completion_ratio, 1.0);
    }
}
