//! **Chapter 2 error-model validation** — the analytical equations
//! `p_v ≈ p_upset / 2^n` and `p_b ≈ p_upset / n`, plus a Monte-Carlo
//! measurement of the CRC's residual (undetected) error rate under both
//! error models.
//!
//! The stochastic communication protocol discards upsets via the CRC, so
//! the residual rate bounds the corrupt data that can reach an IP. For
//! the byte-aligned wire format, the random-error-vector residual is
//! `2^-(8·tag_bytes)` (unused padding bits in the tag byte double as
//! check bits).

use noc_crc::{undetected_fraction, CrcParams};
use noc_faults::{bit_error_probability, vector_probability, ErrorModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Scale, TrialRunner};

/// One row of the error-model table.
#[derive(Debug, Clone)]
pub struct ErrorModelRow {
    /// CRC parameter set.
    pub crc: CrcParams,
    /// Error model applied.
    pub model: ErrorModel,
    /// Message length in bytes (tag excluded).
    pub message_bytes: usize,
    /// Monte-Carlo vectors drawn.
    pub trials: usize,
    /// Measured undetected fraction among corrupted frames.
    pub undetected: f64,
    /// Theoretical residual rate for the random error vector model:
    /// `2^-(8·tag_bytes)`. The wire format stores the CRC in whole bytes,
    /// and a frame whose unused padding bits are flipped always fails the
    /// tag comparison, so padding acts as additional check bits.
    pub theory_rev: f64,
}

/// Runs the error-model validation.
pub fn run(scale: Scale) -> Vec<ErrorModelRow> {
    let trials = match scale {
        Scale::Quick => 20_000,
        Scale::Full => 400_000,
    };
    let message = b"on-chip stochastic communication packet";
    // Each (CRC, model) row is an independent Monte-Carlo experiment, so
    // the rows themselves are the runner's trials: every row draws its
    // vectors from its own derived seed stream.
    let mut combos = Vec::new();
    for crc in [
        CrcParams::CRC5_USB,
        CrcParams::CRC8_ATM,
        CrcParams::CRC16_CCITT,
    ] {
        for model in [ErrorModel::RandomErrorVector, ErrorModel::RandomBitError] {
            combos.push((crc, model));
        }
    }
    TrialRunner::for_figure("error-models", combos.len() as u64).run_indexed(|index, seed| {
        let (crc, model) = combos[index];
        let framed_len = message.len() + crc.tag_bytes();
        // noc-lint: allow(rng-draw-site, reason = "stream construction from a TrialRunner-derived seed for the CRC study; engine-free figure, no tape interaction")
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors = (0..trials).map(|_| {
            let mut v = vec![0u8; framed_len];
            model.scramble(&mut rng, &mut v, 0.5);
            v
        });
        let undetected = undetected_fraction(crc, message, vectors);
        ErrorModelRow {
            crc,
            model,
            message_bytes: message.len(),
            trials,
            undetected,
            theory_rev: 2f64.powi(-8 * crc.tag_bytes() as i32),
        }
    })
}

/// Prints the table, plus the Chapter 2 probability formulas at sample
/// points.
pub fn print(rows: &[ErrorModelRow]) {
    crate::stats::print_table_header(
        "Chapter 2: error models and CRC residual error rates",
        &[
            "crc",
            "model",
            "trials",
            "undetected",
            "theory (REV: 2^-tagbits)",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:?}\t{}\t{:.2e}\t{:.2e}",
            r.crc.name, r.model, r.trials, r.undetected, r.theory_rev
        );
    }
    println!("\nChapter 2 equations at sample points (n = 64 bits):");
    for p_upset in [0.1, 0.5, 0.9] {
        println!(
            "p_upset={p_upset:.1}: p_v = {:.3e} (random error vector), p_b = {:.4} (random bit error)",
            vector_probability(p_upset, 64),
            bit_error_probability(p_upset, 64)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_crc_residuals_match_theory_under_random_vectors() {
        // The on-wire residual is 2^-(8*tag_bytes): CRC-5 and CRC-8 both
        // occupy one tag byte, so both leak ~2^-8 under uniform vectors.
        let rows = run(Scale::Quick);
        for width in [5u32, 8] {
            let row = rows
                .iter()
                .find(|r| r.crc.width == width && r.model == ErrorModel::RandomErrorVector)
                .expect("present");
            assert!(
                (row.undetected - row.theory_rev).abs() < row.theory_rev,
                "{}: measured {:.2e} vs theory {:.2e}",
                row.crc.name,
                row.undetected,
                row.theory_rev
            );
        }
    }

    #[test]
    fn wider_tags_leak_less() {
        let rows = run(Scale::Quick);
        let rev = |w: u32| {
            rows.iter()
                .find(|r| r.crc.width == w && r.model == ErrorModel::RandomErrorVector)
                .map(|r| r.undetected)
                .expect("present")
        };
        // 2-byte tag beats the 1-byte tags by orders of magnitude.
        assert!(rev(16) < rev(8) / 10.0);
        assert!(rev(16) < rev(5) / 10.0);
    }

    #[test]
    fn bit_error_model_rarely_escapes() {
        // Random bit errors flip very few bits; single flips are always
        // detected, and only multi-bit patterns aligned with the
        // generator can escape. Wide CRCs essentially never leak; CRC-5
        // leaks ~1% (weight-2 escapes beyond the order of x mod G).
        let rows = run(Scale::Quick);
        for r in rows
            .iter()
            .filter(|r| r.model == ErrorModel::RandomBitError)
        {
            let bound = match r.crc.width {
                5 => 5e-2,
                _ => 5e-3,
            };
            assert!(
                r.undetected < bound,
                "{} leaked {:.2e} under random bit errors",
                r.crc.name,
                r.undetected
            );
        }
    }
}
