//! **Figure 4-9** — MP3 energy dissipation versus the forwarding
//! probability `p`.
//!
//! Expected shape: energy grows almost linearly with `p`, because the
//! total packet count Equation 3 charges for is proportional to the
//! per-link forwarding probability.

use noc_apps::mp3::{Mp3App, Mp3Params};
use stochastic_noc::StochasticConfig;

use crate::stats::mean;
use crate::{Scale, TrialRunner};

/// One point of the energy curve.
#[derive(Debug, Clone)]
pub struct EnergyPoint {
    /// Forwarding probability.
    pub p: f64,
    /// Mean communication energy in joules.
    pub energy_joules: f64,
    /// Mean packets transmitted.
    pub packets: f64,
}

/// Runs the Figure 4-9 sweep.
pub fn run(scale: Scale) -> Vec<EnergyPoint> {
    let ps: Vec<f64> = match scale {
        Scale::Quick => vec![0.25, 0.5, 1.0],
        Scale::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    };
    ps.iter()
        .map(|&p| {
            let reps = scale.repetitions();
            let label = format!("fig4-9/p={p:.2}");
            let samples = TrialRunner::for_figure(&label, reps).run(|seed| {
                let params = Mp3Params {
                    frames: 8,
                    config: StochasticConfig::new(p, 16)
                        .expect("valid")
                        .with_max_rounds(400),
                    seed,
                    ..Mp3Params::default()
                };
                let outcome = Mp3App::new(params).run();
                (
                    outcome.report.total_energy().joules(),
                    outcome.report.packets_sent as f64,
                )
            });
            let energies: Vec<f64> = samples.iter().map(|&(e, _)| e).collect();
            let packets: Vec<f64> = samples.iter().map(|&(_, n)| n).collect();
            EnergyPoint {
                p,
                energy_joules: mean(&energies).unwrap_or(0.0),
                packets: mean(&packets).unwrap_or(0.0),
            }
        })
        .collect()
}

/// Prints the energy curve.
pub fn print(points: &[EnergyPoint]) {
    crate::stats::print_table_header(
        "Figure 4-9: MP3 energy dissipation vs p",
        &["p", "energy [J]", "packets"],
    );
    for p in points {
        println!("{:.2}\t{:.3e}\t{:.0}", p.p, p.energy_joules, p.packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_monotone_in_p() {
        let points = run(Scale::Quick);
        for w in points.windows(2) {
            assert!(
                w[1].energy_joules > w[0].energy_joules,
                "p={} energy {} !> p={} energy {}",
                w[1].p,
                w[1].energy_joules,
                w[0].p,
                w[0].energy_joules
            );
        }
    }

    #[test]
    fn growth_is_roughly_linear() {
        // The paper: "increases almost linearly with the probability p".
        // Check that doubling p from 0.5 to 1.0 scales energy by roughly
        // 2x (within generous tolerance; completion effects bend it).
        let points = run(Scale::Quick);
        let at = |p: f64| {
            points
                .iter()
                .find(|e| e.p == p)
                .map(|e| e.energy_joules)
                .expect("present")
        };
        let ratio = at(1.0) / at(0.5);
        assert!(
            (1.3..3.0).contains(&ratio),
            "energy(1.0)/energy(0.5) = {ratio}"
        );
    }
}
