//! Figure 4-6 bench: the shared-bus baseline and the full NoC-vs-bus
//! comparison row.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bus::{BusConfig, BusSimulation, Transfer};
use noc_experiments::{fig4_6, Scale};
use std::hint::black_box;

fn bench_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4-6 bus comparison");
    group.sample_size(10);

    group.bench_function("bus 16 modules all-at-once", |b| {
        b.iter(|| {
            let mut bus = BusSimulation::new(16, BusConfig::default());
            for src in 0..16usize {
                bus.submit(Transfer::new(src, (src + 1) % 16, 64, 0.0));
            }
            black_box(bus.run().completed_transfers)
        })
    });
    group.bench_function("full fig4-6 quick", |b| {
        b.iter(|| black_box(fig4_6::run(Scale::Quick).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_bus);
criterion_main!(benches);
