//! Corpus fixture: the engine may draw on the main thread, but a draw
//! inside the shard fan-out closure breaks tape replay.

/// Sanctioned: main-thread tape construction in an allowlisted file.
pub fn build_tape(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}

/// Unsanctioned: the worker closure draws instead of replaying.
pub fn plan_and_fan_out(work: Vec<u64>, tape: Tape) -> Vec<u64> {
    run_shards(work, move |frame| frame.wrapping_add(tape.next_u64()))
}
