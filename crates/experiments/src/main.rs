//! CLI entry point: regenerate any figure of the paper.
//!
//! ```text
//! experiments <figure> [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH]
//! experiments all [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH]
//! ```
//!
//! `--threads N` pins the Monte-Carlo worker count (default:
//! auto-detect); output tables are bit-identical for every `N`.
//! `--shards N` splits each simulation's tiles across N scoped worker
//! threads inside a trial (default 1 = sequential, 0 = auto-detect);
//! tables are bit-identical for every `N` here too.
//! `--seed N` re-roots every figure's trial-seed derivation (default 0).
//! `--trace-events PATH` streams a JSONL event log of one representative
//! trial to PATH (currently supported by `fig3-3` and `hostile`).
//! `--reconcile-json PATH` writes the CounterSink-vs-report
//! reconciliation summary to PATH (currently supported by `hostile`).

#![forbid(unsafe_code)]

use noc_experiments::{
    ablations, error_models, fig3_1, fig3_3, fig4_10, fig4_11, fig4_4, fig4_5, fig4_6, fig4_8,
    fig4_9, fig5_3, grid_spread, hostile, mega_grid, runner, Scale,
};

const FIGURES: &[&str] = &[
    "fig3-1",
    "fig3-3",
    "fig4-4",
    "fig4-5",
    "fig4-6",
    "fig4-8",
    "fig4-9",
    "fig4-10",
    "fig4-11",
    "fig5-3",
    "error-models",
    "ablations",
    "grid-spread",
    "hostile",
    "mega-grid",
];

fn run_figure(name: &str, scale: Scale) -> bool {
    match name {
        "fig3-1" => fig3_1::print(&fig3_1::run(scale)),
        "fig3-3" => fig3_3::print(&fig3_3::run(scale)),
        "fig4-4" => fig4_4::print(&fig4_4::run(scale)),
        "fig4-5" => fig4_5::print(&fig4_5::run(scale)),
        "fig4-6" => fig4_6::print(&fig4_6::run(scale)),
        "fig4-8" => fig4_8::print(&fig4_8::run(scale)),
        "fig4-9" => fig4_9::print(&fig4_9::run(scale)),
        "fig4-10" => fig4_10::print(&fig4_10::run(scale)),
        "fig4-11" => fig4_11::print(&fig4_11::run(scale)),
        "fig5-3" => fig5_3::print(&fig5_3::run(scale)),
        "error-models" => error_models::print(&error_models::run(scale)),
        "ablations" => ablations::print(&ablations::run(scale)),
        "grid-spread" => grid_spread::print(&grid_spread::run(scale)),
        "hostile" => hostile::print(&hostile::run(scale)),
        "mega-grid" => mega_grid::print(&mega_grid::run(scale)),
        _ => return false,
    }
    true
}

/// Summarises the runner reports a figure deposited while it ran.
///
/// Goes to stderr so the tables on stdout stay byte-identical across
/// thread counts.
fn print_runner_summary(name: &str) {
    let reports = runner::take_reports();
    if reports.is_empty() {
        return;
    }
    let trials: u64 = reports.iter().map(|r| r.trials).sum();
    let elapsed: std::time::Duration = reports.iter().map(|r| r.elapsed).sum();
    let workers = reports.iter().map(|r| r.workers).max().unwrap_or(1);
    let per_trial = if trials == 0 {
        std::time::Duration::ZERO
    } else {
        elapsed / u32::try_from(trials).unwrap_or(u32::MAX)
    };
    eprintln!(
        "[runner] {name}: {trials} trials in {} sweep(s), {workers} worker(s), {:.1?} total ({:.1?}/trial)",
        reports.len(),
        elapsed,
        per_trial,
    );
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    let value = parse_string_flag(args, flag)?;
    Some(value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got '{value}'");
        std::process::exit(2);
    }))
}

fn parse_string_flag(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    let value = args.get(position + 1).unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    });
    Some(value.clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if let Some(threads) = parse_flag(&args, "--threads") {
        runner::set_default_threads(usize::try_from(threads).unwrap_or(usize::MAX));
    }
    if let Some(shards) = parse_flag(&args, "--shards") {
        runner::set_default_shards(usize::try_from(shards).unwrap_or(usize::MAX));
    }
    if let Some(seed) = parse_flag(&args, "--seed") {
        runner::set_base_seed(seed);
    }
    runner::set_trace_path(parse_string_flag(&args, "--trace-events"));
    runner::set_reconcile_json_path(parse_string_flag(&args, "--reconcile-json"));
    let mut skip_next = false;
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--threads"
                || *a == "--shards"
                || *a == "--seed"
                || *a == "--trace-events"
                || *a == "--reconcile-json"
            {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    if targets.is_empty() || targets == ["help"] {
        eprintln!(
            "usage: experiments <figure>|all [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH]"
        );
        eprintln!("figures: {}", FIGURES.join(", "));
        std::process::exit(if targets.is_empty() { 2 } else { 0 });
    }

    let run_all = targets.contains(&"all");
    let list: Vec<&str> = if run_all { FIGURES.to_vec() } else { targets };
    for name in list {
        if !run_figure(name, scale) {
            eprintln!("unknown figure '{name}'; known: {}", FIGURES.join(", "));
            std::process::exit(2);
        }
        print_runner_summary(name);
    }
}
