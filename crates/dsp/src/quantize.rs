//! Nonuniform quantization with an iterative rate-control loop — the
//! "Iterative Encoding" module of the encoder pipeline (Figure 4-7).
//!
//! MP3 quantizes MDCT coefficients with a 3/4-power law and searches a
//! global gain so that the Huffman-coded granule fits the bit budget.
//! This module implements the same structure: [`quantize`]/[`dequantize`]
//! with the power law, and [`rate_control`], a binary search over the
//! step size against the actual Elias-gamma coded size from
//! [`crate::bitstream`].

use crate::bitstream::{coded_bits, BitWriter};

/// Quantizes one coefficient with step `step` and the MP3 3/4-power law:
/// `q = sign(x) · round(|x/step|^0.75)`.
///
/// # Panics
///
/// Panics if `step` is not strictly positive.
pub fn quantize(x: f64, step: f64) -> i32 {
    assert!(step > 0.0, "quantizer step must be positive");
    let mag = (x.abs() / step).powf(0.75).round();
    (mag.min(i32::MAX as f64) as i32) * x.signum() as i32
}

/// Inverse of [`quantize`]: `x ≈ sign(q) · |q|^(4/3) · step`.
///
/// # Panics
///
/// Panics if `step` is not strictly positive.
pub fn dequantize(q: i32, step: f64) -> f64 {
    assert!(step > 0.0, "quantizer step must be positive");
    (q.abs() as f64).powf(4.0 / 3.0) * step * q.signum() as f64
}

/// Quantizes a whole coefficient vector.
pub fn quantize_all(coeffs: &[f64], step: f64) -> Vec<i32> {
    coeffs.iter().map(|&c| quantize(c, step)).collect()
}

/// Dequantizes a whole coefficient vector.
pub fn dequantize_all(quants: &[i32], step: f64) -> Vec<f64> {
    quants.iter().map(|&q| dequantize(q, step)).collect()
}

/// Result of the iterative rate-control loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RateControlResult {
    /// The chosen quantizer step.
    pub step: f64,
    /// Quantized coefficients at that step.
    pub quantized: Vec<i32>,
    /// Actual coded size in bits at that step.
    pub bits: usize,
    /// Number of search iterations used.
    pub iterations: usize,
}

/// Finds (by bisection over the log-step) the smallest quantizer step
/// whose coded size fits `bit_budget`, mimicking MP3's inner rate loop.
///
/// Returns the coarsest usable quantization if even the coarsest probe
/// exceeds the budget (which, with Elias-gamma coding of zeros, cannot
/// happen for budgets ≥ `2 × len` bits).
///
/// # Panics
///
/// Panics if `coeffs` is empty or `bit_budget` is zero.
///
/// # Examples
///
/// ```
/// use noc_dsp::quantize::rate_control;
///
/// let coeffs: Vec<f64> = (0..64).map(|n| (n as f64 * 0.2).sin() * 8.0).collect();
/// let result = rate_control(&coeffs, 256);
/// assert!(result.bits <= 256);
/// ```
pub fn rate_control(coeffs: &[f64], bit_budget: usize) -> RateControlResult {
    assert!(!coeffs.is_empty(), "nothing to quantize");
    assert!(bit_budget > 0, "bit budget must be positive");

    let peak = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    if peak == 0.0 {
        // Silence: the finest step works trivially.
        let quantized = vec![0i32; coeffs.len()];
        let bits = coded_size(&quantized);
        return RateControlResult {
            step: 1.0,
            quantized,
            bits,
            iterations: 0,
        };
    }

    // Search window: from very fine (peak/2^16) to coarse enough that
    // everything quantizes to zero (step > peak means |x/step| < 1 and
    // the 3/4-power round gives 0 or ±1; 4*peak forces all-zero).
    let mut fine = peak / 65_536.0;
    let mut coarse = peak * 4.0;
    let mut iterations = 0;

    // Ensure the coarse end fits (it always does for sane budgets).
    let q_coarse = quantize_all(coeffs, coarse);
    let b_coarse = coded_size(&q_coarse);
    if b_coarse > bit_budget {
        return RateControlResult {
            step: coarse,
            quantized: q_coarse,
            bits: b_coarse,
            iterations,
        };
    }
    let mut best = Some((coarse, q_coarse, b_coarse));

    for _ in 0..40 {
        iterations += 1;
        let mid = (fine.ln() + coarse.ln()) / 2.0;
        let step = mid.exp();
        let q = quantize_all(coeffs, step);
        let bits = coded_size(&q);
        if bits <= bit_budget {
            // Fits: try finer.
            coarse = step;
            best = Some((step, q, bits));
        } else {
            fine = step;
        }
        if (coarse / fine - 1.0).abs() < 1e-6 {
            break;
        }
    }
    let (step, quantized, bits) = best.expect("coarse end verified to fit");
    RateControlResult {
        step,
        quantized,
        bits,
        iterations,
    }
}

/// Exact coded size (bits) of a quantized vector under the bitstream's
/// signed Elias-gamma code.
pub fn coded_size(quants: &[i32]) -> usize {
    quants.iter().map(|&q| coded_bits(q)).sum()
}

/// Convenience: code a quantized vector into a fresh writer (used by the
/// encoder pipeline and tests).
pub fn code_into_writer(quants: &[i32]) -> BitWriter {
    let mut writer = BitWriter::new();
    for &q in quants {
        writer.write_signed_gamma(q);
    }
    writer
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_zero_is_zero() {
        assert_eq!(quantize(0.0, 0.5), 0);
        assert_eq!(dequantize(0, 0.5), 0.0);
    }

    #[test]
    fn quantize_preserves_sign() {
        assert!(quantize(3.7, 0.1) > 0);
        assert!(quantize(-3.7, 0.1) < 0);
        assert_eq!(quantize(3.7, 0.1), -quantize(-3.7, 0.1));
    }

    #[test]
    fn round_trip_error_shrinks_with_step() {
        let x = 2.34567;
        let err = |step: f64| (dequantize(quantize(x, step), step) - x).abs();
        assert!(err(0.001) < err(0.1));
        assert!(err(0.001) < 0.01);
    }

    #[test]
    fn coarse_step_zeroes_everything() {
        let coeffs = [0.5, -0.25, 0.125];
        let q = quantize_all(&coeffs, 10.0);
        assert_eq!(q, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_step_panics() {
        let _ = quantize(1.0, 0.0);
    }

    #[test]
    fn rate_control_fits_budget() {
        let coeffs: Vec<f64> = (0..128)
            .map(|n| ((n * n) as f64 * 0.01).sin() * 4.0)
            .collect();
        for budget in [300, 600, 1200] {
            let r = rate_control(&coeffs, budget);
            assert!(r.bits <= budget, "budget {budget}: used {}", r.bits);
        }
    }

    #[test]
    fn bigger_budget_gives_finer_quantization() {
        let coeffs: Vec<f64> = (0..128).map(|n| (n as f64 * 0.17).sin() * 4.0).collect();
        let small = rate_control(&coeffs, 300);
        let large = rate_control(&coeffs, 2400);
        assert!(large.step < small.step, "{} !< {}", large.step, small.step);
        // Finer quantization means lower reconstruction error.
        let err = |r: &RateControlResult| -> f64 {
            dequantize_all(&r.quantized, r.step)
                .iter()
                .zip(&coeffs)
                .map(|(a, b)| (a - b).powi(2))
                .sum()
        };
        assert!(err(&large) < err(&small));
    }

    #[test]
    fn silence_needs_minimal_bits() {
        let r = rate_control(&[0.0; 32], 1000);
        assert_eq!(r.quantized, vec![0; 32]);
        assert_eq!(r.bits, 32, "a zero codes to one gamma bit");
    }

    proptest! {
        #[test]
        fn dequantize_quantize_is_monotone(
            a in -100.0f64..100.0,
            b in -100.0f64..100.0,
            step in 0.01f64..10.0,
        ) {
            // Quantization must preserve order (monotone nondecreasing).
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantize(lo, step) <= quantize(hi, step));
        }

        #[test]
        fn rate_control_never_overshoots(
            scale in 0.1f64..50.0,
            budget in 64usize..4096,
        ) {
            let coeffs: Vec<f64> = (0..32).map(|n| (n as f64 * 0.29).sin() * scale).collect();
            let r = rate_control(&coeffs, budget);
            prop_assert!(r.bits <= budget);
            prop_assert_eq!(r.quantized.len(), 32);
        }
    }
}
