//! The sanctioned wall-clock read.
//!
//! `Stopwatch` is the only place in the workspace allowed to call
//! `std::time::Instant::now()`; the `nondeterministic-time` lint rule
//! exempts `crates/obs/` and flags every other call site. Keeping the
//! read behind one type makes the wall-clock plane auditable: grep for
//! `Stopwatch::start` and you have every timing span in the system.

use std::time::{Duration, Instant};

/// A started monotonic timer.
///
/// Spans are measured by constructing a `Stopwatch` at the start of the
/// region and feeding it to [`crate::Histogram::observe`] (or reading
/// [`Stopwatch::elapsed_secs`]) at the end. The type is `Copy`-free on
/// purpose — a span is started once and usually consumed once — but it
/// is `Clone` so sweep-level timers can be shared across threads.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a timer at the current instant.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in seconds as a float (the unit every histogram and
    /// gauge in the registry uses).
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Elapsed time in whole nanoseconds, saturating at `u64::MAX`
    /// (584 years — safely beyond any sweep).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_consistent() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a, "monotonic clock went backwards");
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
