//! Allowlisted negative: wall-clock read for progress logging only.

pub fn elapsed_secs() -> f64 {
    // noc-lint: allow(nondeterministic-time, reason = "wall-clock feeds stderr progress only, never a result table")
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
