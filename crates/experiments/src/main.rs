//! CLI entry point: regenerate any figure of the paper.
//!
//! ```text
//! experiments <figure> [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH] [--metrics-out PATH] [--progress]
//! experiments all [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH] [--metrics-out PATH] [--progress]
//! ```
//!
//! `--threads N` pins the Monte-Carlo worker count (default:
//! auto-detect); output tables are bit-identical for every `N`.
//! `--shards N` splits each simulation's tiles across N scoped worker
//! threads inside a trial (default 1 = sequential, 0 = auto-detect);
//! tables are bit-identical for every `N` here too.
//! `--seed N` re-roots every figure's trial-seed derivation (default 0).
//! `--trace-events PATH` streams a JSONL event log of one representative
//! trial to PATH (currently supported by `fig3-3` and `hostile`); it
//! composes with `--metrics-out` — the traced trial runs once, feeding
//! both sinks.
//! `--reconcile-json PATH` writes the CounterSink-vs-report
//! reconciliation summary to PATH (currently supported by `hostile`).
//! `--metrics-out PATH` turns on the wall-clock observability plane: a
//! metrics snapshot (engine-phase spans, per-trial timings, throughput)
//! is written to PATH as JSON and to PATH.prom as Prometheus text when
//! all figures finish. Tables and digests are byte-identical either way.
//! `--checkpoint-every N` (with optional `--checkpoint-dir PATH`,
//! default `.`) writes a resumable engine checkpoint every N rounds of
//! each mega-grid simulation, as
//! `<dir>/mega-grid-<side>-<regime>-round-<R>.ckpt`.
//! `--resume PATH` restores the mega-grid simulation whose
//! configuration digest matches the checkpoint at PATH and continues it
//! from the captured round; non-matching configurations rerun from
//! round 0, and the tables are byte-identical either way.
//! `--progress` emits throttled JSONL heartbeats on stderr while sweeps
//! run (trials done/total, trials/sec, ETA).

#![forbid(unsafe_code)]

use noc_experiments::{
    ablations, error_models, fig3_1, fig3_3, fig4_10, fig4_11, fig4_4, fig4_5, fig4_6, fig4_8,
    fig4_9, fig5_3, grid_spread, hostile, mega_grid, runner, Scale,
};

const FIGURES: &[&str] = &[
    "fig3-1",
    "fig3-3",
    "fig4-4",
    "fig4-5",
    "fig4-6",
    "fig4-8",
    "fig4-9",
    "fig4-10",
    "fig4-11",
    "fig5-3",
    "error-models",
    "ablations",
    "grid-spread",
    "hostile",
    "mega-grid",
];

fn run_figure(name: &str, scale: Scale) -> bool {
    match name {
        "fig3-1" => fig3_1::print(&fig3_1::run(scale)),
        "fig3-3" => fig3_3::print(&fig3_3::run(scale)),
        "fig4-4" => fig4_4::print(&fig4_4::run(scale)),
        "fig4-5" => fig4_5::print(&fig4_5::run(scale)),
        "fig4-6" => fig4_6::print(&fig4_6::run(scale)),
        "fig4-8" => fig4_8::print(&fig4_8::run(scale)),
        "fig4-9" => fig4_9::print(&fig4_9::run(scale)),
        "fig4-10" => fig4_10::print(&fig4_10::run(scale)),
        "fig4-11" => fig4_11::print(&fig4_11::run(scale)),
        "fig5-3" => fig5_3::print(&fig5_3::run(scale)),
        "error-models" => error_models::print(&error_models::run(scale)),
        "ablations" => ablations::print(&ablations::run(scale)),
        "grid-spread" => grid_spread::print(&grid_spread::run(scale)),
        "hostile" => hostile::print(&hostile::run(scale)),
        "mega-grid" => mega_grid::print(&mega_grid::run(scale)),
        _ => return false,
    }
    true
}

/// Summarises the runner reports a figure deposited while it ran, as
/// one `figure_done` JSONL line — the same machine-readable framing as
/// `--progress` heartbeats.
///
/// Goes to stderr so the tables on stdout stay byte-identical across
/// thread counts.
fn print_runner_summary(name: &str) {
    let reports = runner::take_reports();
    if reports.is_empty() {
        return;
    }
    let trials: u64 = reports.iter().map(|r| r.trials).sum();
    let elapsed: std::time::Duration = reports.iter().map(|r| r.elapsed).sum();
    let workers = reports.iter().map(|r| r.workers).max().unwrap_or(1);
    let secs = elapsed.as_secs_f64();
    let trials_per_sec = if secs > 0.0 {
        trials as f64 / secs
    } else {
        0.0
    };
    eprintln!(
        "{{\"event\":\"figure_done\",\"figure\":\"{name}\",\"sweeps\":{},\"trials\":{trials},\"workers\":{workers},\"elapsed_secs\":{secs:.3},\"trials_per_sec\":{trials_per_sec:.2}}}",
        reports.len(),
    );
}

/// Writes the wall-clock metrics snapshot to `path` (JSON) and
/// `path.prom` (Prometheus text exposition).
fn write_metrics_snapshot(metrics: &noc_obs::Metrics, path: &str) {
    let snapshot = metrics.snapshot();
    let prom_path = format!("{path}.prom");
    if let Err(err) = std::fs::write(path, snapshot.to_json()) {
        eprintln!("failed to write metrics snapshot to {path}: {err}");
        std::process::exit(1);
    }
    if let Err(err) = std::fs::write(&prom_path, snapshot.to_prometheus()) {
        eprintln!("failed to write metrics snapshot to {prom_path}: {err}");
        std::process::exit(1);
    }
    eprintln!(
        "{{\"event\":\"metrics_written\",\"json\":\"{path}\",\"prometheus\":\"{prom_path}\"}}"
    );
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    let value = parse_string_flag(args, flag)?;
    Some(value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got '{value}'");
        std::process::exit(2);
    }))
}

fn parse_string_flag(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    let value = args.get(position + 1).unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    });
    Some(value.clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if let Some(threads) = parse_flag(&args, "--threads") {
        runner::set_default_threads(usize::try_from(threads).unwrap_or(usize::MAX));
    }
    if let Some(shards) = parse_flag(&args, "--shards") {
        runner::set_default_shards(usize::try_from(shards).unwrap_or(usize::MAX));
    }
    if let Some(seed) = parse_flag(&args, "--seed") {
        runner::set_base_seed(seed);
    }
    runner::set_trace_path(parse_string_flag(&args, "--trace-events"));
    runner::set_reconcile_json_path(parse_string_flag(&args, "--reconcile-json"));
    if let Some(every) = parse_flag(&args, "--checkpoint-every") {
        runner::set_checkpoint_every(every);
    }
    runner::set_checkpoint_dir(parse_string_flag(&args, "--checkpoint-dir"));
    runner::set_resume_path(parse_string_flag(&args, "--resume"));
    let metrics_out = parse_string_flag(&args, "--metrics-out");
    let metrics = metrics_out.as_ref().map(|_| {
        let metrics = std::sync::Arc::new(noc_obs::Metrics::new());
        runner::install_metrics(Some(std::sync::Arc::clone(&metrics)));
        metrics
    });
    runner::set_progress(args.iter().any(|a| a == "--progress"));
    let mut skip_next = false;
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--threads"
                || *a == "--shards"
                || *a == "--seed"
                || *a == "--trace-events"
                || *a == "--reconcile-json"
                || *a == "--metrics-out"
                || *a == "--checkpoint-every"
                || *a == "--checkpoint-dir"
                || *a == "--resume"
            {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    if targets.is_empty() || targets == ["help"] {
        eprintln!(
            "usage: experiments <figure>|all [--full] [--threads N] [--shards N] [--seed N] [--trace-events PATH] [--reconcile-json PATH] [--metrics-out PATH] [--checkpoint-every N] [--checkpoint-dir PATH] [--resume PATH] [--progress]"
        );
        eprintln!("figures: {}", FIGURES.join(", "));
        std::process::exit(if targets.is_empty() { 2 } else { 0 });
    }

    let run_all = targets.contains(&"all");
    let list: Vec<&str> = if run_all { FIGURES.to_vec() } else { targets };
    for name in list {
        if !run_figure(name, scale) {
            eprintln!("unknown figure '{name}'; known: {}", FIGURES.join(", "));
            std::process::exit(2);
        }
        print_runner_summary(name);
    }

    if let (Some(metrics), Some(path)) = (metrics, metrics_out) {
        write_metrics_snapshot(&metrics, &path);
    }
}
