//! Synthetic PCM test signals — the "Signal Acquisition" module of the
//! encoder pipeline (Figure 4-7).
//!
//! The paper drove its MP3 experiments with real audio through LAME; as
//! documented in DESIGN.md, this reproduction substitutes deterministic
//! synthetic programme material (tone mixtures plus pseudo-noise) that
//! exercises the identical pipeline data flow.

/// A deterministic PCM generator.
///
/// # Examples
///
/// ```
/// use noc_dsp::signal::SignalGenerator;
///
/// let mut gen = SignalGenerator::music_like(42);
/// let frame = gen.next_frame(512);
/// assert_eq!(frame.len(), 512);
/// assert!(frame.iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SignalGenerator {
    /// Component tones: (normalized frequency in cycles/sample, amplitude).
    tones: Vec<(f64, f64)>,
    /// Amplitude of the pseudo-noise floor.
    noise_amplitude: f64,
    /// Sample cursor.
    position: u64,
    /// xorshift noise state.
    noise_state: u64,
    /// Overall gain keeping the mix within [-1, 1].
    gain: f64,
}

impl SignalGenerator {
    /// A music-like mixture: a handful of harmonically related tones with
    /// slow amplitude structure plus a low noise floor. `seed` varies the
    /// noise sequence only, keeping the tonal content comparable across
    /// runs.
    pub fn music_like(seed: u64) -> Self {
        let tones = vec![
            (0.013, 1.0),  // fundamental
            (0.026, 0.5),  // 2nd harmonic
            (0.039, 0.25), // 3rd harmonic
            (0.071, 0.3),  // an unrelated voice
        ];
        Self::new(tones, 0.05, seed)
    }

    /// A single pure tone at `freq` cycles/sample (useful for
    /// psychoacoustic tests).
    pub fn pure_tone(freq: f64, seed: u64) -> Self {
        Self::new(vec![(freq, 1.0)], 0.0, seed)
    }

    /// White pseudo-noise only.
    pub fn noise(seed: u64) -> Self {
        Self::new(vec![], 1.0, seed)
    }

    /// Creates a generator from explicit components.
    ///
    /// # Panics
    ///
    /// Panics if any amplitude or the noise amplitude is negative, or a
    /// frequency is outside `(0, 0.5)` (the Nyquist range).
    pub fn new(tones: Vec<(f64, f64)>, noise_amplitude: f64, seed: u64) -> Self {
        for &(f, a) in &tones {
            assert!(f > 0.0 && f < 0.5, "frequency {f} outside (0, 0.5)");
            assert!(a >= 0.0, "negative amplitude");
        }
        assert!(noise_amplitude >= 0.0, "negative noise amplitude");
        let total: f64 = tones.iter().map(|&(_, a)| a).sum::<f64>() + noise_amplitude;
        let gain = if total > 0.0 { 1.0 / total } else { 0.0 };
        Self {
            tones,
            noise_amplitude,
            position: 0,
            noise_state: seed | 1,
            gain,
        }
    }

    /// Produces the next `n` samples, each within `[-1, 1]`.
    pub fn next_frame(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// Produces one sample.
    pub fn next_sample(&mut self) -> f64 {
        let t = self.position as f64;
        self.position += 1;
        let mut x = 0.0;
        for &(f, a) in &self.tones {
            x += a * (2.0 * std::f64::consts::PI * f * t).sin();
        }
        if self.noise_amplitude > 0.0 {
            x += self.noise_amplitude * self.next_noise();
        }
        x * self.gain
    }

    /// xorshift64* uniform noise in [-1, 1).
    fn next_noise(&mut self) -> f64 {
        let mut s = self.noise_state;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.noise_state = s;
        let u = s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        u as f64 / (1u64 << 52) as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let mut g = SignalGenerator::music_like(1);
        let frame = g.next_frame(10_000);
        assert!(frame.iter().all(|x| x.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = SignalGenerator::music_like(7);
        let mut b = SignalGenerator::music_like(7);
        assert_eq!(a.next_frame(256), b.next_frame(256));
    }

    #[test]
    fn seeds_change_the_noise_only() {
        let mut a = SignalGenerator::pure_tone(0.1, 1);
        let mut b = SignalGenerator::pure_tone(0.1, 2);
        // No noise component: seeds are irrelevant.
        assert_eq!(a.next_frame(64), b.next_frame(64));
        let mut c = SignalGenerator::noise(1);
        let mut d = SignalGenerator::noise(2);
        assert_ne!(c.next_frame(64), d.next_frame(64));
    }

    #[test]
    fn pure_tone_has_the_requested_period() {
        let freq = 0.05; // 20-sample period
        let mut g = SignalGenerator::pure_tone(freq, 0);
        let frame = g.next_frame(200);
        for j in 0..180 {
            assert!((frame[j] - frame[j + 20]).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_is_roughly_zero_mean() {
        let mut g = SignalGenerator::noise(99);
        let frame = g.next_frame(100_000);
        let mean: f64 = frame.iter().sum::<f64>() / frame.len() as f64;
        assert!(mean.abs() < 0.02, "noise mean {mean}");
    }

    #[test]
    #[should_panic(expected = "outside (0, 0.5)")]
    fn nyquist_violation_panics() {
        let _ = SignalGenerator::new(vec![(0.7, 1.0)], 0.0, 0);
    }

    #[test]
    fn frames_continue_the_stream() {
        let mut a = SignalGenerator::music_like(3);
        let joined: Vec<f64> = a.next_frame(128);
        let mut b = SignalGenerator::music_like(3);
        let first = b.next_frame(64);
        let second = b.next_frame(64);
        assert_eq!(&joined[..64], first.as_slice());
        assert_eq!(&joined[64..], second.as_slice());
    }
}
