//! Running energy/traffic accounting for a simulation.

use serde::Serialize;

use crate::metrics::{communication_energy, energy_delay_product, EnergyDelay};
use crate::tech::TechnologyLibrary;
use crate::units::{Bits, Joules, Seconds};

/// Accumulates packet transmissions during a simulation and converts them
/// into energy figures on demand.
///
/// Every call to [`EnergyAccount::record_transmission`] corresponds to one
/// packet crossing one link (the switching activity that Equation 3
/// charges for).
///
/// # Examples
///
/// ```
/// use noc_energy::{Bits, EnergyAccount, TechnologyLibrary};
///
/// let mut account = EnergyAccount::new(TechnologyLibrary::NOC_LINK_0_25UM);
/// account.record_transmission(Bits(64));
/// account.record_transmission(Bits(128));
/// assert_eq!(account.transmissions(), 2);
/// assert_eq!(account.total_bits(), Bits(192));
/// assert!(account.total_energy().joules() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnergyAccount {
    tech: TechnologyLibrary,
    transmissions: u64,
    total_bits: Bits,
}

impl EnergyAccount {
    /// Creates an empty account charging at the given technology's rates.
    pub fn new(tech: TechnologyLibrary) -> Self {
        Self {
            tech,
            transmissions: 0,
            total_bits: Bits(0),
        }
    }

    /// The technology point used for conversion.
    pub fn technology(&self) -> &TechnologyLibrary {
        &self.tech
    }

    /// Records one packet of `size` crossing one link.
    pub fn record_transmission(&mut self, size: Bits) {
        self.transmissions += 1;
        self.total_bits += size;
    }

    /// Records `count` identical transmissions at once.
    pub fn record_transmissions(&mut self, count: u64, size: Bits) {
        self.transmissions += count;
        self.total_bits += Bits(size.bits() * count);
    }

    /// Total number of link traversals recorded.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total bits moved across links.
    pub fn total_bits(&self) -> Bits {
        self.total_bits
    }

    /// Total energy under Equation 3 (exact, using the true bit total
    /// rather than an average packet size).
    pub fn total_energy(&self) -> Joules {
        communication_energy(self.total_bits.bits(), Bits(1), self.tech.energy_per_bit)
    }

    /// Energy per transmitted bit — constant by construction, but useful
    /// when comparing accounts with different technologies.
    pub fn energy_per_bit(&self) -> Joules {
        self.tech.energy_per_bit
    }

    /// Energy×delay product for a run that took `elapsed` wall-clock
    /// (simulated) time.
    pub fn energy_delay(&self, elapsed: Seconds) -> EnergyDelay {
        energy_delay_product(self.total_energy(), elapsed)
    }

    /// Merges another account's traffic into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two accounts use different technologies (their
    /// energies would not be comparable).
    pub fn merge(&mut self, other: &EnergyAccount) {
        assert_eq!(
            self.tech, other.tech,
            "cannot merge accounts with different technologies"
        );
        self.transmissions += other.transmissions;
        self.total_bits += other.total_bits;
    }

    /// Resets the counters, keeping the technology.
    pub fn reset(&mut self) {
        self.transmissions = 0;
        self.total_bits = Bits(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account() -> EnergyAccount {
        EnergyAccount::new(TechnologyLibrary::NOC_LINK_0_25UM)
    }

    #[test]
    fn empty_account_has_zero_energy() {
        let a = account();
        assert_eq!(a.transmissions(), 0);
        assert_eq!(a.total_energy(), Joules::ZERO);
    }

    #[test]
    fn batch_and_single_recording_agree() {
        let mut a = account();
        let mut b = account();
        for _ in 0..5 {
            a.record_transmission(Bits(64));
        }
        b.record_transmissions(5, Bits(64));
        assert_eq!(a, b);
    }

    #[test]
    fn energy_matches_equation_3() {
        let mut a = account();
        a.record_transmissions(1000, Bits(64));
        let expect = 1000.0 * 64.0 * 2.4e-10;
        assert!((a.total_energy().joules() - expect).abs() < 1e-15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = account();
        a.record_transmission(Bits(8));
        let mut b = account();
        b.record_transmission(Bits(16));
        a.merge(&b);
        assert_eq!(a.transmissions(), 2);
        assert_eq!(a.total_bits(), Bits(24));
    }

    #[test]
    #[should_panic(expected = "different technologies")]
    fn merging_across_technologies_panics() {
        let mut a = account();
        let b = EnergyAccount::new(TechnologyLibrary::BUS_0_25UM);
        a.merge(&b);
    }

    #[test]
    fn reset_clears_counters_only() {
        let mut a = account();
        a.record_transmission(Bits(64));
        a.reset();
        assert_eq!(a.transmissions(), 0);
        assert_eq!(a.technology(), &TechnologyLibrary::NOC_LINK_0_25UM);
    }

    #[test]
    fn energy_delay_is_monotone_in_time() {
        let mut a = account();
        a.record_transmissions(10, Bits(64));
        let fast = a.energy_delay(Seconds::new(1e-6));
        let slow = a.energy_delay(Seconds::new(2e-6));
        assert!(slow.joule_seconds() > fast.joule_seconds());
    }
}
