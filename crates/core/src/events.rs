//! Structured event tracing of the packet lifecycle.
//!
//! Every statistical claim the simulator makes — delivery probability,
//! latency jitter, energy under DSM faults — is an aggregate over
//! individual packet fates. This module makes those fates observable:
//! the engine emits one [`SimEvent`] at every decision point in the hot
//! path (transmission, CRC verdict, overflow, crash, duplicate
//! suppression, TTL expiry, clock slip, delivery), attributed to the
//! round, tile and (where meaningful) link at which it happened.
//!
//! Sinks implement [`EventSink`] and are installed at build time via
//! [`crate::SimulationBuilder::build_with_sink`]. The engine is generic
//! over the sink type, so the default [`NullSink`] monomorphizes every
//! emission into nothing — a simulation built with
//! [`crate::SimulationBuilder::build`] pays zero cost for the
//! instrumentation (guarded by the `perf_baseline` harness and by the
//! golden-report digests, which are byte-identical with any sink
//! installed: sinks observe, they never influence).
//!
//! Provided sinks:
//!
//! * [`NullSink`] — discards everything (the default engine);
//! * [`CounterSink`] — per-tile / per-link event histograms whose sums
//!   reconcile *exactly* with [`crate::SimulationReport`]'s global
//!   counters ([`CounterSink::reconcile`] is the standing oracle);
//! * [`JsonlSink`] — one JSON object per event on any [`std::io::Write`],
//!   for offline analysis;
//! * `Vec<SimEvent>` — collects raw events, handy in tests.

use std::io::Write;

use noc_fabric::{LinkId, MessageId, NodeId};

use crate::metrics::SimulationReport;

/// Where a crash drop happened: at a dead receiving tile, or on a dead
/// link in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropSite {
    /// The frame arrived at a tile that is dead (defective or crashed).
    Tile(NodeId),
    /// The frame was transmitted onto a dead link.
    Link(LinkId),
}

/// One observable event in a packet's lifecycle.
///
/// Events carry the round they happened in and the tile/link they are
/// attributed to. Message ids are included where the engine knows them —
/// a frame rejected by the CRC never yields a trustworthy id, so
/// [`SimEvent::CrcReject`] carries only its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A frame was transmitted onto a link (counted whether or not the
    /// link turns out to be dead — the sender spent the energy).
    FrameSent {
        /// Round of transmission.
        round: u64,
        /// Transmitting tile.
        from: NodeId,
        /// Link the frame was placed on.
        link: LinkId,
        /// Receiving end of the link.
        to: NodeId,
        /// The message carried by the frame.
        message: MessageId,
    },
    /// A buffered message was serviced by a tile's egress scheduler this
    /// round (offered to every output link, each with probability `p`).
    Forwarded {
        /// Round of service.
        round: u64,
        /// Forwarding tile.
        tile: NodeId,
        /// The serviced message.
        message: MessageId,
    },
    /// A scrambled frame was discarded by the receive-side CRC check.
    CrcReject {
        /// Round of rejection.
        round: u64,
        /// Receiving tile.
        tile: NodeId,
        /// Link the frame arrived on (`None` for local loopback).
        link: Option<LinkId>,
    },
    /// A scrambled frame *passed* the CRC check and entered the buffer —
    /// the residual undetected-error case.
    UndetectedUpset {
        /// Round of acceptance.
        round: u64,
        /// Receiving tile.
        tile: NodeId,
        /// The (possibly corrupted) message id that was accepted.
        message: MessageId,
    },
    /// A frame was dropped by receive-buffer overflow.
    OverflowDrop {
        /// Round of the drop.
        round: u64,
        /// Overflowing tile.
        tile: NodeId,
    },
    /// A frame was swallowed by a dead tile or dead link.
    CrashDrop {
        /// Round of the drop.
        round: u64,
        /// Where the frame died.
        site: DropSite,
    },
    /// An arriving frame was suppressed as redundant: its message is
    /// already in the tile's seen-set, or its spread has terminated.
    DuplicateDrop {
        /// Round of suppression.
        round: u64,
        /// Receiving tile.
        tile: NodeId,
        /// The redundant message.
        message: MessageId,
    },
    /// A buffered message was garbage-collected by TTL expiry.
    TtlExpiry {
        /// Round of collection.
        round: u64,
        /// Tile whose buffer expired the message.
        tile: NodeId,
        /// The expired message.
        message: MessageId,
    },
    /// A tile's accumulated synchronization skew crossed a round
    /// boundary; one event per whole-round slip.
    ClockSlip {
        /// Round of the slip.
        round: u64,
        /// Slipping tile.
        tile: NodeId,
    },
    /// First delivery of a message to its destination IP.
    Delivery {
        /// Round of delivery.
        round: u64,
        /// Destination tile.
        tile: NodeId,
        /// The delivered message.
        message: MessageId,
        /// Originating tile.
        source: NodeId,
    },
    /// A frame was forwarded onto a link severed by an active partition
    /// cut and lost (the sender spent the transmission energy).
    PartitionDrop {
        /// Round of the drop.
        round: u64,
        /// The severed link.
        link: LinkId,
    },
    /// A Byzantine tile emitted a forged, CRC-valid equivocation of a
    /// buffered message.
    ByzantineForge {
        /// Round of the forgery.
        round: u64,
        /// The compromised tile.
        tile: NodeId,
        /// The message whose payload was forged.
        message: MessageId,
    },
    /// A Byzantine tile replayed the frame it last forwarded
    /// legitimately.
    ByzantineReplay {
        /// Round of the replay.
        round: u64,
        /// The compromised tile.
        tile: NodeId,
    },
    /// Adversarial latency jitter held a frame back one round.
    AdversarialDelay {
        /// Round of transmission.
        round: u64,
        /// The jittering link.
        link: LinkId,
    },
    /// Adversarial reordering pushed a frame to the front of its
    /// destination's receive queue.
    AdversarialReorder {
        /// Round of transmission.
        round: u64,
        /// The reordering link.
        link: LinkId,
    },
    /// The active frontier drained to zero live messages at the end of a
    /// round that did not complete the run: every send buffer is empty,
    /// but frames still sit in the arrival delay line (chaos-delayed or
    /// slip-held) or an IP is still awaiting input. Quiescent rounds are
    /// the O(active) fast path of the frontier worklist — this event
    /// makes that behavior observable and exactly checkable.
    RoundQuiescent {
        /// The quiescent round.
        round: u64,
        /// Frames still in flight in the arrival delay line.
        inflight: u64,
    },
}

impl SimEvent {
    /// The round the event happened in.
    pub fn round(&self) -> u64 {
        match *self {
            SimEvent::FrameSent { round, .. }
            | SimEvent::Forwarded { round, .. }
            | SimEvent::CrcReject { round, .. }
            | SimEvent::UndetectedUpset { round, .. }
            | SimEvent::OverflowDrop { round, .. }
            | SimEvent::CrashDrop { round, .. }
            | SimEvent::DuplicateDrop { round, .. }
            | SimEvent::TtlExpiry { round, .. }
            | SimEvent::ClockSlip { round, .. }
            | SimEvent::Delivery { round, .. }
            | SimEvent::PartitionDrop { round, .. }
            | SimEvent::ByzantineForge { round, .. }
            | SimEvent::ByzantineReplay { round, .. }
            | SimEvent::AdversarialDelay { round, .. }
            | SimEvent::AdversarialReorder { round, .. }
            | SimEvent::RoundQuiescent { round, .. } => round,
        }
    }

    /// A stable lowercase tag naming the event kind (the `"event"` field
    /// of the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::FrameSent { .. } => "frame_sent",
            SimEvent::Forwarded { .. } => "forwarded",
            SimEvent::CrcReject { .. } => "crc_reject",
            SimEvent::UndetectedUpset { .. } => "undetected_upset",
            SimEvent::OverflowDrop { .. } => "overflow_drop",
            SimEvent::CrashDrop { .. } => "crash_drop",
            SimEvent::DuplicateDrop { .. } => "duplicate_drop",
            SimEvent::TtlExpiry { .. } => "ttl_expiry",
            SimEvent::ClockSlip { .. } => "clock_slip",
            SimEvent::Delivery { .. } => "delivery",
            SimEvent::PartitionDrop { .. } => "partition_drop",
            SimEvent::ByzantineForge { .. } => "byzantine_forge",
            SimEvent::ByzantineReplay { .. } => "byzantine_replay",
            SimEvent::AdversarialDelay { .. } => "adversarial_delay",
            SimEvent::AdversarialReorder { .. } => "adversarial_reorder",
            SimEvent::RoundQuiescent { .. } => "round_quiescent",
        }
    }
}

/// An observer of simulation events.
///
/// Contract: sinks are *passive*. A sink must not (and cannot, through
/// this interface) influence the simulation — the engine's RNG streams,
/// state transitions and report are identical whatever sink is
/// installed, which the golden-report digest tests enforce. `emit` is
/// called on the hot path; implementations should be cheap or buffer.
pub trait EventSink {
    /// Does this sink actually record events? `false` lets the sharded
    /// engine skip collecting per-worker event vectors entirely when the
    /// sink would discard them anyway ([`NullSink`]); the sequential
    /// engine monomorphizes emissions away regardless, so most sinks can
    /// leave the default.
    const RECORDS: bool = true;

    /// Observes one event.
    fn emit(&mut self, event: SimEvent);
}

/// The default sink: discards every event.
///
/// Because the engine is monomorphized per sink type, a simulation built
/// with `NullSink` compiles every emission point down to nothing — the
/// zero-overhead-when-disabled guarantee (asserted at ≤ 2% by the
/// `perf_baseline` harness, which measures the default build against an
/// explicit `build_with_sink(NullSink)` build).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const RECORDS: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: SimEvent) {}
}

/// Forwarding impl so a borrowed sink can be installed while the caller
/// keeps ownership (e.g. inspect a [`CounterSink`] after the run without
/// consuming the simulation).
impl<S: EventSink + ?Sized> EventSink for &mut S {
    const RECORDS: bool = S::RECORDS;

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        (**self).emit(event);
    }
}

/// Collects every event in order — convenient in tests.
impl EventSink for Vec<SimEvent> {
    #[inline]
    fn emit(&mut self, event: SimEvent) {
        self.push(event);
    }
}

/// Per-location event tallies accumulated by [`CounterSink`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// Frames transmitted (sender-attributed for tiles, carrier for links).
    pub frames_sent: u64,
    /// Messages serviced by the egress scheduler.
    pub forwards: u64,
    /// Frames discarded by the CRC check.
    pub crc_rejects: u64,
    /// Scrambled frames accepted past the CRC.
    pub undetected_upsets: u64,
    /// Frames dropped by receive-buffer overflow.
    pub overflow_drops: u64,
    /// Frames swallowed by dead tiles/links.
    pub crash_drops: u64,
    /// Redundant arrivals suppressed.
    pub duplicate_drops: u64,
    /// Messages garbage-collected by TTL expiry.
    pub ttl_expirations: u64,
    /// Round-boundary slips.
    pub clock_slips: u64,
    /// First deliveries to destination IPs.
    pub deliveries: u64,
    /// Frames lost to active partition cuts.
    pub partition_drops: u64,
    /// Forged CRC-valid frames emitted by Byzantine tiles.
    pub byzantine_forges: u64,
    /// Stale frames replayed by Byzantine tiles.
    pub byzantine_replays: u64,
    /// Frames delayed one round by adversarial jitter.
    pub adversarial_delays: u64,
    /// Frames that jumped a receive queue through adversarial reordering.
    pub adversarial_reorders: u64,
}

/// Number of event-count kinds tracked per location — one per
/// [`EventCounts`] field, in declaration order.
const KINDS: usize = 15;

/// Column indices into a [`Table`] row, mirroring the [`EventCounts`]
/// field order (`from_slots` below is the single source of truth for
/// the mapping).
mod kind {
    pub(super) const FRAMES_SENT: usize = 0;
    pub(super) const FORWARDS: usize = 1;
    pub(super) const CRC_REJECTS: usize = 2;
    pub(super) const UNDETECTED_UPSETS: usize = 3;
    pub(super) const OVERFLOW_DROPS: usize = 4;
    pub(super) const CRASH_DROPS: usize = 5;
    pub(super) const DUPLICATE_DROPS: usize = 6;
    pub(super) const TTL_EXPIRATIONS: usize = 7;
    pub(super) const CLOCK_SLIPS: usize = 8;
    pub(super) const DELIVERIES: usize = 9;
    pub(super) const PARTITION_DROPS: usize = 10;
    pub(super) const BYZANTINE_FORGES: usize = 11;
    pub(super) const BYZANTINE_REPLAYS: usize = 12;
    pub(super) const ADVERSARIAL_DELAYS: usize = 13;
    pub(super) const ADVERSARIAL_REORDERS: usize = 14;
}

/// Dense per-location counter storage: one flat `u64` array indexed
/// `location * KINDS + kind`. The hot path ([`CounterSink`]'s `emit`)
/// is a multiply-add and one slot increment — no per-location struct
/// stride, and with [`CounterSink::with_capacity`] no growth check ever
/// fires on a resize path.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Table {
    slots: Vec<u64>,
}

impl Table {
    fn with_locations(locations: usize) -> Self {
        Table {
            slots: vec![0; locations * KINDS],
        }
    }

    fn locations(&self) -> usize {
        self.slots.len() / KINDS
    }

    #[inline]
    fn bump(&mut self, location: usize, kind: usize) {
        let index = location * KINDS + kind;
        if index >= self.slots.len() {
            self.grow(location + 1);
        }
        self.slots[index] += 1;
    }

    #[cold]
    fn grow(&mut self, locations: usize) {
        self.slots.resize(locations * KINDS, 0);
    }

    fn get(&self, location: usize, kind: usize) -> u64 {
        self.slots
            .get(location * KINDS + kind)
            .copied()
            .unwrap_or(0)
    }

    fn counts(&self, location: usize) -> EventCounts {
        EventCounts::from_slots(&self.slots[location * KINDS..(location + 1) * KINDS])
    }

    fn merge(&mut self, other: &Table) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            *mine += *theirs;
        }
    }
}

impl EventCounts {
    /// Rehydrates one [`Table`] row (see [`kind`] for the column map).
    fn from_slots(slots: &[u64]) -> EventCounts {
        EventCounts {
            frames_sent: slots[kind::FRAMES_SENT],
            forwards: slots[kind::FORWARDS],
            crc_rejects: slots[kind::CRC_REJECTS],
            undetected_upsets: slots[kind::UNDETECTED_UPSETS],
            overflow_drops: slots[kind::OVERFLOW_DROPS],
            crash_drops: slots[kind::CRASH_DROPS],
            duplicate_drops: slots[kind::DUPLICATE_DROPS],
            ttl_expirations: slots[kind::TTL_EXPIRATIONS],
            clock_slips: slots[kind::CLOCK_SLIPS],
            deliveries: slots[kind::DELIVERIES],
            partition_drops: slots[kind::PARTITION_DROPS],
            byzantine_forges: slots[kind::BYZANTINE_FORGES],
            byzantine_replays: slots[kind::BYZANTINE_REPLAYS],
            adversarial_delays: slots[kind::ADVERSARIAL_DELAYS],
            adversarial_reorders: slots[kind::ADVERSARIAL_REORDERS],
        }
    }

    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &EventCounts) {
        self.frames_sent += other.frames_sent;
        self.forwards += other.forwards;
        self.crc_rejects += other.crc_rejects;
        self.undetected_upsets += other.undetected_upsets;
        self.overflow_drops += other.overflow_drops;
        self.crash_drops += other.crash_drops;
        self.duplicate_drops += other.duplicate_drops;
        self.ttl_expirations += other.ttl_expirations;
        self.clock_slips += other.clock_slips;
        self.deliveries += other.deliveries;
        self.partition_drops += other.partition_drops;
        self.byzantine_forges += other.byzantine_forges;
        self.byzantine_replays += other.byzantine_replays;
        self.adversarial_delays += other.adversarial_delays;
        self.adversarial_reorders += other.adversarial_reorders;
    }
}

/// Accumulates per-tile and per-link event histograms.
///
/// The per-tile sums reconcile exactly with the global counters of the
/// [`SimulationReport`] produced by the same run — that identity is the
/// repo's standing reconciliation oracle, checked by
/// [`CounterSink::reconcile`]. Crash drops split across the two
/// attribution axes: dead-*tile* arrivals are tile-attributed, dead-*link*
/// transmissions are link-attributed, and the two sum to the report's
/// `crash_drops`.
///
/// # Examples
///
/// ```
/// use noc_fabric::{Grid2d, NodeId};
/// use stochastic_noc::events::CounterSink;
/// use stochastic_noc::{SimulationBuilder, StochasticConfig};
///
/// let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
///     .config(StochasticConfig::flooding(8).with_max_rounds(20))
///     .seed(1)
///     .build_with_sink(CounterSink::new());
/// sim.inject(NodeId(0), NodeId(15), vec![1]);
/// let (report, counters) = sim.run_to_report_and_sink();
/// counters.reconcile(&report).expect("events reconcile with totals");
/// assert_eq!(counters.totals().frames_sent, report.packets_sent);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterSink {
    tiles: Table,
    links: Table,
    totals: EventCounts,
    /// Rounds that ended with zero live messages without completing the
    /// run. A whole-round observation, not a per-location event, so it
    /// lives beside the location tables rather than in [`EventCounts`].
    quiescent_rounds: u64,
}

impl CounterSink {
    /// An empty counter sink; per-location tables grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter sink with the per-location tables preallocated for
    /// `tiles` tiles and `links` links, so no `emit` on the hot path
    /// ever takes the growth branch. Sinks only compare equal when
    /// their table extents match, so fold same-constructor sinks
    /// together (as the sweep harnesses do).
    pub fn with_capacity(tiles: usize, links: usize) -> Self {
        CounterSink {
            tiles: Table::with_locations(tiles),
            links: Table::with_locations(links),
            totals: EventCounts::default(),
            quiescent_rounds: 0,
        }
    }

    /// Global tallies (every event counted exactly once).
    pub fn totals(&self) -> &EventCounts {
        &self.totals
    }

    /// Per-tile tallies, indexed by tile; tiles past the table extent
    /// (the preallocated capacity, or the highest tile that counted an
    /// event) are absent. Rehydrated from the dense storage on call —
    /// an inspection API, not a hot-path one.
    pub fn tiles(&self) -> Vec<EventCounts> {
        (0..self.tiles.locations())
            .map(|i| self.tiles.counts(i))
            .collect()
    }

    /// Per-link tallies, indexed by link id; same conventions as
    /// [`CounterSink::tiles`].
    pub fn links(&self) -> Vec<EventCounts> {
        (0..self.links.locations())
            .map(|i| self.links.counts(i))
            .collect()
    }

    /// Rounds observed to end quiescent (no live messages, run not yet
    /// complete) — the frontier worklist's fast-path rounds.
    pub fn quiescent_rounds(&self) -> u64 {
        self.quiescent_rounds
    }

    /// Recomputes the global tallies from the per-tile and per-link
    /// tables (crash drops are the one counter split across both axes).
    /// Equal to [`CounterSink::totals`] by construction; [`reconcile`]
    /// asserts it, catching any future attribution bug.
    ///
    /// [`reconcile`]: CounterSink::reconcile
    pub fn summed_from_locations(&self) -> EventCounts {
        let mut sum = EventCounts::default();
        for tile in 0..self.tiles.locations() {
            sum.merge(&self.tiles.counts(tile));
        }
        // Tile-axis frames_sent already covers every transmission; the
        // link table is a second view of the same events, so only the
        // counters attributed exclusively to links (absent from the tile
        // axis) fold in: crash drops on dead links, partition drops, and
        // adversarial delay/reorder jitter.
        for link in 0..self.links.locations() {
            sum.crash_drops += self.links.get(link, kind::CRASH_DROPS);
            sum.partition_drops += self.links.get(link, kind::PARTITION_DROPS);
            sum.adversarial_delays += self.links.get(link, kind::ADVERSARIAL_DELAYS);
            sum.adversarial_reorders += self.links.get(link, kind::ADVERSARIAL_REORDERS);
        }
        sum
    }

    /// Adds every tally of `other` into `self` — the deterministic
    /// per-trial merge used by Monte-Carlo sweeps (fold trials in
    /// index order and the result is independent of the worker count).
    pub fn merge(&mut self, other: &CounterSink) {
        self.tiles.merge(&other.tiles);
        self.links.merge(&other.links);
        self.totals.merge(&other.totals);
        self.quiescent_rounds += other.quiescent_rounds;
    }

    /// Checks the reconciliation identity: the per-location sums must
    /// equal both the running totals and every global counter of
    /// `report`. Returns a description of the first mismatch.
    pub fn reconcile(&self, report: &SimulationReport) -> Result<(), String> {
        let summed = self.summed_from_locations();
        if summed != self.totals {
            return Err(format!(
                "internal attribution drift: per-location sums {summed:?} != running totals {:?}",
                self.totals
            ));
        }
        let checks: [(&str, u64, u64); 12] = [
            ("packets_sent", summed.frames_sent, report.packets_sent),
            (
                "upsets_detected",
                summed.crc_rejects,
                report.upsets_detected,
            ),
            (
                "upsets_undetected",
                summed.undetected_upsets,
                report.upsets_undetected,
            ),
            (
                "overflow_drops",
                summed.overflow_drops,
                report.overflow_drops,
            ),
            ("crash_drops", summed.crash_drops, report.crash_drops),
            ("clock_slips", summed.clock_slips, report.clock_slips),
            (
                "ttl_expirations",
                summed.ttl_expirations,
                report.ttl_expirations,
            ),
            (
                "partition_drops",
                summed.partition_drops,
                report.partition_drops,
            ),
            (
                "byzantine_forges",
                summed.byzantine_forges,
                report.byzantine_forges,
            ),
            (
                "byzantine_replays",
                summed.byzantine_replays,
                report.byzantine_replays,
            ),
            (
                "adversarial_delays",
                summed.adversarial_delays,
                report.adversarial_delays,
            ),
            (
                "adversarial_reorders",
                summed.adversarial_reorders,
                report.adversarial_reorders,
            ),
        ];
        for (name, events, global) in checks {
            if events != global {
                return Err(format!(
                    "counter `{name}`: attributed events sum to {events}, report says {global}"
                ));
            }
        }
        let delivered = report.messages_delivered() as u64;
        if summed.deliveries != delivered {
            return Err(format!(
                "counter `deliveries`: attributed events sum to {}, report delivered {delivered}",
                summed.deliveries
            ));
        }
        if self.quiescent_rounds != report.quiescent_rounds {
            return Err(format!(
                "counter `quiescent_rounds`: {} events observed, report says {}",
                self.quiescent_rounds, report.quiescent_rounds
            ));
        }
        Ok(())
    }
}

impl EventSink for CounterSink {
    #[inline]
    fn emit(&mut self, event: SimEvent) {
        match event {
            SimEvent::FrameSent { from, link, .. } => {
                self.tiles.bump(from.index(), kind::FRAMES_SENT);
                self.links.bump(link.index(), kind::FRAMES_SENT);
                self.totals.frames_sent += 1;
            }
            SimEvent::Forwarded { tile, .. } => {
                self.tiles.bump(tile.index(), kind::FORWARDS);
                self.totals.forwards += 1;
            }
            SimEvent::CrcReject { tile, link, .. } => {
                self.tiles.bump(tile.index(), kind::CRC_REJECTS);
                if let Some(link) = link {
                    self.links.bump(link.index(), kind::CRC_REJECTS);
                }
                self.totals.crc_rejects += 1;
            }
            SimEvent::UndetectedUpset { tile, .. } => {
                self.tiles.bump(tile.index(), kind::UNDETECTED_UPSETS);
                self.totals.undetected_upsets += 1;
            }
            SimEvent::OverflowDrop { tile, .. } => {
                self.tiles.bump(tile.index(), kind::OVERFLOW_DROPS);
                self.totals.overflow_drops += 1;
            }
            SimEvent::CrashDrop { site, .. } => {
                match site {
                    DropSite::Tile(tile) => self.tiles.bump(tile.index(), kind::CRASH_DROPS),
                    DropSite::Link(link) => self.links.bump(link.index(), kind::CRASH_DROPS),
                }
                self.totals.crash_drops += 1;
            }
            SimEvent::DuplicateDrop { tile, .. } => {
                self.tiles.bump(tile.index(), kind::DUPLICATE_DROPS);
                self.totals.duplicate_drops += 1;
            }
            SimEvent::TtlExpiry { tile, .. } => {
                self.tiles.bump(tile.index(), kind::TTL_EXPIRATIONS);
                self.totals.ttl_expirations += 1;
            }
            SimEvent::ClockSlip { tile, .. } => {
                self.tiles.bump(tile.index(), kind::CLOCK_SLIPS);
                self.totals.clock_slips += 1;
            }
            SimEvent::Delivery { tile, .. } => {
                self.tiles.bump(tile.index(), kind::DELIVERIES);
                self.totals.deliveries += 1;
            }
            SimEvent::PartitionDrop { link, .. } => {
                self.links.bump(link.index(), kind::PARTITION_DROPS);
                self.totals.partition_drops += 1;
            }
            SimEvent::ByzantineForge { tile, .. } => {
                self.tiles.bump(tile.index(), kind::BYZANTINE_FORGES);
                self.totals.byzantine_forges += 1;
            }
            SimEvent::ByzantineReplay { tile, .. } => {
                self.tiles.bump(tile.index(), kind::BYZANTINE_REPLAYS);
                self.totals.byzantine_replays += 1;
            }
            SimEvent::AdversarialDelay { link, .. } => {
                self.links.bump(link.index(), kind::ADVERSARIAL_DELAYS);
                self.totals.adversarial_delays += 1;
            }
            SimEvent::AdversarialReorder { link, .. } => {
                self.links.bump(link.index(), kind::ADVERSARIAL_REORDERS);
                self.totals.adversarial_reorders += 1;
            }
            SimEvent::RoundQuiescent { .. } => {
                self.quiescent_rounds += 1;
            }
        }
    }
}

/// Duplicates every event to two sinks, so independent consumers — a
/// JSONL trace and a [`CounterSink`], say — observe the *same* stream
/// from a *single* run instead of re-running the trial per consumer.
/// This is the composition behind `--trace-events` + `--metrics-out`
/// in the experiments CLI.
///
/// Events are `Copy`, so the fan-out costs two moves; `RECORDS` is the
/// OR of the parts, so a tee of two non-recording sinks still
/// monomorphizes the emission points away.
#[derive(Debug, Default, Clone)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Tees `first` and `second` into one sink.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// The first sink, borrowed.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second sink, borrowed.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Splits the tee back into its parts.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    const RECORDS: bool = A::RECORDS || B::RECORDS;

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        self.first.emit(event);
        self.second.emit(event);
    }
}

/// Streams events as JSON Lines to any writer, for offline analysis.
///
/// One object per line, e.g.:
///
/// ```text
/// {"event":"frame_sent","round":3,"from":5,"link":12,"to":6,"message":0}
/// {"event":"crc_reject","round":4,"tile":6,"link":17}
/// ```
///
/// The encoding is hand-rolled (the workspace vendors a no-op `serde`
/// shim) but stable: field order is fixed per event kind, and every
/// value is an integer or the kind tag. Rounds are non-decreasing within
/// one simulation, so a JSONL file sorts naturally by emission order.
///
/// # Panics
///
/// [`EventSink::emit`] panics if the underlying writer fails — the sink
/// is a diagnostic tool and silently losing trace lines would defeat it.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Consider a [`std::io::BufWriter`] for files: the
    /// sink writes one line per event on the hot path.
    pub fn new(out: W) -> Self {
        Self { out, written: 0 }
    }

    /// Number of event lines written so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the final flush fails.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("flush JSONL event sink");
        self.out
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: SimEvent) {
        let result = match event {
            SimEvent::FrameSent {
                round,
                from,
                link,
                to,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"frame_sent\",\"round\":{round},\"from\":{},\"link\":{},\"to\":{},\"message\":{}}}",
                from.index(),
                link.index(),
                to.index(),
                message.0,
            ),
            SimEvent::Forwarded {
                round,
                tile,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"forwarded\",\"round\":{round},\"tile\":{},\"message\":{}}}",
                tile.index(),
                message.0,
            ),
            SimEvent::CrcReject { round, tile, link } => match link {
                Some(link) => writeln!(
                    self.out,
                    "{{\"event\":\"crc_reject\",\"round\":{round},\"tile\":{},\"link\":{}}}",
                    tile.index(),
                    link.index(),
                ),
                None => writeln!(
                    self.out,
                    "{{\"event\":\"crc_reject\",\"round\":{round},\"tile\":{}}}",
                    tile.index(),
                ),
            },
            SimEvent::UndetectedUpset {
                round,
                tile,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"undetected_upset\",\"round\":{round},\"tile\":{},\"message\":{}}}",
                tile.index(),
                message.0,
            ),
            SimEvent::OverflowDrop { round, tile } => writeln!(
                self.out,
                "{{\"event\":\"overflow_drop\",\"round\":{round},\"tile\":{}}}",
                tile.index(),
            ),
            SimEvent::CrashDrop { round, site } => match site {
                DropSite::Tile(tile) => writeln!(
                    self.out,
                    "{{\"event\":\"crash_drop\",\"round\":{round},\"tile\":{}}}",
                    tile.index(),
                ),
                DropSite::Link(link) => writeln!(
                    self.out,
                    "{{\"event\":\"crash_drop\",\"round\":{round},\"link\":{}}}",
                    link.index(),
                ),
            },
            SimEvent::DuplicateDrop {
                round,
                tile,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"duplicate_drop\",\"round\":{round},\"tile\":{},\"message\":{}}}",
                tile.index(),
                message.0,
            ),
            SimEvent::TtlExpiry {
                round,
                tile,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"ttl_expiry\",\"round\":{round},\"tile\":{},\"message\":{}}}",
                tile.index(),
                message.0,
            ),
            SimEvent::ClockSlip { round, tile } => writeln!(
                self.out,
                "{{\"event\":\"clock_slip\",\"round\":{round},\"tile\":{}}}",
                tile.index(),
            ),
            SimEvent::Delivery {
                round,
                tile,
                message,
                source,
            } => writeln!(
                self.out,
                "{{\"event\":\"delivery\",\"round\":{round},\"tile\":{},\"message\":{},\"source\":{}}}",
                tile.index(),
                message.0,
                source.index(),
            ),
            SimEvent::PartitionDrop { round, link } => writeln!(
                self.out,
                "{{\"event\":\"partition_drop\",\"round\":{round},\"link\":{}}}",
                link.index(),
            ),
            SimEvent::ByzantineForge {
                round,
                tile,
                message,
            } => writeln!(
                self.out,
                "{{\"event\":\"byzantine_forge\",\"round\":{round},\"tile\":{},\"message\":{}}}",
                tile.index(),
                message.0,
            ),
            SimEvent::ByzantineReplay { round, tile } => writeln!(
                self.out,
                "{{\"event\":\"byzantine_replay\",\"round\":{round},\"tile\":{}}}",
                tile.index(),
            ),
            SimEvent::AdversarialDelay { round, link } => writeln!(
                self.out,
                "{{\"event\":\"adversarial_delay\",\"round\":{round},\"link\":{}}}",
                link.index(),
            ),
            SimEvent::AdversarialReorder { round, link } => writeln!(
                self.out,
                "{{\"event\":\"adversarial_reorder\",\"round\":{round},\"link\":{}}}",
                link.index(),
            ),
            SimEvent::RoundQuiescent { round, inflight } => writeln!(
                self.out,
                "{{\"event\":\"round_quiescent\",\"round\":{round},\"inflight\":{inflight}}}",
            ),
        };
        result.expect("write JSONL event line");
        self.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_sent(round: u64) -> SimEvent {
        SimEvent::FrameSent {
            round,
            from: NodeId(1),
            link: LinkId(4),
            to: NodeId(2),
            message: MessageId(9),
        }
    }

    #[test]
    fn counter_sink_attributes_per_tile_and_link() {
        let mut sink = CounterSink::new();
        sink.emit(frame_sent(0));
        sink.emit(frame_sent(0));
        sink.emit(SimEvent::CrashDrop {
            round: 1,
            site: DropSite::Link(LinkId(4)),
        });
        sink.emit(SimEvent::CrashDrop {
            round: 1,
            site: DropSite::Tile(NodeId(2)),
        });
        sink.emit(SimEvent::ClockSlip {
            round: 1,
            tile: NodeId(1),
        });
        assert_eq!(sink.tiles()[1].frames_sent, 2);
        assert_eq!(sink.links()[4].frames_sent, 2);
        assert_eq!(sink.links()[4].crash_drops, 1);
        assert_eq!(sink.tiles()[2].crash_drops, 1);
        assert_eq!(sink.totals().crash_drops, 2);
        assert_eq!(sink.summed_from_locations(), *sink.totals());
    }

    #[test]
    fn merge_is_elementwise_and_grows_tables() {
        let mut a = CounterSink::new();
        a.emit(frame_sent(0));
        let mut b = CounterSink::new();
        b.emit(SimEvent::OverflowDrop {
            round: 2,
            tile: NodeId(7),
        });
        b.emit(frame_sent(1));
        a.merge(&b);
        assert_eq!(a.totals().frames_sent, 2);
        assert_eq!(a.tiles()[7].overflow_drops, 1);
        assert_eq!(a.tiles()[1].frames_sent, 2);
        assert_eq!(a.summed_from_locations(), *a.totals());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<SimEvent> = Vec::new();
        sink.emit(frame_sent(0));
        sink.emit(frame_sent(3));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[1].round(), 3);
        assert_eq!(sink[0].kind(), "frame_sent");
    }

    #[test]
    fn borrowed_sink_forwards() {
        let mut counters = CounterSink::new();
        {
            let borrowed: &mut CounterSink = &mut counters;
            borrowed.emit(frame_sent(0));
        }
        assert_eq!(counters.totals().frames_sent, 1);
    }

    #[test]
    fn jsonl_lines_are_stable() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(frame_sent(3));
        sink.emit(SimEvent::CrcReject {
            round: 4,
            tile: NodeId(6),
            link: None,
        });
        sink.emit(SimEvent::Delivery {
            round: 5,
            tile: NodeId(2),
            message: MessageId(0),
            source: NodeId(1),
        });
        assert_eq!(sink.events_written(), 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"event\":\"frame_sent\",\"round\":3,\"from\":1,\"link\":4,\"to\":2,\"message\":9}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"crc_reject\",\"round\":4,\"tile\":6}"
        );
        assert_eq!(
            lines[2],
            "{\"event\":\"delivery\",\"round\":5,\"tile\":2,\"message\":0,\"source\":1}"
        );
    }

    #[test]
    fn adversarial_events_attribute_to_their_axis() {
        let mut sink = CounterSink::new();
        sink.emit(SimEvent::PartitionDrop {
            round: 1,
            link: LinkId(3),
        });
        sink.emit(SimEvent::AdversarialDelay {
            round: 1,
            link: LinkId(3),
        });
        sink.emit(SimEvent::AdversarialReorder {
            round: 2,
            link: LinkId(5),
        });
        sink.emit(SimEvent::ByzantineForge {
            round: 2,
            tile: NodeId(4),
            message: MessageId(7),
        });
        sink.emit(SimEvent::ByzantineReplay {
            round: 3,
            tile: NodeId(4),
        });
        assert_eq!(sink.links()[3].partition_drops, 1);
        assert_eq!(sink.links()[3].adversarial_delays, 1);
        assert_eq!(sink.links()[5].adversarial_reorders, 1);
        assert_eq!(sink.tiles()[4].byzantine_forges, 1);
        assert_eq!(sink.tiles()[4].byzantine_replays, 1);
        assert_eq!(sink.totals().partition_drops, 1);
        assert_eq!(sink.totals().byzantine_forges, 1);
        assert_eq!(sink.summed_from_locations(), *sink.totals());
    }

    #[test]
    fn adversarial_jsonl_lines_are_stable() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(SimEvent::PartitionDrop {
            round: 2,
            link: LinkId(9),
        });
        sink.emit(SimEvent::ByzantineForge {
            round: 3,
            tile: NodeId(4),
            message: MessageId(1),
        });
        sink.emit(SimEvent::ByzantineReplay {
            round: 4,
            tile: NodeId(4),
        });
        sink.emit(SimEvent::AdversarialDelay {
            round: 5,
            link: LinkId(2),
        });
        sink.emit(SimEvent::AdversarialReorder {
            round: 6,
            link: LinkId(2),
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"event\":\"partition_drop\",\"round\":2,\"link\":9}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"byzantine_forge\",\"round\":3,\"tile\":4,\"message\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"event\":\"byzantine_replay\",\"round\":4,\"tile\":4}"
        );
        assert_eq!(
            lines[3],
            "{\"event\":\"adversarial_delay\",\"round\":5,\"link\":2}"
        );
        assert_eq!(
            lines[4],
            "{\"event\":\"adversarial_reorder\",\"round\":6,\"link\":2}"
        );
    }

    #[test]
    fn quiescent_rounds_count_and_serialize() {
        let mut counters = CounterSink::new();
        counters.emit(SimEvent::RoundQuiescent {
            round: 7,
            inflight: 2,
        });
        counters.emit(SimEvent::RoundQuiescent {
            round: 8,
            inflight: 1,
        });
        assert_eq!(counters.quiescent_rounds(), 2);
        // Whole-round events attribute to no tile or link: the location
        // sums are unaffected.
        assert_eq!(counters.summed_from_locations(), *counters.totals());
        let mut merged = CounterSink::new();
        merged.merge(&counters);
        assert_eq!(merged.quiescent_rounds(), 2);

        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.emit(SimEvent::RoundQuiescent {
            round: 7,
            inflight: 2,
        });
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert_eq!(
            text.trim_end(),
            "{\"event\":\"round_quiescent\",\"round\":7,\"inflight\":2}"
        );
        let event = SimEvent::RoundQuiescent {
            round: 7,
            inflight: 2,
        };
        assert_eq!(event.kind(), "round_quiescent");
        assert_eq!(event.round(), 7);
    }

    #[test]
    fn reconcile_catches_quiescent_round_drift() {
        let sink = CounterSink::new();
        let mut report = SimulationReport::new(noc_energy::TechnologyLibrary::NOC_LINK_0_25UM);
        report.quiescent_rounds = 3;
        let err = sink.reconcile(&report).unwrap_err();
        assert!(err.contains("quiescent_rounds"), "unexpected error: {err}");
    }

    #[test]
    fn reconcile_reports_the_failing_counter() {
        let mut sink = CounterSink::new();
        sink.emit(frame_sent(0));
        let report = SimulationReport::new(noc_energy::TechnologyLibrary::NOC_LINK_0_25UM);
        let err = sink.reconcile(&report).unwrap_err();
        assert!(err.contains("packets_sent"), "unexpected error: {err}");
    }
}
