//! The item model: structs with named fields, enum variants, fn
//! signatures, impl blocks, and closure bodies, extracted from the
//! token trees of [`crate::parser`].
//!
//! This is deliberately *not* a Rust parser. It recovers exactly the
//! shapes the structural rules consume — which fields a state struct
//! declares, which variants an event enum carries, where a fn or impl
//! body starts and ends, where a closure body lives — and shrugs at
//! everything else. Over-approximation is fine (a `-> impl Trait`
//! return type records a vacuous [`ImplItem`]; a const-generic brace in
//! a return type may be mistaken for a body) because every consumer
//! matches on names the workspace controls; under-approximation is the
//! failure mode the unit tests pin against.

use crate::lexer::{Token, TokenKind};
use crate::parser::{self, Delim, Group, Tree};

/// One named field of a struct.
#[derive(Debug)]
pub struct Field {
    pub name: String,
    pub line: usize,
    pub column: usize,
}

/// A struct declaration. Tuple and unit structs record no fields.
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub line: usize,
    pub fields: Vec<Field>,
}

/// One variant of an enum.
#[derive(Debug)]
pub struct Variant {
    pub name: String,
    pub line: usize,
    pub column: usize,
}

/// An enum declaration.
#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub line: usize,
    pub variants: Vec<Variant>,
}

/// A fn declaration. `body` is the inclusive token-index range of the
/// brace-delimited body, delimiters included; `None` for trait method
/// declarations ending in `;`.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub line: usize,
    pub body: Option<(usize, usize)>,
}

/// An impl block. `header` holds every identifier between `impl` and
/// the body brace (`EventSink`, the self type, generic params), which
/// is all the structural rules need to recognise `impl EventSink for
/// CounterSink`-shaped blocks.
#[derive(Debug)]
pub struct ImplItem {
    pub line: usize,
    pub header: Vec<String>,
    pub body: (usize, usize),
}

/// A closure. `body` is the inclusive token-index range of the body —
/// the brace group for block bodies, the expression span otherwise.
#[derive(Debug)]
pub struct Closure {
    pub line: usize,
    pub body: (usize, usize),
}

/// Everything the structural rules know about one file.
#[derive(Debug, Default)]
pub struct ItemModel {
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
    pub closures: Vec<Closure>,
}

/// Extracts the item model from one file's (test-stripped) tokens.
pub fn extract(tokens: &[Token]) -> ItemModel {
    let trees = parser::parse(tokens);
    let mut model = ItemModel::default();
    walk(tokens, &trees, &mut model);
    model.closures = closures(tokens);
    model
}

fn is_kw(tokens: &[Token], tree: &Tree, kw: &str) -> bool {
    match tree {
        Tree::Leaf(i) => tokens[*i].kind == TokenKind::Ident && tokens[*i].text == kw,
        Tree::Group(_) => false,
    }
}

fn leaf_ident<'t>(tokens: &'t [Token], tree: Option<&Tree>) -> Option<&'t Token> {
    match tree {
        Some(Tree::Leaf(i)) if tokens[*i].kind == TokenKind::Ident => Some(&tokens[*i]),
        _ => None,
    }
}

fn leaf_text<'t>(tokens: &'t [Token], tree: &Tree) -> Option<&'t str> {
    match tree {
        Tree::Leaf(i) => Some(tokens[*i].text.as_str()),
        Tree::Group(_) => None,
    }
}

/// Walks every sibling list (groups recursed), recording items wherever
/// they appear — module level, impl bodies, fn bodies.
fn walk(tokens: &[Token], siblings: &[Tree], model: &mut ItemModel) {
    for (i, tree) in siblings.iter().enumerate() {
        match tree {
            Tree::Group(g) => walk(tokens, &g.children, model),
            Tree::Leaf(t) if tokens[*t].kind == TokenKind::Ident => {
                match tokens[*t].text.as_str() {
                    "struct" => struct_item(tokens, siblings, i, model),
                    "enum" => enum_item(tokens, siblings, i, model),
                    "fn" => fn_item(tokens, siblings, i, model),
                    "impl" => impl_item(tokens, siblings, i, model),
                    _ => {}
                }
            }
            Tree::Leaf(_) => {}
        }
    }
}

/// Finds the defining brace group of an item starting at sibling `kw`:
/// the first brace group before a top-level `;`. A paren group seen
/// before any `where` ends the search too (tuple struct).
fn defining_braces<'s>(
    tokens: &[Token],
    siblings: &'s [Tree],
    kw: usize,
    stop_at_paren: bool,
) -> Option<&'s Group> {
    let mut seen_where = false;
    for tree in &siblings[kw + 1..] {
        match tree {
            Tree::Leaf(_) => {
                let text = leaf_text(tokens, tree).unwrap_or("");
                if text == ";" {
                    return None;
                }
                if text == "where" {
                    seen_where = true;
                }
            }
            Tree::Group(g) => match g.delim {
                Delim::Brace => return Some(g),
                Delim::Paren if stop_at_paren && !seen_where => return None,
                _ => {}
            },
        }
    }
    None
}

fn struct_item(tokens: &[Token], siblings: &[Tree], kw: usize, model: &mut ItemModel) {
    let Some(name) = leaf_ident(tokens, siblings.get(kw + 1)) else {
        return;
    };
    let fields = match defining_braces(tokens, siblings, kw + 1, true) {
        Some(body) => named_fields(tokens, &body.children),
        None => Vec::new(),
    };
    model.structs.push(StructItem {
        name: name.text.clone(),
        line: name.line,
        fields,
    });
}

/// Splits a brace group's children on top-level commas and reads each
/// chunk as `[attrs] [pub[(..)]] name : type`.
fn named_fields(tokens: &[Token], children: &[Tree]) -> Vec<Field> {
    let mut fields = Vec::new();
    for chunk in split_on_commas(tokens, children) {
        let chunk = skip_modifiers(tokens, chunk);
        let Some(name) = leaf_ident(tokens, chunk.first()) else {
            continue;
        };
        // `::` is fused by the lexer, so a lone `:` means a field type
        // follows (angle-bracket comma junk chunks never look like this).
        if chunk.get(1).and_then(|t| leaf_text(tokens, t)) == Some(":") {
            fields.push(Field {
                name: name.text.clone(),
                line: name.line,
                column: name.column,
            });
        }
    }
    fields
}

fn enum_item(tokens: &[Token], siblings: &[Tree], kw: usize, model: &mut ItemModel) {
    let Some(name) = leaf_ident(tokens, siblings.get(kw + 1)) else {
        return;
    };
    let mut variants = Vec::new();
    if let Some(body) = defining_braces(tokens, siblings, kw + 1, false) {
        for chunk in split_on_commas(tokens, &body.children) {
            let chunk = skip_modifiers(tokens, chunk);
            if let Some(v) = leaf_ident(tokens, chunk.first()) {
                variants.push(Variant {
                    name: v.text.clone(),
                    line: v.line,
                    column: v.column,
                });
            }
        }
    }
    model.enums.push(EnumItem {
        name: name.text.clone(),
        line: name.line,
        variants,
    });
}

fn fn_item(tokens: &[Token], siblings: &[Tree], kw: usize, model: &mut ItemModel) {
    // `fn(u32) -> u32` pointer types have no name ident after `fn`.
    let Some(name) = leaf_ident(tokens, siblings.get(kw + 1)) else {
        return;
    };
    let body = defining_braces(tokens, siblings, kw + 1, false).map(|g| (g.open, g.close));
    model.fns.push(FnItem {
        name: name.text.clone(),
        line: name.line,
        body,
    });
}

fn impl_item(tokens: &[Token], siblings: &[Tree], kw: usize, model: &mut ItemModel) {
    let Some(body) = defining_braces(tokens, siblings, kw, false) else {
        return;
    };
    let start = siblings[kw].start() + 1;
    let header = tokens[start..body.open]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    model.impls.push(ImplItem {
        line: tokens[siblings[kw].start()].line,
        header,
        body: (body.open, body.close),
    });
}

/// Splits a sibling list on top-level `,` leaves.
fn split_on_commas<'s>(tokens: &[Token], children: &'s [Tree]) -> Vec<&'s [Tree]> {
    let mut chunks = Vec::new();
    let mut start = 0;
    for (i, tree) in children.iter().enumerate() {
        if leaf_text(tokens, tree) == Some(",") {
            chunks.push(&children[start..i]);
            start = i + 1;
        }
    }
    if start < children.len() {
        chunks.push(&children[start..]);
    }
    chunks
}

/// Skips leading `#[…]` attributes and `pub`/`pub(crate)` visibility
/// from a field or variant chunk.
fn skip_modifiers<'s>(tokens: &[Token], mut chunk: &'s [Tree]) -> &'s [Tree] {
    loop {
        match chunk {
            [attr, Tree::Group(g), ..]
                if leaf_text(tokens, attr) == Some("#") && g.delim == Delim::Bracket =>
            {
                chunk = &chunk[2..];
            }
            [vis, ..] if is_kw(tokens, vis, "pub") => {
                chunk = &chunk[1..];
                if matches!(chunk.first(), Some(Tree::Group(g)) if g.delim == Delim::Paren) {
                    chunk = &chunk[1..];
                }
            }
            _ => return chunk,
        }
    }
}

/// Closure-start detection: a `|` opens a closure when what precedes it
/// cannot end an expression. Binary/pattern `|` always follows a value
/// (identifier, literal, `)`/`]`/`}`).
fn is_closure_start(tokens: &[Token], pipe: usize) -> bool {
    let Some(prev) = pipe.checked_sub(1).map(|i| &tokens[i]) else {
        return false;
    };
    match prev.kind {
        TokenKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else" | "break"),
        TokenKind::Punct => matches!(
            prev.text.as_str(),
            "(" | "," | "=" | "{" | "[" | ";" | ":" | ">" | "&"
        ),
        _ => false,
    }
}

/// Token index of the `|` closing the parameter list opened at `open`,
/// or `None` when the scan hits a closer first (not a closure).
fn closure_params_end(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open + 1) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            "|" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// The body range starting at `start`: a whole brace group, or an
/// expression running to the first top-level `,`/closer/`;`.
fn closure_body(tokens: &[Token], start: usize) -> (usize, usize) {
    if tokens.get(start).is_some_and(|t| t.text == "{") {
        let mut depth = 0usize;
        for (j, tok) in tokens.iter().enumerate().skip(start) {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return (start, j);
                    }
                }
                _ => {}
            }
        }
        return (start, tokens.len().saturating_sub(1));
    }
    let mut depth = 0usize;
    let mut end = start;
    for (j, tok) in tokens.iter().enumerate().skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "," | ";" if depth == 0 => break,
            _ => {}
        }
        end = j;
    }
    (start, end)
}

/// Linear closure scan over the raw tokens (closures are expression-
/// level, so the tree walk's item chunking is the wrong lens for them).
fn closures(tokens: &[Token]) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "|" && is_closure_start(tokens, i) {
            if let Some(params_end) = closure_params_end(tokens, i) {
                let body = closure_body(tokens, params_end + 1);
                out.push(Closure {
                    line: tokens[i].line,
                    body,
                });
                // Resume inside the body so nested closures are found.
                i = params_end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> (Vec<Token>, ItemModel) {
        let tokens = lex(src).tokens;
        let model = extract(&tokens);
        (tokens, model)
    }

    #[test]
    fn struct_fields_with_generics_and_visibility() {
        let src = "pub struct Simulation<S: Sink = Null> {\n    pub(crate) round: u64,\n    informed: BTreeMap<MessageId, usize>,\n    byz: Vec<Option<(u64, Arc<[u8]>)>>,\n}\n";
        let (_, m) = model(src);
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "Simulation");
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        // The angle-bracket comma in BTreeMap<K, V> must not invent a
        // field; the tuple comma is nested in a paren group.
        assert_eq!(names, ["round", "informed", "byz"]);
        assert_eq!(m.structs[0].fields[0].line, 2);
    }

    #[test]
    fn tuple_and_unit_structs_record_no_fields() {
        let (_, m) =
            model("struct P(u32, u32);\nstruct U;\nstruct W<T> where T: Fn() -> u32 { f: T }\n");
        assert_eq!(m.structs.len(), 3);
        assert!(m.structs[0].fields.is_empty());
        assert!(m.structs[1].fields.is_empty());
        // A where-clause `Fn()` paren is not a tuple-struct body.
        assert_eq!(m.structs[2].fields.len(), 1);
        assert_eq!(m.structs[2].fields[0].name, "f");
    }

    #[test]
    fn enum_variants_with_payloads_and_attributes() {
        let src = "pub enum SimEvent {\n    FrameSent { round: u64, hop: (u8, u8) },\n    #[allow(dead_code)]\n    CrcReject(u32),\n    RoundQuiescent,\n}\n";
        let (_, m) = model(src);
        assert_eq!(m.enums.len(), 1);
        assert_eq!(m.enums[0].name, "SimEvent");
        let names: Vec<&str> = m.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, ["FrameSent", "CrcReject", "RoundQuiescent"]);
        assert_eq!(m.enums[0].variants[1].line, 4);
    }

    #[test]
    fn fns_record_bodies_and_nested_items_are_found() {
        let src = "impl Sim {\n    fn checkpoint(&self) -> Checkpoint { self.round }\n    fn decl_only(&self);\n}\nfn free() { struct Inner { x: u32 } }\n";
        let (tokens, m) = model(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["checkpoint", "decl_only", "free"]);
        let body = m.fns[0].body.expect("checkpoint has a body");
        assert_eq!(tokens[body.0].text, "{");
        assert_eq!(tokens[body.1].text, "}");
        assert!(m.fns[1].body.is_none());
        // The struct nested inside free() is still extracted.
        assert_eq!(m.structs[0].name, "Inner");
    }

    #[test]
    fn fn_pointer_types_are_not_fns() {
        let (_, m) = model("struct S { cb: fn(u32) -> u32 }\n");
        assert!(m.fns.is_empty());
    }

    #[test]
    fn impl_headers_capture_trait_and_self_type() {
        let src = "impl<W: Write> EventSink for JsonlSink<W> {\n    fn emit(&mut self) {}\n}\n";
        let (_, m) = model(src);
        assert_eq!(m.impls.len(), 1);
        let header = &m.impls[0].header;
        assert!(header.iter().any(|h| h == "EventSink"));
        assert!(header.iter().any(|h| h == "JsonlSink"));
    }

    #[test]
    fn closures_block_and_expression_bodies() {
        let src = "fn f() {\n    run(work, move |w| {\n        w.step()\n    });\n    let g = |x| x + 1;\n    let or = a | b;\n    let pat = matches!(v, Some(1 | 2));\n}\n";
        let (tokens, m) = model(src);
        assert_eq!(m.closures.len(), 2, "{:?}", m.closures);
        let block = &m.closures[0];
        assert_eq!(tokens[block.body.0].text, "{");
        assert_eq!(tokens[block.body.1].text, "}");
        let expr = &m.closures[1];
        assert_eq!(tokens[expr.body.0].text, "x");
        assert_eq!(tokens[expr.body.1].text, "1");
    }

    #[test]
    fn nested_closures_are_both_found() {
        let src = "fn f() { outer(|a| inner(|b| a + b)); }\n";
        let (_, m) = model(src);
        assert_eq!(m.closures.len(), 2);
    }

    #[test]
    fn empty_param_closure() {
        let (tokens, m) = model("fn f() { spawn(move || replay(w)); }\n");
        assert_eq!(m.closures.len(), 1);
        assert_eq!(tokens[m.closures[0].body.0].text, "replay");
    }

    #[test]
    fn logical_or_is_not_a_closure() {
        let (_, m) = model("fn f(a: bool, b: bool) -> bool { a || b }\n");
        assert!(m.closures.is_empty());
    }
}
