//! Energy and timing metrics for on-chip interconnects.
//!
//! Implements the performance-evaluation formulas of Dumitraş &
//! Mărculescu's stochastic communication work:
//!
//! * **Equation 2** — the optimal gossip-round duration
//!   `T_R = N_packets/round · S / f`, where `f` is the maximum link
//!   frequency and `S` the average packet size ([`round_duration`]).
//! * **Equation 3** — the communication energy
//!   `E = N_packets · S · E_bit` ([`communication_energy`]), with `E_bit`
//!   taken from a [`TechnologyLibrary`].
//!
//! The crate also carries the paper's extracted 0.25 µm technology points
//! (§4.1.4): a shared bus running at 43 MHz dissipating 21.6e-10 J/bit, and
//! a NoC link at 381 MHz dissipating 2.4e-10 J/bit.
//!
//! # Examples
//!
//! ```
//! use noc_energy::{communication_energy, TechnologyLibrary, Bits};
//!
//! let tech = TechnologyLibrary::NOC_LINK_0_25UM;
//! // 1200 packets of 64 bits each:
//! let e = communication_energy(1200, Bits(64), tech.energy_per_bit);
//! assert!((e.joules() - 1200.0 * 64.0 * 2.4e-10).abs() < 1e-18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod metrics;
mod tech;
mod units;

pub use account::EnergyAccount;
pub use metrics::{communication_energy, energy_delay_product, round_duration, EnergyDelay};
pub use tech::TechnologyLibrary;
pub use units::{Bits, Hertz, Joules, Seconds};
