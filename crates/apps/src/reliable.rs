//! A reliable-delivery layer on top of stochastic communication.
//!
//! The paper closes §4.2.3 with: "If, however, the application requires
//! strong reliability guarantees, these can be implemented by a higher
//! level protocol built on top of the stochastic communication." This
//! module is that protocol: a sender IP retransmits each datum every few
//! rounds until an application-level acknowledgement (itself gossiped
//! back) arrives. Each attempt is an independent gossip spread, so the
//! residual loss probability decays geometrically in the number of
//! attempts — strong guarantees from a best-effort substrate.

use std::cell::RefCell;
use std::rc::Rc;

use noc_fabric::{IpContext, IpCore, NodeId};

use crate::wire::{put_u32, PayloadReader};

const TAG_DATA: u8 = 41;
const TAG_ACK: u8 = 42;

/// Shared view of a reliable transfer's progress.
#[derive(Debug, Clone, Default)]
pub struct TransferStatus {
    /// Sequence numbers acknowledged so far.
    pub acked: Vec<u32>,
    /// Total data transmissions attempted (including retries).
    pub attempts: u64,
    /// Round at which the final acknowledgement arrived.
    pub completion_round: Option<u64>,
}

/// Handle for observing a [`ReliableSender`] after the run.
pub type StatusHandle = Rc<RefCell<TransferStatus>>;

/// Sends a sequence of data items reliably: each unacknowledged item is
/// retransmitted every `retry_interval` rounds.
///
/// # Examples
///
/// See [`reliable_pair`] for the usual construction.
pub struct ReliableSender {
    destination: NodeId,
    items: Vec<Vec<u8>>,
    acked: Vec<bool>,
    retry_interval: u64,
    last_send: Vec<Option<u64>>,
    status: StatusHandle,
}

impl IpCore for ReliableSender {
    fn on_round(&mut self, ctx: &mut IpContext) {
        let round = ctx.round();
        for (seq, item) in self.items.iter().enumerate() {
            if self.acked[seq] {
                continue;
            }
            let due = match self.last_send[seq] {
                None => true,
                Some(last) => round >= last + self.retry_interval,
            };
            if due {
                let mut payload = vec![TAG_DATA];
                put_u32(&mut payload, seq as u32);
                payload.extend_from_slice(item);
                ctx.send(self.destination, payload);
                self.last_send[seq] = Some(round);
                self.status.borrow_mut().attempts += 1;
            }
        }
    }

    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_ACK) {
            return;
        }
        let Some(seq) = r.u32() else { return };
        let seq = seq as usize;
        if seq >= self.acked.len() || self.acked[seq] {
            return;
        }
        self.acked[seq] = true;
        let mut status = self.status.borrow_mut();
        status.acked.push(seq as u32);
        if status.acked.len() == self.items.len() {
            status.completion_round = Some(ctx.round());
        }
    }

    fn is_done(&self) -> bool {
        self.acked.iter().all(|&a| a)
    }

    fn name(&self) -> &str {
        "reliable-sender"
    }
}

/// Receives reliable data items, acknowledging every arrival (including
/// duplicates — the ACK itself may have been lost).
pub struct ReliableReceiver {
    sender: NodeId,
    expected: usize,
    received: Vec<Option<Vec<u8>>>,
    inbox: Rc<RefCell<Vec<Option<Vec<u8>>>>>,
}

impl IpCore for ReliableReceiver {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_DATA) {
            return;
        }
        let Some(seq) = r.u32() else { return };
        let seq = seq as usize;
        if seq >= self.expected {
            return;
        }
        let data_start = payload.len() - r.remaining();
        if self.received[seq].is_none() {
            self.received[seq] = Some(payload[data_start..].to_vec());
            self.inbox.borrow_mut()[seq] = Some(payload[data_start..].to_vec());
        }
        // Always re-acknowledge: the previous ack may have been lost.
        let mut ack = vec![TAG_ACK];
        put_u32(&mut ack, seq as u32);
        ctx.send(self.sender, ack);
    }

    fn is_done(&self) -> bool {
        self.received.iter().all(Option::is_some)
    }

    fn name(&self) -> &str {
        "reliable-receiver"
    }
}

/// Builds a matching sender/receiver pair for transferring `items` from
/// `sender_tile` to `receiver_tile`, retrying every `retry_interval`
/// rounds.
///
/// Returns the two IPs plus observation handles: the sender's
/// [`StatusHandle`] and the receiver's inbox (filled in sequence order).
///
/// # Panics
///
/// Panics if `items` is empty or `retry_interval` is zero.
///
/// # Examples
///
/// ```
/// use noc_apps::reliable::reliable_pair;
/// use noc_fabric::{Grid2d, NodeId};
/// use stochastic_noc::{SimulationBuilder, StochasticConfig};
///
/// let (sender, receiver, status, inbox) = reliable_pair(
///     NodeId(0),
///     NodeId(15),
///     vec![b"alpha".to_vec(), b"beta".to_vec()],
///     8,
/// );
/// let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
///     .config(StochasticConfig::new(0.6, 12).unwrap().with_max_rounds(200))
///     .with_ip(NodeId(0), sender)
///     .with_ip(NodeId(15), receiver)
///     .seed(1)
///     .build();
/// sim.run();
/// assert_eq!(status.borrow().acked.len(), 2);
/// assert_eq!(inbox.borrow()[0].as_deref(), Some(b"alpha".as_slice()));
/// ```
#[allow(clippy::type_complexity)]
pub fn reliable_pair(
    sender_tile: NodeId,
    receiver_tile: NodeId,
    items: Vec<Vec<u8>>,
    retry_interval: u64,
) -> (
    Box<dyn IpCore>,
    Box<dyn IpCore>,
    StatusHandle,
    Rc<RefCell<Vec<Option<Vec<u8>>>>>,
) {
    assert!(!items.is_empty(), "nothing to transfer");
    assert!(retry_interval > 0, "retry interval must be positive");
    let status: StatusHandle = Rc::new(RefCell::new(TransferStatus::default()));
    let inbox = Rc::new(RefCell::new(vec![None; items.len()]));
    let n = items.len();
    let sender = ReliableSender {
        destination: receiver_tile,
        acked: vec![false; n],
        last_send: vec![None; n],
        items,
        retry_interval,
        status: Rc::clone(&status),
    };
    let receiver = ReliableReceiver {
        sender: sender_tile,
        expected: n,
        received: vec![None; n],
        inbox: Rc::clone(&inbox),
    };
    (Box::new(sender), Box::new(receiver), status, inbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_fabric::Grid2d;
    use noc_faults::FaultModel;
    use stochastic_noc::{SimulationBuilder, StochasticConfig};

    fn run_transfer(
        fault_model: FaultModel,
        items: Vec<Vec<u8>>,
        max_rounds: u64,
        seed: u64,
    ) -> (TransferStatus, Vec<Option<Vec<u8>>>) {
        let (sender, receiver, status, inbox) = reliable_pair(NodeId(0), NodeId(15), items, 10);
        let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
            .config(
                StochasticConfig::new(0.6, 12)
                    .unwrap()
                    .with_max_rounds(max_rounds),
            )
            .fault_model(fault_model)
            .with_ip(NodeId(0), sender)
            .with_ip(NodeId(15), receiver)
            .seed(seed)
            .build();
        sim.run();
        let s = status.borrow().clone();
        let i = inbox.borrow().clone();
        (s, i)
    }

    #[test]
    fn fault_free_transfer_needs_one_attempt_per_item() {
        let (status, inbox) = run_transfer(
            FaultModel::none(),
            vec![b"one".to_vec(), b"two".to_vec()],
            100,
            1,
        );
        assert_eq!(status.acked.len(), 2);
        assert!(status.completion_round.is_some());
        assert_eq!(inbox[0].as_deref(), Some(b"one".as_slice()));
        assert_eq!(inbox[1].as_deref(), Some(b"two".as_slice()));
        // First attempts should succeed; a retry may fire before the ack
        // returns (round-trip > retry interval is possible but not here).
        assert!(status.attempts <= 4, "attempts: {}", status.attempts);
    }

    #[test]
    fn strong_reliability_under_heavy_overflow() {
        // At 60% overflow a single gossip spread fails roughly half the
        // time (see examples/fault_sweep.rs); verify that first, then
        // show the retransmitting layer still gets everything through.
        let model = FaultModel::builder().p_overflow(0.6).build().unwrap();
        let single_shot_failures = (0..8)
            .filter(|&seed| {
                let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
                    .config(StochasticConfig::new(0.6, 12).unwrap().with_max_rounds(20))
                    .fault_model(model)
                    .seed(seed)
                    .build();
                let id = sim.inject(NodeId(0), NodeId(15), b"probe".to_vec());
                !sim.run().delivered(id)
            })
            .count();
        assert!(
            single_shot_failures > 0,
            "60% overflow should defeat some single spreads"
        );

        let (status, inbox) = run_transfer(
            model,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()],
            800,
            7,
        );
        assert_eq!(status.acked.len(), 3, "reliable layer must deliver all");
        assert!(inbox.iter().all(Option::is_some));
        assert!(
            status.attempts > 3,
            "survival at 60% overflow requires retries, got {}",
            status.attempts
        );
    }

    #[test]
    fn duplicate_data_is_delivered_once_but_reacked() {
        // With retries shorter than the round trip, duplicates arrive;
        // the inbox keeps one copy and the transfer still completes.
        let (sender, receiver, status, inbox) =
            reliable_pair(NodeId(0), NodeId(15), vec![b"dup".to_vec()], 1);
        let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
            .config(StochasticConfig::new(0.8, 12).unwrap().with_max_rounds(200))
            .with_ip(NodeId(0), sender)
            .with_ip(NodeId(15), receiver)
            .seed(3)
            .build();
        sim.run();
        assert_eq!(status.borrow().acked.len(), 1);
        assert!(status.borrow().attempts >= 2, "interval 1 must retry");
        assert_eq!(inbox.borrow()[0].as_deref(), Some(b"dup".as_slice()));
    }

    #[test]
    #[should_panic(expected = "nothing to transfer")]
    fn empty_transfer_rejected() {
        let _ = reliable_pair(NodeId(0), NodeId(1), vec![], 5);
    }
}
