//! Technology library: per-bit energies and link frequencies.

use serde::Serialize;

use crate::units::{Hertz, Joules};

/// Electrical parameters of an interconnect in a given technology node.
///
/// The two built-in constants are the 0.25 µm extraction points reported in
/// §4.1.4 of the paper, where the bus length equals the side of the
/// tile-based grid and a NoC link spans a single tile.
///
/// # Examples
///
/// ```
/// use noc_energy::TechnologyLibrary;
///
/// let bus = TechnologyLibrary::BUS_0_25UM;
/// let link = TechnologyLibrary::NOC_LINK_0_25UM;
/// // NoC links are shorter, hence faster and cheaper per bit:
/// assert!(link.max_frequency.hertz() > bus.max_frequency.hertz());
/// assert!(link.energy_per_bit.joules() < bus.energy_per_bit.joules());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TechnologyLibrary {
    /// Descriptive name of the extraction point.
    pub name: &'static str,
    /// Maximum working frequency of the interconnect.
    pub max_frequency: Hertz,
    /// Energy dissipated per transmitted bit.
    pub energy_per_bit: Joules,
}

impl TechnologyLibrary {
    /// Shared bus spanning the grid side, 0.25 µm: 43 MHz, 21.6e-10 J/bit.
    pub const BUS_0_25UM: TechnologyLibrary = TechnologyLibrary {
        name: "shared bus, 0.25um",
        max_frequency: Hertz(43.0e6),
        energy_per_bit: Joules(21.6e-10),
    };

    /// Single-tile NoC link, 0.25 µm: 381 MHz, 2.4e-10 J/bit.
    pub const NOC_LINK_0_25UM: TechnologyLibrary = TechnologyLibrary {
        name: "NoC link, 0.25um",
        max_frequency: Hertz(381.0e6),
        energy_per_bit: Joules(2.4e-10),
    };

    /// Creates a custom technology point.
    ///
    /// # Panics
    ///
    /// Panics if the frequency or per-bit energy is not strictly positive.
    pub fn new(name: &'static str, max_frequency: Hertz, energy_per_bit: Joules) -> Self {
        assert!(
            max_frequency.hertz() > 0.0,
            "link frequency must be positive"
        );
        assert!(
            energy_per_bit.joules() > 0.0,
            "per-bit energy must be positive"
        );
        Self {
            name,
            max_frequency,
            energy_per_bit,
        }
    }

    /// Ratio of this technology's per-bit energy to another's.
    pub fn energy_ratio(&self, other: &TechnologyLibrary) -> f64 {
        self.energy_per_bit.joules() / other.energy_per_bit.joules()
    }

    /// Ratio of this technology's frequency to another's.
    pub fn frequency_ratio(&self, other: &TechnologyLibrary) -> f64 {
        self.max_frequency.hertz() / other.max_frequency.hertz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_extraction_points() {
        assert_eq!(TechnologyLibrary::BUS_0_25UM.max_frequency, Hertz(43e6));
        assert_eq!(
            TechnologyLibrary::BUS_0_25UM.energy_per_bit,
            Joules(21.6e-10)
        );
        assert_eq!(
            TechnologyLibrary::NOC_LINK_0_25UM.max_frequency,
            Hertz(381e6)
        );
        assert_eq!(
            TechnologyLibrary::NOC_LINK_0_25UM.energy_per_bit,
            Joules(2.4e-10)
        );
    }

    #[test]
    fn link_is_an_order_of_magnitude_cheaper_per_bit() {
        let r = TechnologyLibrary::BUS_0_25UM.energy_ratio(&TechnologyLibrary::NOC_LINK_0_25UM);
        assert!((r - 9.0).abs() < 0.01, "21.6 / 2.4 = 9, got {r}");
    }

    #[test]
    fn link_is_roughly_nine_times_faster() {
        let r = TechnologyLibrary::NOC_LINK_0_25UM.frequency_ratio(&TechnologyLibrary::BUS_0_25UM);
        assert!((r - 381.0 / 43.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = TechnologyLibrary::new("bad", Hertz(0.0), Joules(1e-10));
    }

    #[test]
    #[should_panic(expected = "energy must be positive")]
    fn zero_energy_rejected() {
        let _ = TechnologyLibrary::new("bad", Hertz(1e6), Joules(0.0));
    }
}
