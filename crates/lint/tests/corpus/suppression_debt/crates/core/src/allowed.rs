//! Corpus fixture: acknowledged debt — a stale allow kept on purpose,
//! covered by an adjacent suppression-debt allow.

/// Parked while the refactor lands in the next change.
pub fn parked() -> u64 {
    // noc-lint: allow(suppression-debt, reason = "staged removal: the follow-up change reinstates the bounds check this allow covered")
    // noc-lint: allow(hot-path-panic, reason = "bounds are pre-validated by the caller")
    9
}
