//! CLI entry point: regenerate any figure of the paper.
//!
//! ```text
//! experiments <figure> [--full]
//! experiments all [--full]
//! ```

use noc_experiments::{
    ablations, error_models, fig3_1, fig3_3, fig4_10, fig4_11, fig4_4, fig4_5, fig4_6, fig4_8,
    fig4_9, fig5_3, grid_spread, Scale,
};

const FIGURES: &[&str] = &[
    "fig3-1",
    "fig3-3",
    "fig4-4",
    "fig4-5",
    "fig4-6",
    "fig4-8",
    "fig4-9",
    "fig4-10",
    "fig4-11",
    "fig5-3",
    "error-models",
    "ablations",
    "grid-spread",
];

fn run_figure(name: &str, scale: Scale) -> bool {
    match name {
        "fig3-1" => fig3_1::print(&fig3_1::run(scale)),
        "fig3-3" => fig3_3::print(&fig3_3::run(scale)),
        "fig4-4" => fig4_4::print(&fig4_4::run(scale)),
        "fig4-5" => fig4_5::print(&fig4_5::run(scale)),
        "fig4-6" => fig4_6::print(&fig4_6::run(scale)),
        "fig4-8" => fig4_8::print(&fig4_8::run(scale)),
        "fig4-9" => fig4_9::print(&fig4_9::run(scale)),
        "fig4-10" => fig4_10::print(&fig4_10::run(scale)),
        "fig4-11" => fig4_11::print(&fig4_11::run(scale)),
        "fig5-3" => fig5_3::print(&fig5_3::run(scale)),
        "error-models" => error_models::print(&error_models::run(scale)),
        "ablations" => ablations::print(&ablations::run(scale)),
        "grid-spread" => grid_spread::print(&grid_spread::run(scale)),
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if targets.is_empty() || targets == ["help"] {
        eprintln!("usage: experiments <figure>|all [--full]");
        eprintln!("figures: {}", FIGURES.join(", "));
        std::process::exit(if targets.is_empty() { 2 } else { 0 });
    }

    let run_all = targets.contains(&"all");
    let list: Vec<&str> = if run_all {
        FIGURES.to_vec()
    } else {
        targets
    };
    for name in list {
        if !run_figure(name, scale) {
            eprintln!("unknown figure '{name}'; known: {}", FIGURES.join(", "));
            std::process::exit(2);
        }
    }
}
