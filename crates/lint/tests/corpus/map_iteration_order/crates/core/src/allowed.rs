//! Allowlisted negative: membership-only hash set, never iterated.

pub struct DupFilter {
    // noc-lint: allow(map-iteration-order, reason = "membership-only duplicate filter; no iteration, so order cannot leak")
    seen: std::collections::HashSet<u64>,
}

impl DupFilter {
    pub fn insert(&mut self, id: u64) -> bool {
        self.seen.insert(id)
    }
}
