//! Property test: the zero-copy engine is observably identical to the
//! naive reference implementation.
//!
//! [`stochastic_noc::reference::ReferenceSimulation`] preserves the
//! pre-optimization data flow (per-round allocations, full decode, one
//! encode per tile, byte-cloned fan-out). The optimized engine replaces
//! all of that with shared `Arc` frames, a per-round encode memo,
//! persistent arenas, and a sharded round loop — none of which may change
//! a single observable: every counter, the delivered set, and every
//! latency must match across random topologies, fault models, crash
//! schedules, seeds, and shard counts.

mod common;

use common::{
    adversary_strategy, build_adversary, build_schedule, crash_strategy, fault_model_strategy,
    observe, topology_strategy,
};
use noc_fabric::NodeId;
use noc_faults::CrashSchedule;
use proptest::prelude::*;
use stochastic_noc::reference::ReferenceSimulation;
use stochastic_noc::{SimulationBuilder, StochasticConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_engine_matches_naive_reference(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        (tile_kills, link_kills) in crash_strategy(),
        seed in any::<u64>(),
        shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(7), Just(8)],
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 0..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let schedule = build_schedule(&tile_kills, &link_kills, n, m);
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut optimized = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule.clone())
            .seed(seed)
            .shards(shards)
            .build();
        let mut reference =
            ReferenceSimulation::new(topology, config, model, schedule, seed);

        for (src, dst, payload) in &injections {
            let src = NodeId(src % n);
            let dst = NodeId(dst % n);
            let a = optimized.inject(src, dst, payload.clone());
            let b = reference.inject(src, dst, payload.clone());
            prop_assert_eq!(a, b, "message ids must be assigned identically");
        }

        let fast = observe(&optimized.run());
        let naive = observe(&reference.run());
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn optimized_engine_matches_reference_under_adversary(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        raw in adversary_strategy(),
        seed in any::<u64>(),
        shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(7), Just(8)],
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 1..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let adversary = build_adversary(&raw, n, m);
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut optimized = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .adversary(adversary.clone())
            .seed(seed)
            .shards(shards)
            .build();
        let mut reference = ReferenceSimulation::new_with_adversary(
            topology,
            config,
            model,
            CrashSchedule::new(),
            adversary,
            seed,
        );

        for (src, dst, payload) in &injections {
            let src = NodeId(src % n);
            let dst = NodeId(dst % n);
            let a = optimized.inject(src, dst, payload.clone());
            let b = reference.inject(src, dst, payload.clone());
            prop_assert_eq!(a, b, "message ids must be assigned identically");
        }

        let fast = observe(&optimized.run());
        let naive = observe(&reference.run());
        prop_assert_eq!(fast, naive);
    }
}
