//! **Figure 5-3** — on-chip diversity: latency and message transmissions
//! of the flat NoC, the hierarchical NoC, and bus-connected NoCs under
//! identical beamforming traffic.
//!
//! Expected shapes from the paper: the hierarchical NoC has the lowest
//! number of message transmissions (lowest power); the flat NoC has a
//! slightly better latency; the bus-connected hybrid is less efficient
//! than both.

use noc_diversity::{
    compare_architectures, ArchitectureKind, ArchitectureResult, ComparisonParams,
};

use crate::{Scale, TrialRunner};

/// Aggregated result per architecture.
#[derive(Debug, Clone)]
pub struct DiversityRow {
    /// Which fabric.
    pub kind: ArchitectureKind,
    /// Mean latency in rounds.
    pub latency_rounds: f64,
    /// Mean message transmissions.
    pub transmissions: f64,
    /// Fraction of runs completed.
    pub completion_ratio: f64,
}

/// Runs the Figure 5-3 comparison over several seeds.
pub fn run(scale: Scale) -> Vec<DiversityRow> {
    let base = match scale {
        Scale::Quick => ComparisonParams::quick(),
        Scale::Full => ComparisonParams::paper_scale(),
    };
    let reps = scale.repetitions();
    let mut acc: Vec<(ArchitectureKind, Vec<ArchitectureResult>)> = vec![
        (ArchitectureKind::Flat, Vec::new()),
        (ArchitectureKind::Hierarchical, Vec::new()),
        (ArchitectureKind::BusConnected, Vec::new()),
    ];
    let runs = TrialRunner::for_figure("fig5-3", reps).run(|seed| {
        let params = ComparisonParams {
            seed,
            ..base.clone()
        };
        compare_architectures(&params)
    });
    for results in runs {
        for result in results {
            acc.iter_mut()
                .find(|(k, _)| *k == result.kind)
                .expect("known kind")
                .1
                .push(result);
        }
    }
    acc.into_iter()
        .map(|(kind, results)| {
            let n = results.len() as f64;
            DiversityRow {
                kind,
                latency_rounds: results.iter().map(|r| r.latency_rounds as f64).sum::<f64>() / n,
                transmissions: results.iter().map(|r| r.transmissions as f64).sum::<f64>() / n,
                completion_ratio: results.iter().filter(|r| r.completed).count() as f64 / n,
            }
        })
        .collect()
}

/// Prints both bar charts of Figure 5-3.
pub fn print(rows: &[DiversityRow]) {
    crate::stats::print_table_header(
        "Figure 5-3: on-chip diversity architecture comparison (beamforming)",
        &[
            "architecture",
            "latency [rounds]",
            "message transmissions",
            "completion",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:.1}\t{:.0}\t{:.2}",
            r.kind.name(),
            r.latency_rounds,
            r.transmissions,
            r.completion_ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_kind(rows: &[DiversityRow], kind: ArchitectureKind) -> &DiversityRow {
        rows.iter().find(|r| r.kind == kind).expect("present")
    }

    #[test]
    fn hierarchical_transmits_least() {
        let rows = run(Scale::Quick);
        let hier = by_kind(&rows, ArchitectureKind::Hierarchical);
        let flat = by_kind(&rows, ArchitectureKind::Flat);
        assert!(
            hier.transmissions < flat.transmissions,
            "hierarchical {} vs flat {}",
            hier.transmissions,
            flat.transmissions
        );
    }

    #[test]
    fn flat_has_best_latency_and_bus_is_worst() {
        let rows = run(Scale::Quick);
        let flat = by_kind(&rows, ArchitectureKind::Flat).latency_rounds;
        let hier = by_kind(&rows, ArchitectureKind::Hierarchical).latency_rounds;
        let bus = by_kind(&rows, ArchitectureKind::BusConnected).latency_rounds;
        assert!(flat <= hier, "flat {flat} vs hierarchical {hier}");
        assert!(bus >= hier, "bus {bus} vs hierarchical {hier}");
    }
}
