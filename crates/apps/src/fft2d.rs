//! The parallel two-dimensional FFT case study of §4.1.2.
//!
//! A root IP holds a `rows × cols` real image; it scatters row blocks to
//! worker IPs (the leaves of the paper's divide-and-conquer tree), each
//! worker runs 1-D FFTs over its rows and returns the spectra, and the
//! root finishes with the column FFTs to assemble the full 2-D transform
//! (Equation 5 applied to both dimensions). Workers can be replicated for
//! crash tolerance, exactly as in the Master–Slave study.

use std::cell::RefCell;
use std::rc::Rc;

use noc_dsp::{fft, fft2d, Complex64};
use noc_fabric::{Grid2d, IpContext, IpCore, NodeId};
use noc_faults::{CrashSchedule, FaultModel};
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

use crate::wire::{put_f64_slice, put_u32, PayloadReader};

const TAG_ROWS: u8 = 11;
const TAG_SPECTRA: u8 = 12;

/// Parameters of a parallel FFT2 run.
#[derive(Debug, Clone)]
pub struct Fft2dParams {
    /// Grid side (the paper uses 4×4).
    pub grid_side: usize,
    /// Image rows (power of two).
    pub rows: usize,
    /// Image columns (power of two).
    pub cols: usize,
    /// Number of worker roles the rows are split across.
    pub workers: usize,
    /// Replication factor per worker role.
    pub replication: usize,
    /// Protocol configuration.
    pub config: StochasticConfig,
    /// Fault model.
    pub fault_model: FaultModel,
    /// Explicit crash events.
    pub crash_schedule: CrashSchedule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fft2dParams {
    /// The paper's setup: 4×4 NoC, a 16×16 image split over 8 workers.
    fn default() -> Self {
        Self {
            grid_side: 4,
            rows: 16,
            cols: 16,
            workers: 8,
            replication: 1,
            config: StochasticConfig::default().with_max_rounds(300),
            fault_model: FaultModel::none(),
            crash_schedule: CrashSchedule::new(),
            seed: 0,
        }
    }
}

/// Outcome of a parallel FFT2 run.
#[derive(Debug, Clone)]
pub struct Fft2dOutcome {
    /// Did the root assemble the full transform?
    pub completed: bool,
    /// Round at which the root finished.
    pub completion_round: Option<u64>,
    /// The assembled spectrum (row-major, `rows × cols`), if complete.
    pub spectrum: Option<Vec<Complex64>>,
    /// Row blocks collected.
    pub blocks_collected: usize,
    /// Full engine report.
    pub report: SimulationReport,
}

impl Fft2dOutcome {
    /// Maximum absolute deviation from the sequential [`fft2d`] oracle
    /// computed on `input`, if the run completed.
    pub fn max_error_against_oracle(&self, input: &[f64], rows: usize, cols: usize) -> Option<f64> {
        let spectrum = self.spectrum.as_ref()?;
        let mut oracle: Vec<Complex64> = input.iter().map(|&x| Complex64::from_re(x)).collect();
        fft2d(&mut oracle, rows, cols);
        Some(
            spectrum
                .iter()
                .zip(&oracle)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max),
        )
    }
}

#[derive(Debug, Default)]
struct RootState {
    completion_round: Option<u64>,
    spectrum: Option<Vec<Complex64>>,
    blocks: usize,
}

struct RootIp {
    rows: usize,
    cols: usize,
    input: Vec<f64>,
    /// role -> (row range, replica tiles)
    assignments: Vec<(std::ops::Range<usize>, Vec<NodeId>)>,
    /// Collected row spectra (interleaved re/im per row).
    collected: Vec<Option<Vec<Complex64>>>,
    state: Rc<RefCell<RootState>>,
}

impl IpCore for RootIp {
    fn on_start(&mut self, ctx: &mut IpContext) {
        for (role, (range, tiles)) in self.assignments.iter().enumerate() {
            let mut block = Vec::new();
            for r in range.clone() {
                block.extend_from_slice(&self.input[r * self.cols..(r + 1) * self.cols]);
            }
            for &tile in tiles {
                let mut payload = vec![TAG_ROWS];
                put_u32(&mut payload, role as u32);
                put_u32(&mut payload, self.cols as u32);
                put_f64_slice(&mut payload, &block);
                ctx.send(tile, payload);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_SPECTRA) {
            return;
        }
        let Some(role) = r.u32() else { return };
        let Some(values) = r.f64_slice() else { return };
        let role = role as usize;
        if role >= self.assignments.len() || self.collected[role].is_some() {
            return;
        }
        let expected = self.assignments[role].0.len() * self.cols * 2;
        if values.len() != expected {
            return; // corrupt block
        }
        let spectra: Vec<Complex64> = values
            .chunks_exact(2)
            .map(|p| Complex64::new(p[0], p[1]))
            .collect();
        self.collected[role] = Some(spectra);
        let mut state = self.state.borrow_mut();
        state.blocks += 1;
        if state.blocks == self.assignments.len() {
            // Assemble: place row spectra, then column FFTs.
            let mut matrix = vec![Complex64::ZERO; self.rows * self.cols];
            for (role, (range, _)) in self.assignments.iter().enumerate() {
                let block = self.collected[role].as_ref().expect("all collected");
                for (i, row) in range.clone().enumerate() {
                    matrix[row * self.cols..(row + 1) * self.cols]
                        .copy_from_slice(&block[i * self.cols..(i + 1) * self.cols]);
                }
            }
            let mut column = vec![Complex64::ZERO; self.rows];
            for c in 0..self.cols {
                for row in 0..self.rows {
                    column[row] = matrix[row * self.cols + c];
                }
                fft(&mut column);
                for row in 0..self.rows {
                    matrix[row * self.cols + c] = column[row];
                }
            }
            state.spectrum = Some(matrix);
            state.completion_round = Some(ctx.round());
        }
    }

    fn is_done(&self) -> bool {
        self.state.borrow().spectrum.is_some()
    }

    fn name(&self) -> &str {
        "fft2d-root"
    }
}

struct WorkerIp {
    root: NodeId,
    done: bool,
}

impl IpCore for WorkerIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        if self.done {
            return;
        }
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_ROWS) {
            return;
        }
        let (Some(role), Some(cols)) = (r.u32(), r.u32()) else {
            return;
        };
        let Some(samples) = r.f64_slice() else { return };
        let cols = cols as usize;
        if cols == 0 || !cols.is_power_of_two() || samples.len() % cols != 0 {
            return; // corrupt work item
        }
        // FFT each row of the block.
        let mut out = Vec::with_capacity(samples.len() * 2);
        for row in samples.chunks_exact(cols) {
            let mut line: Vec<Complex64> = row.iter().map(|&x| Complex64::from_re(x)).collect();
            fft(&mut line);
            for z in line {
                out.push(z.re);
                out.push(z.im);
            }
        }
        let mut payload = vec![TAG_SPECTRA];
        put_u32(&mut payload, role);
        put_f64_slice(&mut payload, &out);
        ctx.send(self.root, payload);
        self.done = true;
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn name(&self) -> &str {
        "fft2d-worker"
    }
}

/// A configured parallel FFT2 application.
///
/// # Examples
///
/// ```
/// use noc_apps::fft2d::{Fft2dApp, Fft2dParams};
///
/// let app = Fft2dApp::new(Fft2dParams::default());
/// let input = app.test_image();
/// let outcome = app.run();
/// assert!(outcome.completed);
/// let err = outcome.max_error_against_oracle(&input, 16, 16).unwrap();
/// assert!(err < 1e-9);
/// ```
#[derive(Debug)]
pub struct Fft2dApp {
    params: Fft2dParams,
}

impl Fft2dApp {
    /// Creates the application.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not powers of two, the worker count does
    /// not divide the rows, or the grid cannot host root + workers.
    pub fn new(params: Fft2dParams) -> Self {
        assert!(
            params.rows.is_power_of_two() && params.cols.is_power_of_two(),
            "image dimensions must be powers of two"
        );
        assert!(
            params.workers > 0 && params.rows.is_multiple_of(params.workers),
            "workers must evenly divide the rows"
        );
        assert!(params.replication > 0, "replication must be positive");
        let tiles = params.grid_side * params.grid_side;
        assert!(
            params.workers * params.replication < tiles,
            "{} tiles cannot host 1 root + {}x{} workers",
            tiles,
            params.workers,
            params.replication
        );
        Self { params }
    }

    /// Deterministic test image (smooth 2-D tone mixture).
    pub fn test_image(&self) -> Vec<f64> {
        let (rows, cols) = (self.params.rows, self.params.cols);
        (0..rows * cols)
            .map(|i| {
                let (r, c) = ((i / cols) as f64, (i % cols) as f64);
                (0.3 * r).sin() + 0.5 * (0.7 * c).cos() + 0.25 * (0.2 * r * c).sin()
            })
            .collect()
    }

    /// The root tile (grid corner, as in the paper's tree mapping).
    pub fn root_tile(&self) -> NodeId {
        NodeId(0)
    }

    /// Worker role assignments: role → (row range, replica tiles).
    pub fn worker_assignments(&self) -> Vec<(std::ops::Range<usize>, Vec<NodeId>)> {
        let p = &self.params;
        let per = p.rows / p.workers;
        let root = self.root_tile();
        let free: Vec<NodeId> = (0..p.grid_side * p.grid_side)
            .map(NodeId)
            .filter(|&n| n != root)
            .collect();
        (0..p.workers)
            .map(|role| {
                let range = role * per..(role + 1) * per;
                let tiles = (0..p.replication)
                    .map(|rep| free[(rep * p.workers + role) % free.len()])
                    .collect();
                (range, tiles)
            })
            .collect()
    }

    /// Runs the application.
    pub fn run(self) -> Fft2dOutcome {
        let root = self.root_tile();
        let assignments = self.worker_assignments();
        let input = self.test_image();
        let state = Rc::new(RefCell::new(RootState::default()));
        let p = &self.params;

        let mut builder = SimulationBuilder::new(Grid2d::new(p.grid_side, p.grid_side))
            .config(p.config)
            .fault_model(p.fault_model)
            .crash_schedule(p.crash_schedule.clone())
            .seed(p.seed)
            .with_ip(
                root,
                Box::new(RootIp {
                    rows: p.rows,
                    cols: p.cols,
                    input,
                    assignments: assignments.clone(),
                    collected: vec![None; p.workers],
                    state: Rc::clone(&state),
                }),
            );
        let mut mapped = std::collections::BTreeSet::new();
        for (_, tiles) in &assignments {
            for &tile in tiles {
                if mapped.insert(tile) {
                    builder = builder.with_ip(tile, Box::new(WorkerIp { root, done: false }));
                }
            }
        }
        let mut sim = builder.build();
        let report = sim.run();
        let state = state.borrow();
        Fft2dOutcome {
            completed: state.spectrum.is_some(),
            completion_round: state.completion_round,
            spectrum: state.spectrum.clone(),
            blocks_collected: state.blocks,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fft_matches_sequential_oracle() {
        let app = Fft2dApp::new(Fft2dParams::default());
        let input = app.test_image();
        let outcome = app.run();
        assert!(outcome.completed);
        let err = outcome
            .max_error_against_oracle(&input, 16, 16)
            .expect("spectrum present");
        assert!(err < 1e-9, "max error {err}");
    }

    #[test]
    fn completes_in_a_handful_of_rounds() {
        let outcome = Fft2dApp::new(Fft2dParams::default()).run();
        // Paper: 5-8 rounds for FFT2 at p=0.5 on a 4x4 grid.
        let round = outcome.completion_round.unwrap();
        assert!((2..=20).contains(&round), "completed at round {round}");
    }

    #[test]
    fn flooding_completes_at_scatter_gather_optimum() {
        let params = Fft2dParams {
            config: StochasticConfig::flooding(12).with_max_rounds(100),
            ..Fft2dParams::default()
        };
        let outcome = Fft2dApp::new(params).run();
        // Root at corner, farthest worker <= diameter 6 hops; two phases.
        let round = outcome.completion_round.unwrap();
        assert!(round <= 12, "flooding finished at {round}");
    }

    #[test]
    fn replicated_workers_survive_a_crash() {
        let base = Fft2dParams {
            replication: 2,
            grid_side: 5,
            ..Fft2dParams::default()
        };
        let app = Fft2dApp::new(base.clone());
        let victim = app.worker_assignments()[0].1[0];
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(victim.index(), 0);
        let params = Fft2dParams {
            crash_schedule: schedule,
            config: StochasticConfig::default().with_max_rounds(100),
            ..base
        };
        let input;
        {
            let app = Fft2dApp::new(params.clone());
            input = app.test_image();
        }
        let outcome = Fft2dApp::new(params).run();
        assert!(outcome.completed, "replica should cover the dead worker");
        let err = outcome.max_error_against_oracle(&input, 16, 16).unwrap();
        assert!(err < 1e-9);
    }

    #[test]
    fn unreplicated_crash_prevents_completion() {
        let app = Fft2dApp::new(Fft2dParams::default());
        let victim = app.worker_assignments()[0].1[0];
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(victim.index(), 0);
        let params = Fft2dParams {
            crash_schedule: schedule,
            config: StochasticConfig::default().with_max_rounds(60),
            ..Fft2dParams::default()
        };
        let outcome = Fft2dApp::new(params).run();
        assert!(!outcome.completed);
        assert_eq!(outcome.blocks_collected, 7);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_image_rejected() {
        let _ = Fft2dApp::new(Fft2dParams {
            rows: 12,
            ..Fft2dParams::default()
        });
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn worker_count_must_divide_rows() {
        let _ = Fft2dApp::new(Fft2dParams {
            workers: 3,
            ..Fft2dParams::default()
        });
    }
}
