//! Signal-processing substrate for the stochastic-NoC workloads.
//!
//! The paper's case studies and complex application need real DSP kernels:
//! the parallel 2-D FFT case study (§4.1.2) and the MP3-style encoder
//! pipeline (§4.2, Figure 4-7: signal acquisition → psychoacoustic model +
//! MDCT → iterative encoding → bit reservoir → output). This crate
//! implements all of them from scratch:
//!
//! * [`Complex64`] and a radix-2 [`fft`]/[`ifft`] (+ [`fft2d`]),
//! * the [`mdct`]/[`imdct`] lapped transform with perfect reconstruction,
//! * a simplified FFT-based [`psycho`] psychoacoustic masking model,
//! * the nonuniform [`quantize`] power-law quantizer with an iterative
//!   rate-control loop,
//! * a [`bitstream`] writer/reader with Elias-gamma coding and a bit
//!   reservoir.
//!
//! # Examples
//!
//! ```
//! use noc_dsp::{fft, ifft, Complex64};
//!
//! let signal: Vec<Complex64> = (0..8)
//!     .map(|n| Complex64::new((n as f64 * 0.7).sin(), 0.0))
//!     .collect();
//! let mut spectrum = signal.clone();
//! fft(&mut spectrum);
//! ifft(&mut spectrum);
//! for (a, b) in signal.iter().zip(&spectrum) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
mod complex;
mod fft;
pub mod filterbank;
mod mdct;
pub mod psycho;
pub mod quantize;
pub mod signal;
mod window;

pub use complex::Complex64;
pub use fft::{dft_naive, fft, fft2d, ifft, ifft2d};
pub use mdct::{imdct, mdct, MdctFrame};
pub use window::{hann_window, sine_window};
