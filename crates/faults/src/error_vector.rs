//! The paper's two analytical error models for data upsets.
//!
//! For an `n`-bit message the error vector is `e = (e1 … en)`, `ei = 1`
//! when bit `i` is flipped. Chapter 2 derives:
//!
//! * **random error vector**: all `2^n − 1` non-null vectors are equally
//!   likely, so each has probability `p_v ≈ p_upset / 2^n`;
//! * **random bit error**: bits flip independently with probability
//!   `p_b ≈ p_upset / n`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which analytical model generates error vectors for upset packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ErrorModel {
    /// All `2^n − 1` non-null error vectors equally likely.
    #[default]
    RandomErrorVector,
    /// Independent per-bit flips, conditioned on at least one flip.
    RandomBitError,
}

impl ErrorModel {
    /// Draws a non-null error vector for an `n_bits`-long message and
    /// XORs it onto `payload` in place.
    ///
    /// The draw is *conditioned on an upset having occurred* (the caller
    /// decides whether one occurs using `p_upset`), so the returned vector
    /// is never the null vector.
    ///
    /// For [`ErrorModel::RandomBitError`], `p_upset` sets the per-bit flip
    /// probability via `p_b = p_upset / n` (clamped to at least one
    /// expected flip so the conditional rejection loop terminates
    /// quickly).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty — a zero-length message cannot carry a
    /// bit error.
    pub fn scramble<R: Rng + ?Sized>(&self, rng: &mut R, payload: &mut [u8], p_upset: f64) {
        assert!(!payload.is_empty(), "cannot scramble an empty payload");
        let n_bits = payload.len() * 8;
        match self {
            ErrorModel::RandomErrorVector => {
                // Uniform over non-null vectors: sample uniform bytes and
                // reject the (vanishingly unlikely) null vector.
                loop {
                    let mut any = false;
                    let mut vector = vec![0u8; payload.len()];
                    rng.fill(vector.as_mut_slice());
                    for &b in &vector {
                        if b != 0 {
                            any = true;
                            break;
                        }
                    }
                    if any {
                        for (dst, v) in payload.iter_mut().zip(&vector) {
                            *dst ^= v;
                        }
                        return;
                    }
                }
            }
            ErrorModel::RandomBitError => {
                let p_b = bit_error_probability(p_upset, n_bits).max(1.0 / n_bits as f64);
                loop {
                    let mut any = false;
                    let mut vector = vec![0u8; payload.len()];
                    for byte in vector.iter_mut() {
                        for bit in 0..8 {
                            // noc-lint: allow(rng-draw-site, reason = "draws from the caller's RNG handed in by a sanctioned site; the scramble itself owns no stream")
                            if rng.gen_bool(p_b) {
                                *byte |= 1 << bit;
                                any = true;
                            }
                        }
                    }
                    if any {
                        for (dst, v) in payload.iter_mut().zip(&vector) {
                            *dst ^= v;
                        }
                        return;
                    }
                }
            }
        }
    }
}

/// The per-vector probability of the random error vector model:
/// `p_v ≈ p_upset / 2^n`.
///
/// Saturates to `p_upset` for messages longer than 63 bits, where `2^n`
/// overflows — at that point individual vector probabilities are below
/// `f64` resolution anyway.
pub fn vector_probability(p_upset: f64, n_bits: usize) -> f64 {
    if n_bits >= 64 {
        p_upset * (n_bits as f64 * -(2f64.ln())).exp()
    } else {
        p_upset / (1u64 << n_bits) as f64
    }
}

/// The per-bit probability of the random bit error model:
/// `p_b ≈ p_upset / n`.
///
/// # Panics
///
/// Panics if `n_bits` is zero.
pub fn bit_error_probability(p_upset: f64, n_bits: usize) -> f64 {
    assert!(n_bits > 0, "message must contain at least one bit");
    (p_upset / n_bits as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scramble_always_changes_payload() {
        let mut rng = StdRng::seed_from_u64(7);
        for model in [ErrorModel::RandomErrorVector, ErrorModel::RandomBitError] {
            for _ in 0..200 {
                let original = vec![0x55u8; 8];
                let mut copy = original.clone();
                model.scramble(&mut rng, &mut copy, 0.5);
                assert_ne!(copy, original, "scramble produced the null vector");
            }
        }
    }

    #[test]
    fn random_bit_error_flips_few_bits_on_average() {
        // With p_b = p_upset / n, the expected number of flips per upset
        // event is about max(1, p_upset): overwhelmingly 1-2 bits.
        let mut rng = StdRng::seed_from_u64(11);
        let mut total_flips = 0u32;
        let trials = 500;
        for _ in 0..trials {
            let original = vec![0u8; 16];
            let mut copy = original.clone();
            ErrorModel::RandomBitError.scramble(&mut rng, &mut copy, 0.3);
            total_flips += copy.iter().map(|b| b.count_ones()).sum::<u32>();
        }
        let avg = total_flips as f64 / trials as f64;
        assert!(avg < 3.0, "random bit error flipped {avg} bits on average");
    }

    #[test]
    fn random_error_vector_flips_half_the_bits_on_average() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut total_flips = 0u32;
        let trials = 500;
        let n_bits = 128u32;
        for _ in 0..trials {
            let original = vec![0u8; (n_bits / 8) as usize];
            let mut copy = original.clone();
            ErrorModel::RandomErrorVector.scramble(&mut rng, &mut copy, 0.3);
            total_flips += copy.iter().map(|b| b.count_ones()).sum::<u32>();
        }
        let avg = total_flips as f64 / trials as f64;
        assert!(
            (avg - n_bits as f64 / 2.0).abs() < 8.0,
            "uniform vectors should flip ~half the bits, got {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "empty payload")]
    fn scrambling_nothing_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        ErrorModel::RandomErrorVector.scramble(&mut rng, &mut [], 0.5);
    }

    #[test]
    fn vector_probability_matches_equation() {
        // p_v = p_upset / 2^n for small n.
        assert!((vector_probability(0.8, 4) - 0.8 / 16.0).abs() < 1e-15);
        assert!((vector_probability(0.5, 10) - 0.5 / 1024.0).abs() < 1e-15);
        // Long messages: still finite, tiny, monotone in p_upset.
        let a = vector_probability(0.5, 128);
        let b = vector_probability(1.0, 128);
        assert!(a > 0.0 && b > a);
    }

    #[test]
    fn bit_error_probability_matches_equation() {
        assert!((bit_error_probability(0.4, 8) - 0.05).abs() < 1e-15);
        assert_eq!(bit_error_probability(2.0, 1), 1.0, "clamped to 1");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn bit_error_probability_rejects_empty_message() {
        let _ = bit_error_probability(0.5, 0);
    }

    #[test]
    fn models_are_deterministic_under_a_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let mut pa = vec![1u8, 2, 3, 4];
        let mut pb = vec![1u8, 2, 3, 4];
        ErrorModel::RandomErrorVector.scramble(&mut a, &mut pa, 0.5);
        ErrorModel::RandomErrorVector.scramble(&mut b, &mut pb, 0.5);
        assert_eq!(pa, pb);
    }
}
