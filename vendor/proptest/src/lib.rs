//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! [`any`] strategies, tuple strategies, [`collection::vec`],
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! `ProptestConfig::with_cases`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the sampled inputs' values left to the assertion message. Cases
//! are generated from a fixed-seed deterministic RNG, so failures always
//! reproduce.

#![forbid(unsafe_code)]

/// Test-runner plumbing: configuration and case outcomes.
pub mod test_runner {
    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is re-drawn.
        Reject,
        /// An assertion failed; the whole test fails.
        Fail(String),
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps sampled values through `map`, like upstream proptest's
        /// `Strategy::prop_map` (minus shrinking).
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returning clones of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Uniform choice between strategies of one value type — the backing
    /// of [`prop_oneof!`](crate::prop_oneof) (upstream's weighted unions
    /// are not supported; every arm is equally likely).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy produced by [`any`](super::any): the full value domain.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The half-open length range of a collection strategy.
    ///
    /// Mirrors proptest's `SizeRange` so that unsuffixed literals like
    /// `0..100` infer as `usize` at `vec` call sites.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange(*range.start()..range.end().saturating_add(1))
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    /// Strategy for `Vec`s with random length and random elements.
    pub struct VecStrategy<E> {
        element: E,
        length: SizeRange,
    }

    /// A `Vec` strategy: `length` draws the size, `element` each item.
    pub fn vec<E: Strategy>(element: E, length: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.length.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The full value domain of `T` as a strategy.
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Runtime re-exports for the macro expansion; not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// The imports a proptest test module needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests (see crate docs for the
/// supported subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                0x70726f_70746573 ^ config.cases as u64,
            );
            let mut executed = 0u32;
            let mut rejected = 0u32;
            while executed < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(64),
                            "prop_assume! rejected too many cases ({rejected})"
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed after {executed} passing case(s): {msg}");
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
///
/// Unlike upstream proptest, arms are equally weighted and `weight =>`
/// prefixes are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} (both: {:?})", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Rejects the current case (it is redrawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 3usize..17,
            (lo, hi) in (0u8..10, 10u8..20),
            v in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(lo < hi);
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..4, b in 0u32..4) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn map_just_and_oneof_combinators(
            doubled in (1usize..10).prop_map(|x| x * 2),
            fixed in Just(7u8),
            either in prop_oneof![Just(1u8), Just(2u8), 10u8..20],
            wide in (0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2),
        ) {
            prop_assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
            prop_assert_eq!(fixed, 7);
            prop_assert!(either == 1 || either == 2 || (10..20).contains(&either));
            prop_assert!(wide.7 < 2, "8-tuples sample");
        }
    }

    mod failing {
        proptest! {
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }

        pub fn run() {
            always_fails();
        }
    }

    #[test]
    fn failing_property_panics() {
        let outcome = std::panic::catch_unwind(failing::run);
        let msg = *outcome
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("property failed"), "unexpected message: {msg}");
    }
}
