//! Node and link identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a tile in the network (0-based).
///
/// The paper numbers tiles 1..=16 in its figures; this library uses the
/// conventional 0-based indices, so the paper's "tile 6" is `NodeId(5)`.
///
/// # Examples
///
/// ```
/// use noc_fabric::NodeId;
///
/// let producer = NodeId(5);
/// assert_eq!(producer.index(), 5);
/// assert_eq!(producer.to_string(), "n5");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// Index of a *directed* link in the network (0-based).
///
/// Every bidirectional wire of the grid appears as two directed links, one
/// per direction, each with its own id — crash faults and upsets are
/// applied per directed link.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub usize);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

impl From<usize> for LinkId {
    fn from(i: usize) -> Self {
        LinkId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<NodeId> = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(3) > LinkId(0));
    }

    #[test]
    fn conversions() {
        let n: NodeId = 7usize.into();
        assert_eq!(n.index(), 7);
        let l: LinkId = 9usize.into();
        assert_eq!(l.index(), 9);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(LinkId(3).to_string(), "l3");
    }
}
