//! The `noc-lint` command-line interface.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use noc_lint::{driver, RULES};

const USAGE: &str = "\
noc-lint — static determinism/hot-path invariant checks for this workspace

USAGE:
    noc-lint [--root PATH] [--format text|json] [--explain]

OPTIONS:
    --root PATH     Workspace root to lint (default: this workspace)
    --format FMT    Output format: text (default) or json
    --explain       List every rule and the invariant it protects
    -h, --help      Show this help

EXIT CODES:
    0  no unannotated findings
    1  at least one unannotated finding
    2  usage or I/O error";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => return usage_error(&format!("--format needs text|json, got {other:?}")),
            },
            "--explain" => {
                for rule in RULES {
                    println!("{:<22} {}", rule.name, rule.invariant);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // Default to the workspace this binary was built from, falling back
    // to the current directory when that tree is gone (e.g. a relocated
    // artifact).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        match manifest.parent().and_then(|p| p.parent()) {
            Some(ws) if ws.join("Cargo.toml").exists() => ws.to_path_buf(),
            _ => PathBuf::from("."),
        }
    });

    match driver::lint_root(&root) {
        Ok(report) => {
            match format {
                Format::Text => print!("{}", driver::render_text(&report)),
                Format::Json => print!("{}", driver::render_json(&report)),
            }
            if report.unallowed() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("noc-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("noc-lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
