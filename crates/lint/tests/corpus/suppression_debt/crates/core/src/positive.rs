//! Corpus fixture: a stale allow — the annotation outlived the code it
//! once suppressed.

/// The unwrap this allow used to cover was refactored away.
pub fn settled() -> u64 {
    // noc-lint: allow(hot-path-panic, reason = "bounds are pre-validated by the caller")
    7
}
