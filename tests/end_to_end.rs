//! Cross-crate integration tests: full scenarios that exercise the
//! protocol engine, fault model, CRC layer, applications and energy
//! accounting together.

use ocsc::noc_energy::TechnologyLibrary;
use ocsc::noc_fabric::{Grid2d, NodeId, Topology};
use ocsc::noc_faults::{ErrorModel, FaultModel};
use ocsc::stochastic_noc::{SimulationBuilder, StochasticConfig};

#[test]
fn paper_running_example_end_to_end() {
    // Figure 3-3 with every subsystem engaged: CRC-protected packets,
    // energy accounting at the 0.25um NoC point, deterministic seeding.
    let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
        .config(StochasticConfig::new(0.5, 12).unwrap().with_max_rounds(60))
        .technology(TechnologyLibrary::NOC_LINK_0_25UM)
        .seed(42)
        .build();
    let id = sim.inject(NodeId(5), NodeId(11), b"producer->consumer".to_vec());
    let report = sim.run();

    assert!(report.delivered(id));
    let latency = report.latency(id).unwrap();
    assert!((3..=12).contains(&latency), "latency {latency}");
    // Energy equals bits * E_bit exactly:
    let expect = report.bits_sent.bits() as f64 * 2.4e-10;
    assert!((report.total_energy().joules() - expect).abs() < 1e-12);
}

#[test]
fn all_fault_classes_together_are_survivable() {
    // Chapter 2's whole model at moderate levels simultaneously.
    let model = FaultModel::builder()
        .p_tiles(0.05)
        .p_links(0.05)
        .p_upset(0.2)
        .p_overflow(0.15)
        .sigma_synch(0.2)
        .error_model(ErrorModel::RandomErrorVector)
        .build()
        .unwrap();
    let mut delivered = 0;
    let runs = 10;
    for seed in 0..runs {
        let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
            .config(
                StochasticConfig::new(0.75, 20)
                    .unwrap()
                    .with_max_rounds(120),
            )
            .fault_model(model)
            .seed(seed)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"storm".to_vec());
        if sim.run().delivered(id) {
            delivered += 1;
        }
    }
    assert!(
        delivered >= 7,
        "combined moderate faults delivered only {delivered}/{runs}"
    );
}

#[test]
fn broadcast_reaches_every_tile_of_a_bigger_grid() {
    let mut sim = SimulationBuilder::new(Grid2d::new(6, 6))
        .config(StochasticConfig::new(0.6, 24).unwrap().with_max_rounds(80))
        .seed(1)
        .build();
    let id = sim.inject(NodeId(0), NodeId(35), b"wide".to_vec());
    while !sim.is_complete() && sim.round() < 80 {
        sim.step();
        if sim.informed_count(id) == 36 {
            break;
        }
    }
    assert_eq!(sim.informed_count(id), 36, "gossip fills the 6x6 grid");
}

#[test]
fn fully_connected_topology_matches_epidemic_theory_loosely() {
    // On a fully connected fabric at p chosen so each holder infects ~1
    // peer per round, the engine's spread should land in the same ballpark
    // as the Pittel S_n estimate used in Figure 3-1.
    let n = 32;
    let p = 1.0 / (n as f64 - 1.0);
    let mut sim = SimulationBuilder::new(Topology::fully_connected(n))
        .config(StochasticConfig::new(p, 40).unwrap().with_max_rounds(200))
        .seed(9)
        .build();
    let id = sim.inject(NodeId(0), NodeId(n - 1), b"theory".to_vec());
    let mut reached_all_at = None;
    for round in 0..120 {
        sim.step();
        if sim.informed_count(id) == n {
            reached_all_at = Some(round);
            break;
        }
    }
    let s_n = ocsc::stochastic_noc::spread::rounds_to_inform_all(n);
    let got = reached_all_at.expect("everyone informed") as f64;
    assert!(
        got < s_n * 4.0,
        "engine spread took {got} rounds, theory {s_n:.1}"
    );
}

#[test]
fn spread_termination_saves_energy_without_hurting_delivery() {
    let run = |terminate: bool| {
        let mut delivered = 0;
        let mut packets = 0u64;
        for seed in 0..5 {
            let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
                .config(
                    StochasticConfig::new(0.5, 16)
                        .unwrap()
                        .with_max_rounds(80)
                        .with_termination(terminate),
                )
                .seed(seed)
                .build();
            let id = sim.inject(NodeId(5), NodeId(11), b"ttl".to_vec());
            let report = sim.run();
            if report.delivered(id) {
                delivered += 1;
            }
            packets += report.packets_sent;
        }
        (delivered, packets)
    };
    let (d_plain, p_plain) = run(false);
    let (d_term, p_term) = run(true);
    assert_eq!(d_plain, d_term, "termination must not change delivery");
    assert!(
        p_term < p_plain / 2,
        "termination should cut traffic sharply: {p_term} vs {p_plain}"
    );
}
