//! The §4.1.2 parallel 2-D FFT: scatter row blocks over the NoC,
//! transform in parallel, gather, and verify against the sequential
//! oracle.
//!
//! ```text
//! cargo run --example fft2d_parallel
//! ```

use ocsc::noc_apps::fft2d::{Fft2dApp, Fft2dParams};
use ocsc::stochastic_noc::StochasticConfig;

fn main() {
    let params = Fft2dParams {
        config: StochasticConfig::new(0.5, 16)
            .expect("valid config")
            .with_max_rounds(120),
        ..Fft2dParams::default()
    };
    let app = Fft2dApp::new(params);
    let input = app.test_image();

    println!("parallel FFT2 of a 16x16 image over a 4x4 stochastic NoC");
    println!("workers          : 8 (2 rows each), root on tile 1");

    let outcome = app.run();
    println!("completed        : {}", outcome.completed);
    if let Some(round) = outcome.completion_round {
        println!("completion round : {round} (paper: 5-8 rounds at p=0.5)");
    }
    if let Some(err) = outcome.max_error_against_oracle(&input, 16, 16) {
        println!("max |error| vs sequential fft2d oracle: {err:.3e}");
    }
    println!("packets sent     : {}", outcome.report.packets_sent);
    println!("energy           : {}", outcome.report.total_energy());
}
