//! Integration tests over the full application workloads.

use ocsc::noc_apps::fft2d::{Fft2dApp, Fft2dParams};
use ocsc::noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use ocsc::noc_apps::mp3::{Mp3App, Mp3Params};
use ocsc::noc_faults::FaultModel;
use ocsc::stochastic_noc::StochasticConfig;

#[test]
fn pi_survives_upsets_and_stays_numerically_exact() {
    // Upsets can delay but never corrupt the result: corrupted packets
    // are CRC-dropped, so the pi estimate is bit-exact when complete.
    let clean = MasterSlaveApp::new(MasterSlaveParams {
        terms: 50_000,
        ..MasterSlaveParams::default()
    })
    .run();
    let noisy = MasterSlaveApp::new(MasterSlaveParams {
        terms: 50_000,
        fault_model: FaultModel::builder().p_upset(0.25).build().unwrap(),
        config: StochasticConfig::new(0.75, 20)
            .unwrap()
            .with_max_rounds(400),
        seed: 3,
        ..MasterSlaveParams::default()
    })
    .run();
    assert!(clean.completed && noisy.completed);
    assert_eq!(
        clean.pi_estimate.unwrap().to_bits(),
        noisy.pi_estimate.unwrap().to_bits(),
        "faults must never alter delivered data"
    );
}

#[test]
fn fft_matches_oracle_even_under_packet_loss() {
    let params = Fft2dParams {
        fault_model: FaultModel::builder().p_overflow(0.2).build().unwrap(),
        config: StochasticConfig::new(0.75, 20)
            .unwrap()
            .with_max_rounds(300),
        seed: 5,
        ..Fft2dParams::default()
    };
    let input = Fft2dApp::new(params.clone()).test_image();
    let outcome = Fft2dApp::new(params).run();
    assert!(outcome.completed, "20% overflow should be survivable");
    let err = outcome.max_error_against_oracle(&input, 16, 16).unwrap();
    assert!(err < 1e-9, "numerical error {err}");
}

#[test]
fn mp3_graceful_degradation_curve() {
    // The paper's claim: graceful degradation in delivered frames as the
    // overflow level rises, with a cliff only at extreme levels.
    let delivered_at = |p_overflow: f64| {
        let params = Mp3Params {
            frames: 10,
            fault_model: FaultModel::builder()
                .p_overflow(p_overflow)
                .build()
                .unwrap(),
            config: StochasticConfig::new(0.6, 20).unwrap().with_max_rounds(400),
            seed: 1,
            ..Mp3Params::default()
        };
        Mp3App::new(params).run().frames_delivered
    };
    let clean = delivered_at(0.0);
    let moderate = delivered_at(0.5);
    let extreme = delivered_at(0.97);
    assert_eq!(clean, 10);
    assert!(moderate >= 8, "50% overflow delivered {moderate}");
    assert!(extreme < moderate, "97% overflow must hurt ({extreme})");
}

#[test]
fn flooding_versus_gossip_tradeoff_holds_across_apps() {
    // The headline design knob: flooding buys latency with energy.
    let ms = |p: f64| {
        MasterSlaveApp::new(MasterSlaveParams {
            config: StochasticConfig::new(p, 16).unwrap().with_max_rounds(200),
            terms: 10_000,
            seed: 2,
            ..MasterSlaveParams::default()
        })
        .run()
    };
    let flood = ms(1.0);
    let half = ms(0.5);
    assert!(flood.completed && half.completed);
    assert!(flood.completion_round.unwrap() <= half.completion_round.unwrap());
    assert!(flood.report.total_energy().joules() > half.report.total_energy().joules());
}
