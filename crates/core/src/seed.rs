//! Deterministic per-trial seed derivation for Monte-Carlo sweeps.
//!
//! Every figure of the paper averages many independent seeded
//! simulations. To run those trials in parallel while keeping output
//! bit-identical for any worker count, each trial's seed must be a pure
//! function of `(base_seed, trial_index)` — never of scheduling order.
//! This module provides that function via SplitMix64, the same finalizer
//! used to expand single-word RNG seeds: it is cheap, stateless, and
//! statistically strong enough that consecutive trial indices produce
//! uncorrelated simulation streams.
//!
//! # Examples
//!
//! ```
//! use stochastic_noc::seed;
//!
//! let a = seed::derive_trial_seed(42, 0);
//! let b = seed::derive_trial_seed(42, 1);
//! assert_ne!(a, b, "trials get distinct seeds");
//! assert_eq!(a, seed::derive_trial_seed(42, 0), "derivation is pure");
//! ```

/// The golden-ratio increment SplitMix64 walks its state by.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances `state` by one SplitMix64 step and returns the mixed output.
///
/// This is the reference SplitMix64 generator (Steele, Lea & Flood,
/// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of trial `trial_index` in a sweep rooted at
/// `base_seed`.
///
/// The derivation jumps the SplitMix64 state directly to
/// `base_seed + (trial_index + 1) · γ` and mixes once, so it costs O(1)
/// for any index, and two sweeps with different base seeds produce
/// disjoint-looking seed sequences.
pub fn derive_trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    let mut state = base_seed.wrapping_add(trial_index.wrapping_mul(GOLDEN_GAMMA));
    split_mix64(&mut state)
}

/// Derives a sweep base seed for a named experiment from a global base
/// seed, so that every figure sharing one `--seed` value still runs
/// statistically independent trials.
///
/// The label is folded with FNV-1a and mixed with the global seed
/// through SplitMix64.
pub fn derive_labeled_seed(base_seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let mut state = base_seed ^ hash;
    split_mix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_stable_across_runs() {
        // Pin concrete values: these must never change, or previously
        // published figure tables would silently shift.
        assert_eq!(derive_trial_seed(0, 0), 16294208416658607535);
        assert_eq!(derive_trial_seed(0, 1), 7960286522194355700);
        assert_eq!(derive_trial_seed(42, 0), 13679457532755275413);
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for index in 0..1000u64 {
                assert!(
                    seen.insert(derive_trial_seed(base, index)),
                    "collision at base {base} index {index}"
                );
            }
        }
    }

    #[test]
    fn trial_seed_matches_sequential_split_mix() {
        // The O(1) jump must agree with stepping SplitMix64 from
        // base_seed trial_index + 1 times.
        let base = 1234u64;
        let mut state = base;
        for index in 0..64u64 {
            let sequential = split_mix64(&mut state);
            assert_eq!(sequential, derive_trial_seed(base, index));
        }
    }

    #[test]
    fn labeled_seeds_differ_per_label_and_base() {
        let a = derive_labeled_seed(0, "fig4-4");
        let b = derive_labeled_seed(0, "fig4-5");
        let c = derive_labeled_seed(1, "fig4-4");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_labeled_seed(0, "fig4-4"));
    }

    #[test]
    fn split_mix_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut flips = 0u32;
        let samples = 64u32;
        for i in 0..samples {
            let x = derive_trial_seed(7, u64::from(i));
            let y = derive_trial_seed(7 ^ 1, u64::from(i));
            flips += (x ^ y).count_ones();
        }
        let mean = f64::from(flips) / f64::from(samples);
        assert!((20.0..44.0).contains(&mean), "mean bit flips {mean}");
    }
}
