//! Producer–consumer under fire: watch the gossip spread round by round
//! while data upsets scramble packets and a dead tile blocks part of the
//! grid.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```

use ocsc::noc_fabric::{Grid2d, NodeId};
use ocsc::noc_faults::{CrashSchedule, FaultModel};
use ocsc::stochastic_noc::{SimulationBuilder, StochasticConfig};

fn main() {
    let model = FaultModel::builder()
        .p_upset(0.3)
        .p_overflow(0.1)
        .build()
        .expect("valid fault model");
    let mut schedule = CrashSchedule::new();
    schedule.kill_tile(6, 0); // tile 7 (1-based) is dead on arrival

    let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
        .config(
            StochasticConfig::new(0.5, 16)
                .expect("valid config")
                .with_max_rounds(60),
        )
        .fault_model(model)
        .crash_schedule(schedule)
        .seed(7)
        .build();

    let producer = NodeId(5);
    let consumer = NodeId(11);
    let message = sim.inject(producer, consumer, b"resilient payload".to_vec());

    println!("gossip spread with 30% upsets, 10% overflow, one dead tile:");
    println!("round | informed tiles | transmissions this round");
    while !sim.is_complete() && sim.round() < 60 {
        let stats = sim.step();
        println!(
            "{:>5} | {:>14} | {:>6}",
            stats.round,
            sim.informed_count(message),
            stats.transmissions
        );
        if sim.report().delivered(message) && stats.round > 0 {
            // Keep printing a couple of rounds after delivery, then stop.
            if sim.report().latency(message).unwrap_or(0) + 3 <= stats.round {
                break;
            }
        }
    }

    let report = sim.report();
    println!();
    println!("delivered        : {}", report.delivered(message));
    println!("latency          : {:?} rounds", report.latency(message));
    println!("upsets detected  : {}", report.upsets_detected);
    println!("upsets undetected: {}", report.upsets_undetected);
    println!("overflow drops   : {}", report.overflow_drops);
    println!("crash drops      : {}", report.crash_drops);
}
