//! `noc-lint` — an offline static-analysis pass enforcing the
//! simulator's determinism and hot-path invariants.
//!
//! The whole value of this reproduction rests on byte-identical seeded
//! determinism: golden-report digests, the `ReferenceSimulation` oracle,
//! and `--threads`-independent merges all assume no code path ever
//! consults ambient entropy, wall-clock time, or unordered-map iteration
//! order. The tests enforce those invariants *after the fact*; this
//! linter enforces them *statically*, before a nondeterministic
//! construct can ship.
//!
//! The pass is dependency-free and purely lexical: a hand-rolled
//! comment/string/raw-string-aware Rust lexer ([`lexer`]) feeds a rule
//! engine ([`rules`]) of repo-specific invariants, with findings
//! suppressible only through the reasoned
//! `// noc-lint: allow(<rule>, reason = "…")` grammar ([`annotations`]).
//! See DESIGN.md §10 for the rule catalogue.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p noc-lint            # human-readable findings
//! cargo run -p noc-lint -- --format json
//! ```
//!
//! Exit codes are stable: `0` — no unannotated findings; `1` — at least
//! one unannotated finding; `2` — usage or I/O error.

#![forbid(unsafe_code)]

pub mod annotations;
pub mod driver;
pub mod lexer;
pub mod rules;

pub use driver::{lint_root, lint_source, render_json, render_text, Report};
pub use rules::{Finding, RuleInfo, RULES};
