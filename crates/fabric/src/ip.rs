//! The IP-core interface: the computation side of the
//! computation/communication separation.
//!
//! An [`IpCore`] never sees links, rounds budgets or gossip decisions — it
//! only receives payloads addressed to its tile and emits payloads
//! addressed to other tiles. The network logic (the stochastic
//! communication engine) is entirely transparent to it, which is exactly
//! the separation the paper advertises.

use crate::node::NodeId;

/// Per-round interaction surface handed to an [`IpCore`].
///
/// Collects the messages the IP wants to send this round; the engine
/// injects them into the tile's send buffer with fresh message ids.
#[derive(Debug)]
pub struct IpContext {
    node: NodeId,
    round: u64,
    outbox: Vec<(NodeId, Vec<u8>)>,
}

impl IpContext {
    /// Creates a context for `node` at `round` (engine-side constructor).
    pub fn new(node: NodeId, round: u64) -> Self {
        Self {
            node,
            round,
            outbox: Vec::new(),
        }
    }

    /// The tile this IP is mapped to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current gossip round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queues `payload` for delivery to the IP on tile `to`.
    ///
    /// The sender does not need to know where `to` is or how to route to
    /// it — the gossip spread handles that.
    pub fn send(&mut self, to: NodeId, payload: Vec<u8>) {
        self.outbox.push((to, payload));
    }

    /// Drains the queued sends (engine-side).
    pub fn take_outbox(&mut self) -> Vec<(NodeId, Vec<u8>)> {
        std::mem::take(&mut self.outbox)
    }

    /// Number of sends queued so far this round.
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }
}

/// An application IP core mapped onto one tile.
///
/// Implementations are driven by the simulation engine:
///
/// 1. [`IpCore::on_start`] once before round 0;
/// 2. each round, [`IpCore::on_message`] for every payload delivered to
///    this tile (each logical message at most once), then
///    [`IpCore::on_round`];
/// 3. the engine may stop early once every IP reports
///    [`IpCore::is_done`].
///
/// # Examples
///
/// A producer that sends one greeting and a consumer that waits for it:
///
/// ```
/// use noc_fabric::{IpContext, IpCore, NodeId};
///
/// struct Producer { to: NodeId }
/// impl IpCore for Producer {
///     fn on_start(&mut self, ctx: &mut IpContext) {
///         ctx.send(self.to, b"hello".to_vec());
///     }
///     fn is_done(&self) -> bool { true }
/// }
///
/// struct Consumer { got: bool }
/// impl IpCore for Consumer {
///     fn on_message(&mut self, _ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
///         self.got = payload == b"hello";
///     }
///     fn is_done(&self) -> bool { self.got }
/// }
/// ```
pub trait IpCore {
    /// Called once, before the first round. Typical producers inject their
    /// initial messages here.
    fn on_start(&mut self, _ctx: &mut IpContext) {}

    /// Called for each logical message delivered to this tile (exactly
    /// once per message id, after CRC filtering and deduplication).
    fn on_message(&mut self, _ctx: &mut IpContext, _from: NodeId, _payload: &[u8]) {}

    /// Called once per round after all of this round's deliveries.
    fn on_round(&mut self, _ctx: &mut IpContext) {}

    /// True when this IP has finished its part of the application.
    /// IPs that never finish (e.g. sinks) may keep the default `false`;
    /// engines then rely on their round budget.
    fn is_done(&self) -> bool {
        false
    }

    /// Diagnostic name shown in traces.
    fn name(&self) -> &str {
        "ip"
    }
}

/// An IP that does nothing — the filler for unoccupied tiles, which still
/// participate in the gossip forwarding.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullIp;

impl IpCore for NullIp {
    fn is_done(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_sends() {
        let mut ctx = IpContext::new(NodeId(3), 7);
        assert_eq!(ctx.node(), NodeId(3));
        assert_eq!(ctx.round(), 7);
        ctx.send(NodeId(1), vec![1]);
        ctx.send(NodeId(2), vec![2, 2]);
        assert_eq!(ctx.pending_sends(), 2);
        let out = ctx.take_outbox();
        assert_eq!(out, vec![(NodeId(1), vec![1]), (NodeId(2), vec![2, 2])]);
        assert_eq!(ctx.pending_sends(), 0);
    }

    #[test]
    fn null_ip_is_always_done() {
        let ip = NullIp;
        assert!(ip.is_done());
        assert_eq!(ip.name(), "null");
    }

    #[test]
    fn default_trait_methods_are_callable() {
        struct Passive;
        impl IpCore for Passive {}
        let mut p = Passive;
        let mut ctx = IpContext::new(NodeId(0), 0);
        p.on_start(&mut ctx);
        p.on_message(&mut ctx, NodeId(1), &[1, 2]);
        p.on_round(&mut ctx);
        assert!(!p.is_done());
        assert_eq!(p.name(), "ip");
        assert_eq!(ctx.pending_sends(), 0);
    }

    #[test]
    fn trait_objects_work() {
        let ips: Vec<Box<dyn IpCore>> = vec![Box::new(NullIp), Box::new(NullIp)];
        assert!(ips.iter().all(|ip| ip.is_done()));
    }
}
