//! Figure 4-8..4-11 benches: the MP3 pipeline end to end plus its DSP
//! kernels (MDCT and the iterative rate loop).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_apps::mp3::{Mp3App, Mp3Params};
use noc_dsp::quantize::rate_control;
use noc_dsp::MdctFrame;
use std::hint::black_box;

fn bench_mp3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4-8..11 mp3");
    group.sample_size(10);

    group.bench_function("mp3 pipeline 6 frames 4x4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let params = Mp3Params {
                frames: 6,
                seed,
                ..Mp3Params::default()
            };
            black_box(Mp3App::new(params).run().frames_delivered)
        })
    });

    group.bench_function("mdct analyze 64-sample hop", |b| {
        let mut engine = MdctFrame::new(128);
        let hop: Vec<f64> = (0..64).map(|n| (n as f64 * 0.1).sin()).collect();
        b.iter(|| black_box(engine.analyze(black_box(&hop))))
    });

    group.bench_function("rate_control 64 coeffs 400 bits", |b| {
        let coeffs: Vec<f64> = (0..64).map(|n| (n as f64 * 0.29).sin() * 4.0).collect();
        b.iter(|| black_box(rate_control(black_box(&coeffs), 400).bits))
    });
    group.finish();
}

criterion_group!(benches, bench_mp3);
criterion_main!(benches);
