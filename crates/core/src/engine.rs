//! The round-synchronous stochastic communication engine.
//!
//! Executes the algorithm of Figure 3-4 over an arbitrary topology with
//! full fault injection. Each gossip round proceeds in the paper's order:
//!
//! 1. **Receive** — frames that were sent last round arrive; overflow
//!    drops are applied, the CRC check discards scrambled packets, and
//!    surviving messages are merged into the tile's deduplicating
//!    [`SendBuffer`]. Messages whose destination field equals the tile id
//!    are delivered to the local IP (exactly once per message id).
//! 2. **Compute** — the IP core runs (computation time is 0, as in the
//!    paper) and may emit new messages, which join the send buffer.
//! 3. **Age** — every buffered TTL is decremented; expired messages are
//!    garbage-collected.
//! 4. **Forward** — every remaining message is offered to every output
//!    link and transmitted independently with probability `p`; upsets
//!    scramble frames in flight, dead links/tiles swallow them, and tiles
//!    whose clock domain slipped deliver one round late.
//!
//! The engine is deterministic: `(topology, config, fault model, seed)`
//! exactly reproduce a run.

use noc_energy::{Bits, TechnologyLibrary};
use noc_fabric::{
    ClockDomain, Grid2d, IpContext, IpCore, LinkId, Message, MessageId, NodeId, NullIp, Topology,
    WireCodec,
};
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, FaultInjector, FaultModel, InjectionTally,
    InjectorSnapshot, OverflowMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::checkpoint::{
    fnv1a, BufferState, Checkpoint, CheckpointError, FrameState, MessageState, RecordState,
    ReportState,
};
use crate::config::StochasticConfig;
use crate::events::{DropSite, EventSink, NullSink, SimEvent};
use crate::frontier::{Inflight, TileSet};
use crate::metrics::{MessageRecord, SimulationReport};
use crate::obs::{span_end, span_start, EngineObs, EnginePhase};
use crate::seed::{derive_labeled_seed, derive_trial_seed};
use crate::send_buffer::{InsertOutcome, SendBuffer};
use crate::shard::{
    age_shard, file_shard, forward_shard_tape, forward_shard_uniform, plan_terminations,
    receive_shard, shard_ranges, split_chunks, AgeOut, FileOut, ForwardOut, ForwardTape, LinkTx,
    OverflowPlan, OverflowSpan, ReceiveCtx, ReceiveOut, ReceiveTape, ServeCmd, ServeSource,
    TilePlan, TxOutcome, UniformForwardCtx,
};

/// A frame in flight on a link.
///
/// The wire bytes are shared: fanning one transmission out to `d` links
/// clones the `Arc`, not the frame. A scrambled copy is rewritten
/// copy-on-write by [`FaultInjector::scramble_shared`], so corruption on
/// one link never leaks into sibling copies. The arrival link (`None`
/// for local loopback) rides along purely for event attribution.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) bytes: Arc<[u8]>,
    pub(crate) scrambled: bool,
    pub(crate) via: Option<LinkId>,
}

/// One remembered encoding in the per-round [`FrameMemo`].
///
/// The key `(MessageId, ttl)` is not quite unique: an *undetected* upset
/// can put a byte-different copy of the same id into circulation, and the
/// two copies must keep encoding differently. Each entry therefore carries
/// the header fields and payload it was encoded from and is only reused on
/// an exact match.
struct MemoEntry {
    source: NodeId,
    destination: NodeId,
    payload: Arc<[u8]>,
    frame: Arc<[u8]>,
}

impl MemoEntry {
    fn matches(&self, message: &Message) -> bool {
        self.source == message.source
            && self.destination == message.destination
            && (Arc::ptr_eq(&self.payload, &message.payload) || self.payload == message.payload)
    }
}

/// Per-round memo of encoded frames.
///
/// During the forward phase every tile holding a message at the same TTL
/// produces the identical wire frame, so the CRC/LFSR encode work is done
/// once per `(message, ttl)` per round instead of once per tile. Cleared
/// at the start of each forward phase; TTLs decrement every round, so
/// entries can never be stale across rounds. Keyed by `BTreeMap` so no
/// hash-iteration order can ever leak into observable state.
#[derive(Default)]
pub(crate) struct FrameMemo {
    map: BTreeMap<(MessageId, u8), Vec<MemoEntry>>,
    scratch: Vec<u8>,
}

impl FrameMemo {
    pub(crate) fn begin_round(&mut self) {
        self.map.clear();
    }

    /// Returns the shared wire frame for `message`, encoding it at most
    /// once per round.
    pub(crate) fn frame_for(&mut self, codec: &WireCodec, message: &Message) -> Arc<[u8]> {
        let key = (message.id, message.ttl);
        if let Some(entries) = self.map.get(&key) {
            if let Some(entry) = entries.iter().find(|e| e.matches(message)) {
                return Arc::clone(&entry.frame);
            }
        }
        self.scratch.clear();
        codec.encode_into(message, &mut self.scratch);
        let frame: Arc<[u8]> = Arc::from(&self.scratch[..]);
        self.map.entry(key).or_default().push(MemoEntry {
            source: message.source,
            destination: message.destination,
            payload: Arc::clone(&message.payload),
            frame: Arc::clone(&frame),
        });
        frame
    }
}

/// Per-round statistics returned by [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// The round that was just executed.
    pub round: u64,
    /// Frames transmitted onto links during this round.
    pub transmissions: u64,
    /// First-time deliveries to destination IPs during this round.
    pub deliveries: u64,
    /// Live messages across all send buffers after aging.
    pub live_messages: u64,
}

/// Builder for [`Simulation`].
///
/// # Examples
///
/// ```
/// use noc_fabric::Grid2d;
/// use noc_faults::FaultModel;
/// use stochastic_noc::SimulationBuilder;
///
/// let sim = SimulationBuilder::new(Grid2d::new(4, 4))
///     .forward_probability(0.75)
///     .ttl(10)
///     .max_rounds(200)
///     .fault_model(FaultModel::none())
///     .seed(1234)
///     .build();
/// assert_eq!(sim.node_count(), 16);
/// ```
pub struct SimulationBuilder {
    topology: Topology,
    config: StochasticConfig,
    fault_model: FaultModel,
    crash_schedule: CrashSchedule,
    adversary: AdversarialScenario,
    seed: u64,
    tech: TechnologyLibrary,
    codec: WireCodec,
    ips: Vec<Option<Box<dyn IpCore>>>,
    egress_limits: Vec<Option<usize>>,
    forward_overrides: Vec<Option<f64>>,
    shards: usize,
    obs: Option<EngineObs>,
}

impl SimulationBuilder {
    /// Starts building a simulation over `topology`.
    pub fn new(topology: impl Into<Topology>) -> Self {
        let topology = topology.into();
        let n = topology.node_count();
        Self {
            topology,
            config: StochasticConfig::default(),
            fault_model: FaultModel::none(),
            crash_schedule: CrashSchedule::new(),
            adversary: AdversarialScenario::benign(),
            seed: 0,
            tech: TechnologyLibrary::NOC_LINK_0_25UM,
            codec: WireCodec::default(),
            ips: (0..n).map(|_| None).collect(),
            egress_limits: vec![None; n],
            forward_overrides: vec![None; n],
            shards: 1,
            obs: None,
        }
    }

    /// Sets how many tile-partitioned shards each round executes on
    /// (scoped worker threads inside a single trial). `0` means auto
    /// (one shard per available core); the count is clamped to the tile
    /// count. Defaults to 1 — the sequential engine.
    ///
    /// Reports, digests and event streams are byte-identical for every
    /// shard count: all RNG draws stay on the main thread in sequential
    /// tile order, and cross-shard merges replay that order.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the full protocol configuration.
    pub fn config(mut self, config: StochasticConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the forwarding probability `p`.
    pub fn forward_probability(mut self, p: f64) -> Self {
        self.config.forward_probability = p;
        self
    }

    /// Sets the message TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.config.default_ttl = ttl;
        self
    }

    /// Sets the simulation round budget.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Sets the fault model (defaults to fault-free).
    pub fn fault_model(mut self, model: FaultModel) -> Self {
        self.fault_model = model;
        self
    }

    /// Sets explicit crash events.
    pub fn crash_schedule(mut self, schedule: CrashSchedule) -> Self {
        self.crash_schedule = schedule;
        self
    }

    /// Installs an adversarial scenario: partitions, permanent death,
    /// link chaos and Byzantine tiles.
    ///
    /// The default is [`AdversarialScenario::benign`], which changes
    /// nothing — in particular it consumes no RNG draws, so every run
    /// and digest of a benign build is byte-identical to a build that
    /// never called this method. Active mechanisms draw from dedicated
    /// per-link/per-tile streams derived from the base seed, leaving
    /// the main fault stream untouched.
    pub fn adversary(mut self, scenario: AdversarialScenario) -> Self {
        self.adversary = scenario;
        self
    }

    /// Seeds the deterministic fault/forwarding randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the technology point used for energy accounting.
    pub fn technology(mut self, tech: TechnologyLibrary) -> Self {
        self.tech = tech;
        self
    }

    /// Sets the wire codec (CRC parameter choice).
    pub fn wire_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Limits how many distinct messages a tile may forward per round.
    ///
    /// Models serialized shared media: a "bus node" with an egress limit
    /// of 1 transmits one message per round, so traffic funnelled through
    /// it queues — the contention penalty of bus-connected architectures
    /// (Chapter 5).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology or `limit` is zero.
    pub fn egress_limit(mut self, node: NodeId, limit: usize) -> Self {
        assert!(
            node.index() < self.topology.node_count(),
            "{node} outside topology"
        );
        assert!(limit > 0, "egress limit must be at least 1");
        self.egress_limits[node.index()] = Some(limit);
        self
    }

    /// Overrides the forwarding probability for one tile.
    ///
    /// Supports heterogeneous fabrics (Chapter 5's on-chip diversity):
    /// e.g. a bus bridge forwards deterministically (`p = 1`, every bus
    /// transaction is heard by all listeners) while ordinary tiles gossip
    /// at the global `p`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology or `p` is not a
    /// probability.
    pub fn forward_probability_at(mut self, node: NodeId, p: f64) -> Self {
        assert!(
            node.index() < self.topology.node_count(),
            "{node} outside topology"
        );
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.forward_overrides[node.index()] = Some(p);
        self
    }

    /// Maps an IP core onto a tile. Unmapped tiles get [`NullIp`] and
    /// still participate in gossip forwarding.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn with_ip(mut self, node: NodeId, ip: Box<dyn IpCore>) -> Self {
        assert!(
            node.index() < self.topology.node_count(),
            "{node} outside topology"
        );
        self.ips[node.index()] = Some(ip);
        self
    }

    /// Installs the wall-clock observability plane: the round loop will
    /// time its phases (tape pre-pass, shard fan-out, merge, quiescence
    /// detection) into `obs`'s `engine_phase_seconds` histograms and
    /// count rounds into `engine_rounds_total`.
    ///
    /// The two-plane contract (DESIGN.md §13) holds by construction:
    /// the engine only ever *writes* through these handles, so reports,
    /// event streams, and golden digests are byte-identical with or
    /// without the plane. Without it, each phase costs a single
    /// `Option` test per round.
    pub fn obs(mut self, obs: EngineObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// [`SimulationBuilder::build`] with the wall-clock plane installed
    /// — sugar for `.obs(obs).build()`.
    pub fn build_with_obs(self, obs: EngineObs) -> Simulation {
        self.obs(obs).build()
    }

    /// Finalizes the simulation with the default [`NullSink`] — the
    /// zero-overhead engine; every event emission point monomorphizes
    /// away.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration or fault model is invalid
    /// (construct them through their checked builders to avoid this).
    pub fn build(self) -> Simulation {
        self.build_with_sink(NullSink)
    }

    /// Finalizes the simulation with an installed [`EventSink`].
    ///
    /// The sink observes the packet lifecycle ([`SimEvent`]) but cannot
    /// influence it: the run — RNG streams, report, digests — is
    /// byte-identical whatever sink is installed.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration or fault model is invalid
    /// (construct them through their checked builders to avoid this).
    pub fn build_with_sink<S: EventSink>(self, sink: S) -> Simulation<S> {
        self.config
            .validate()
            // noc-lint: allow(hot-path-panic, reason = "builder-time validation; runs once before the round loop, never per step")
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        self.adversary
            .validate()
            // noc-lint: allow(hot-path-panic, reason = "builder-time validation; runs once before the round loop, never per step")
            .unwrap_or_else(|e| panic!("invalid adversarial scenario: {e}"));
        let mut injector = FaultInjector::new(self.fault_model, self.seed);
        let n = self.topology.node_count();
        let m = self.topology.link_count();
        let tiles_alive = injector.sample_alive_tiles(n);
        let links_alive = injector.sample_alive_links(m);
        // Permanent adversarial death folds into the crash schedule:
        // identical semantics (dead from round r, never heals), zero new
        // hot-path state.
        let mut crash_schedule = self.crash_schedule;
        for (tile, at) in self.adversary.permanent.tile_events() {
            crash_schedule.kill_tile(tile, at);
        }
        for (link, at) in self.adversary.permanent.link_events() {
            crash_schedule.kill_link(link, at);
        }
        // Adversarial randomness never touches the injector's stream:
        // chaos draws come from one dedicated stream per link, Byzantine
        // activations from one per compromised tile, all derived from the
        // base seed. Inactive mechanisms allocate no streams at all.
        let chaos_streams: Vec<StdRng> = if self.adversary.chaos.is_active() {
            let base = derive_labeled_seed(self.seed, "adversary-link");
            (0..m)
                .map(|link| StdRng::seed_from_u64(derive_trial_seed(base, link as u64)))
                .collect()
        } else {
            Vec::new()
        };
        let byz_streams: BTreeMap<usize, StdRng> = if self.adversary.byzantine.is_active() {
            let base = derive_labeled_seed(self.seed, "adversary-tile");
            self.adversary
                .byzantine
                .tiles
                .iter()
                .map(|&tile| {
                    (
                        tile,
                        StdRng::seed_from_u64(derive_trial_seed(base, tile as u64)),
                    )
                })
                .collect()
        } else {
            BTreeMap::new()
        };
        // Which tiles carry a *custom* IP: `NullIp`'s hooks are no-ops
        // and it reports done, so the compute phase (and delivery
        // staging) can skip every unmapped tile without observable
        // difference.
        let ip_is_custom: Vec<bool> = self.ips.iter().map(Option::is_some).collect();
        let custom_ip_tiles: Vec<usize> = ip_is_custom
            .iter()
            .enumerate()
            .filter_map(|(tile, &custom)| custom.then_some(tile))
            .collect();
        let ips: Vec<Box<dyn IpCore>> = self
            .ips
            .into_iter()
            .map(|ip| ip.unwrap_or_else(|| Box::new(NullIp)))
            .collect();
        let shards = match self.shards {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            s => s,
        }
        .clamp(1, n.max(1));
        // The forward phase consumes no RNG at all when every effective
        // forwarding probability is exactly 0 or 1 and no upset, skew,
        // chaos or Byzantine draw is configured. Sharded rounds then
        // skip the serial forward pre-pass: workers recompute the
        // deterministic outcomes locally (the mega-grid flooding fast
        // path).
        let deterministic = |p: f64| p <= 0.0 || p >= 1.0;
        let uniform_forward = {
            let model = injector.model();
            model.p_upset == 0.0
                && model.sigma_synch == 0.0
                && !self.adversary.chaos.is_active()
                && !self.adversary.byzantine.is_active()
                && self.egress_limits.iter().all(Option::is_none)
                && deterministic(self.config.forward_probability)
                && self
                    .forward_overrides
                    .iter()
                    .all(|o| o.is_none_or(deterministic))
        };
        Simulation {
            sink,
            obs: self.obs,
            egress_next: vec![None; self.egress_limits.len()],
            egress_limits: self.egress_limits,
            forward_overrides: self.forward_overrides,
            terminated: BTreeSet::new(),
            report: SimulationReport::new(self.tech),
            buffers: (0..n).map(|_| SendBuffer::new()).collect(),
            clocks: vec![ClockDomain::new(); n],
            inbox_next: vec![Vec::new(); n],
            inbox_later: vec![Vec::new(); n],
            inbox_scratch: vec![Vec::new(); n],
            delivery_scratch: vec![Vec::new(); n],
            frame_memo: FrameMemo::default(),
            informed: BTreeMap::new(),
            tiles_alive,
            links_alive,
            topology: self.topology,
            config: self.config,
            crash_schedule,
            adversary: self.adversary,
            chaos_streams,
            byz_streams,
            byz_last_frame: vec![None; n],
            injector,
            codec: self.codec,
            ips,
            ip_is_custom,
            custom_ip_tiles,
            shards,
            uniform_forward,
            inflight: Inflight::new(n),
            buffer_frontier: TileSet::new(n),
            live_total: 0,
            pending_purge: Vec::new(),
            emptied_scratch: Vec::new(),
            receive_tape: ReceiveTape::default(),
            forward_tape: ForwardTape::default(),
            seed: self.seed,
            round: 0,
            next_message_id: 0,
            started: false,
            completed: false,
        }
    }

    /// Builds the simulation and fast-forwards it to `checkpoint` —
    /// the resumed run replays the remaining rounds byte-identically
    /// (reports, digests, event streams) to the run the checkpoint was
    /// taken from.
    ///
    /// The builder must be configured identically to the one the
    /// checkpointed simulation was built with: same topology, config,
    /// fault model, crash schedule, adversary, seed, codec, technology,
    /// egress limits and forwarding overrides. The shard count (and the
    /// event sink, for [`SimulationBuilder::resume_with_sink`]) may
    /// differ freely — neither is observable. Custom IP cores are *not*
    /// part of the checkpoint: callers that map stateful IPs must
    /// re-map equivalently-stateful ones themselves (the golden
    /// workloads all inject via [`Simulation::inject`] and need
    /// nothing).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when the checkpoint was
    /// taken under a different configuration, or when its internal
    /// lengths do not fit this topology.
    pub fn resume(self, checkpoint: &Checkpoint) -> Result<Simulation, CheckpointError> {
        self.resume_with_sink(checkpoint, NullSink)
    }

    /// [`SimulationBuilder::resume`] with an installed [`EventSink`]:
    /// the resumed run emits exactly the events the original run would
    /// have emitted from the checkpoint round onward.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] as
    /// [`SimulationBuilder::resume`] does.
    pub fn resume_with_sink<S: EventSink>(
        self,
        checkpoint: &Checkpoint,
        sink: S,
    ) -> Result<Simulation<S>, CheckpointError> {
        // Build normally first: this consumes the builder's own RNG
        // draws (alive sampling, stream derivation) exactly as the
        // original build did, then every sampled or drawn value is
        // overwritten from the checkpoint.
        let mut sim = self.build_with_sink(sink);
        sim.restore_from(checkpoint)?;
        Ok(sim)
    }
}

/// A stochastic-communication simulation in progress.
///
/// Drive it with [`Simulation::run`] (to completion or budget) or
/// round-by-round with [`Simulation::step`].
///
/// The engine is generic over its [`EventSink`]: the default
/// [`NullSink`] build pays nothing for instrumentation, while
/// [`SimulationBuilder::build_with_sink`] installs an observer of the
/// full packet lifecycle without changing a single observable (enforced
/// by the golden-report digests).
pub struct Simulation<S: EventSink = NullSink> {
    // noc-lint: allow(checkpoint-coverage, reason = "observer handle, not simulation state: a resumed run re-installs its own sink")
    sink: S,
    /// Wall-clock plane handles; `None` (the default) records nothing.
    // noc-lint: allow(checkpoint-coverage, reason = "wall-clock observability plane; write-only and proven digest-neutral, never resumed")
    obs: Option<EngineObs>,
    topology: Topology,
    config: StochasticConfig,
    crash_schedule: CrashSchedule,
    adversary: AdversarialScenario,
    /// One chaos RNG stream per link; empty when chaos is inactive, so
    /// benign builds index nothing and draw nothing.
    chaos_streams: Vec<StdRng>,
    /// One activation/forgery RNG stream per compromised tile.
    byz_streams: BTreeMap<usize, StdRng>,
    /// The frame each Byzantine tile most recently forwarded
    /// legitimately — the replay attack's ammunition.
    byz_last_frame: Vec<Option<(MessageId, Arc<[u8]>)>>,
    injector: FaultInjector,
    codec: WireCodec,
    tiles_alive: Vec<bool>,
    links_alive: Vec<bool>,
    buffers: Vec<SendBuffer>,
    clocks: Vec<ClockDomain>,
    inbox_next: Vec<Vec<Frame>>,
    inbox_later: Vec<Vec<Frame>>,
    /// Recycled per-round arrival storage: after the receive phase drains
    /// a round's frames, the emptied vectors rotate back in as the next
    /// `inbox_later`, so steady-state rounds allocate no inbox memory.
    // noc-lint: allow(checkpoint-coverage, reason = "recycled empty arena; drained before any checkpoint boundary, rebuilt empty on restore")
    inbox_scratch: Vec<Vec<Frame>>,
    /// Persistent per-tile `(from, payload)` delivery staging between the
    /// receive and compute phases.
    // noc-lint: allow(checkpoint-coverage, reason = "intra-round staging, always empty at the round boundary where checkpoints are taken")
    delivery_scratch: Vec<Vec<(NodeId, Arc<[u8]>)>>,
    // noc-lint: allow(checkpoint-coverage, reason = "per-round CRC memo keyed by frame identity; repopulated from scratch each round")
    frame_memo: FrameMemo,
    /// Tiles whose send buffer has seen each message id — maintained at
    /// first-sight so `informed_count` is cheap instead of an O(n) scan.
    /// Ordered so the purge loop and any future iteration are seeded-run
    /// deterministic.
    informed: BTreeMap<MessageId, usize>,
    // noc-lint: allow(checkpoint-coverage, reason = "user-supplied trait objects are not serializable; resume re-maps IP cores via the builder, enforced by the config digest")
    ips: Vec<Box<dyn IpCore>>,
    egress_limits: Vec<Option<usize>>,
    /// Round-robin egress resume point per tile: the *id* of the next
    /// message owed service, so buffer shrinkage between rounds (TTL
    /// expiry, termination purges) cannot skip or double-serve entries.
    egress_next: Vec<Option<MessageId>>,
    forward_overrides: Vec<Option<f64>>,
    terminated: BTreeSet<MessageId>,
    report: SimulationReport,
    /// `ips[tile]` is a user-mapped core (not the [`NullIp`] filler).
    // noc-lint: allow(checkpoint-coverage, reason = "derived from ips at build/resume time")
    ip_is_custom: Vec<bool>,
    /// Ascending tile indices with a custom IP — the compute phase's
    /// worklist.
    // noc-lint: allow(checkpoint-coverage, reason = "derived from ips at build/resume time")
    custom_ip_tiles: Vec<usize>,
    /// Tile-partitioned shard count for the round loop (1 = sequential).
    // noc-lint: allow(checkpoint-coverage, reason = "execution-plan knob, deliberately outside the digest: any shard count replays the same tapes byte-identically")
    shards: usize,
    /// True when the forward phase can never draw RNG (see
    /// [`SimulationBuilder::shards`] resolution in `build_with_sink`).
    // noc-lint: allow(checkpoint-coverage, reason = "derived from config and shard plan in build_with_sink; recomputed on resume")
    uniform_forward: bool,
    /// Frame counts and non-empty tile sets of the arrival arenas,
    /// rotated in lockstep with them.
    // noc-lint: allow(checkpoint-coverage, reason = "derived frontier state: restore_from rebuilds it from the deserialized inbox arenas")
    inflight: Inflight,
    /// Tiles whose send buffer is non-empty — the age/forward frontier.
    // noc-lint: allow(checkpoint-coverage, reason = "derived frontier state: restore_from rebuilds it from the deserialized send buffers")
    buffer_frontier: TileSet,
    /// Total live messages across all send buffers.
    // noc-lint: allow(checkpoint-coverage, reason = "derived tally: restore_from recounts it from the deserialized send buffers")
    live_total: u64,
    /// Message ids whose spread terminated *this* round (purged from
    /// frontier buffers in the age phase, then cleared). Earlier
    /// terminations cannot re-enter any buffer: the receive phase
    /// suppresses them at insertion.
    // noc-lint: allow(checkpoint-coverage, reason = "cleared within every step; empty at each round boundary a checkpoint can observe")
    pending_purge: Vec<MessageId>,
    /// Recycled scratch for tiles whose buffer drained during aging.
    // noc-lint: allow(checkpoint-coverage, reason = "recycled scratch, logically empty between rounds")
    emptied_scratch: Vec<u32>,
    /// Recycled pre-drawn overflow verdicts (sharded rounds).
    // noc-lint: allow(checkpoint-coverage, reason = "pre-drawn tape storage, fully re-drawn from the checkpointed RNG streams at the start of each round")
    receive_tape: ReceiveTape,
    /// Recycled pre-drawn forward outcomes (sharded rounds).
    // noc-lint: allow(checkpoint-coverage, reason = "pre-drawn tape storage, fully re-drawn from the checkpointed RNG streams at the start of each round")
    forward_tape: ForwardTape,
    /// The base seed the simulation was built with — part of the
    /// checkpoint config digest (two runs with different seeds are
    /// never resume-compatible).
    seed: u64,
    round: u64,
    next_message_id: u64,
    started: bool,
    completed: bool,
}

impl<S: EventSink> Simulation<S> {
    /// Number of tiles in the network.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The protocol configuration in force.
    pub fn config(&self) -> &StochasticConfig {
        &self.config
    }

    /// The current round (number of rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The resolved shard count this simulation steps with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// True once every IP has reported done.
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// Is this tile currently alive?
    pub fn tile_alive(&self, node: NodeId) -> bool {
        self.tiles_alive[node.index()] && !self.crash_schedule.tile_dead(node.index(), self.round)
    }

    /// Number of tiles whose send buffer has seen message `id` — the
    /// "informed population" of the epidemic analogy. O(1): experiment
    /// harnesses poll this every round.
    pub fn informed_count(&self, id: MessageId) -> usize {
        self.informed.get(&id).copied().unwrap_or(0)
    }

    /// Has this tile's send buffer ever seen message `id`?
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn node_informed(&self, node: NodeId, id: MessageId) -> bool {
        self.buffers[node.index()].has_seen(id)
    }

    /// Number of live messages currently buffered at a tile.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn buffer_len(&self, node: NodeId) -> usize {
        self.buffers[node.index()].len()
    }

    /// The running report (final once the run stops).
    pub fn report(&self) -> &SimulationReport {
        &self.report
    }

    /// The installed event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the installed event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the simulation, returning the installed sink by move.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Consumes the simulation, returning the report by move.
    pub fn into_report(mut self) -> SimulationReport {
        self.finalize_report();
        self.report
    }

    /// The injection-side fault ledger: how many upsets, overflow drops
    /// and skew draws the fault injector has actually fired so far.
    /// Event attribution is bounded by these totals (a fired upset can
    /// still be crash- or overflow-dropped before the CRC sees it).
    pub fn injection_tally(&self) -> noc_faults::InjectionTally {
        self.injector.tally()
    }

    /// Runs to completion/budget, then returns both the report and the
    /// installed sink by move — the one-call form for trials that want
    /// the attributed event view next to the global totals.
    pub fn run_to_report_and_sink(mut self) -> (SimulationReport, S) {
        while !self.completed && self.round < self.config.max_rounds {
            self.step();
        }
        self.finalize_report();
        (self.report, self.sink)
    }

    /// Folds the per-component tallies (clock slips, TTL expirations) into
    /// the report — the single finalization point shared by every way of
    /// extracting a report.
    fn finalize_report(&mut self) -> &SimulationReport {
        self.report.clock_slips = self.clocks.iter().map(ClockDomain::slips).sum();
        self.report.ttl_expirations = self.buffers.iter().map(SendBuffer::expired_count).sum();
        &self.report
    }

    /// Injects a message from outside the IP layer (protocol-level use).
    ///
    /// The message enters `source`'s send buffer at the current round. If
    /// the source tile is dead, the message is recorded but lost. A
    /// message addressed to its own source is delivered immediately.
    pub fn inject(&mut self, source: NodeId, destination: NodeId, payload: Vec<u8>) -> MessageId {
        let id = MessageId(self.next_message_id);
        self.next_message_id += 1;
        let frame_bits = self.codec.frame_bits(payload.len());
        self.report.record_injection(MessageRecord {
            id,
            source,
            destination,
            injected_round: self.round,
            delivered_round: None,
            frame_bits,
        });
        let message = Message::new(id, source, destination, self.config.default_ttl, payload);
        if !self.tile_alive(source) {
            return id;
        }
        if destination == source {
            if self.report.record_delivery(id, self.round) {
                self.sink.emit(SimEvent::Delivery {
                    round: self.round,
                    tile: source,
                    message: id,
                    source,
                });
            }
            // Local loopback skips the network; the IP sees it next round.
            let frame: Arc<[u8]> = self.codec.encode(&message).into();
            let inbox = &mut self.inbox_next[source.index()];
            if inbox.is_empty() {
                self.inflight.next.tiles.insert(source.index());
            }
            self.inflight.next.frames += 1;
            inbox.push(Frame {
                bytes: frame,
                scrambled: false,
                via: None,
            });
            return id;
        }
        if self.buffers[source.index()].insert(message) {
            self.live_total += 1;
            self.buffer_frontier.insert(source.index());
        }
        *self.informed.entry(id).or_insert(0) += 1;
        id
    }

    /// Runs until every IP is done or the round budget is exhausted,
    /// returning the final report.
    pub fn run(&mut self) -> SimulationReport {
        while !self.completed && self.round < self.config.max_rounds {
            self.step();
        }
        self.finalize_report().clone()
    }

    /// Like [`Simulation::run`], but consumes the simulation so the report
    /// is moved out instead of cloned — the right call for fire-and-forget
    /// trials that never inspect the simulation afterwards.
    pub fn run_to_report(mut self) -> SimulationReport {
        while !self.completed && self.round < self.config.max_rounds {
            self.step();
        }
        self.into_report()
    }

    /// Runs to completion/budget while collecting every round's
    /// [`RoundStats`] — the traffic-over-time view (power profile via
    /// Equation 3: each round's transmissions × frame bits × `E_bit`).
    pub fn run_with_history(&mut self) -> (SimulationReport, Vec<RoundStats>) {
        let mut history = Vec::new();
        while !self.completed && self.round < self.config.max_rounds {
            history.push(self.step());
        }
        (self.finalize_report().clone(), history)
    }

    /// Runs until the engine quiesces — live frontier empty, no frames
    /// left in the arrival delay line, every IP done — then returns the
    /// final report. Unlike [`Simulation::run`] the configured
    /// `max_rounds` budget is ignored: the loop steps for exactly as
    /// long as work remains.
    ///
    /// With the default [`NullIp`] on every tile the TTL guarantees the
    /// network drains, so the loop always terminates. A custom IP that
    /// never reports done (or emits messages forever) makes this loop
    /// run forever — that contract is the caller's to uphold.
    pub fn run_until_idle(&mut self) -> SimulationReport {
        while !self.completed {
            self.step();
        }
        self.finalize_report().clone()
    }

    /// Digest of the simulation's defining tuple: topology shape, seed,
    /// protocol config, fault model, (folded) crash schedule, adversary,
    /// codec, technology point, egress limits and forwarding overrides.
    /// Everything that determines the draw sequence and the observables
    /// — and nothing that does not: the shard count, event sink and
    /// observability plane are excluded, so a checkpoint taken at one
    /// shard count resumes at any other.
    fn config_digest_value(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(self.topology.node_count() as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.topology.link_count() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        let shape = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.config,
            self.injector.model(),
            self.crash_schedule,
            self.adversary,
            self.codec,
            self.report.technology(),
            self.egress_limits,
            self.forward_overrides,
        );
        bytes.extend_from_slice(shape.as_bytes());
        fnv1a(&bytes)
    }

    /// Captures a serializable snapshot of the full engine state at the
    /// current round boundary.
    ///
    /// Valid whenever the caller holds `&self` outside
    /// [`Simulation::step`]. The snapshot records every input to future
    /// draws and deliveries — RNG stream positions (fault stream with
    /// its Box–Muller spare, per-link chaos streams, per-tile Byzantine
    /// streams), send buffers and egress cursors, clock-domain phases,
    /// the arrival delay line, adversary replay ammunition, and the
    /// report-so-far — so a [`SimulationBuilder::resume`]d simulation
    /// replays the remaining rounds byte-identically. Custom IP-core
    /// state is *not* captured (see [`Checkpoint`]).
    pub fn checkpoint(&self) -> Checkpoint {
        let snap = self.injector.snapshot();
        let arena = |arena: &[Vec<Frame>]| -> Vec<Vec<FrameState>> {
            arena
                .iter()
                .map(|frames| {
                    frames
                        .iter()
                        .map(|f| FrameState {
                            bytes: f.bytes.to_vec(),
                            scrambled: f.scrambled,
                            via: f.via.map(|l| l.index() as u64),
                        })
                        .collect()
                })
                .collect()
        };
        Checkpoint {
            config_digest: self.config_digest_value(),
            round: self.round,
            next_message_id: self.next_message_id,
            started: self.started,
            completed: self.completed,
            injector_rng: snap.rng_state,
            injector_spare: snap.gauss_spare,
            tally_upsets: snap.tally.upsets,
            tally_overflow_drops: snap.tally.overflow_drops,
            tally_skew_draws: snap.tally.skew_draws,
            chaos_states: self.chaos_streams.iter().map(StdRng::state).collect(),
            byz_states: self
                .byz_streams
                .iter()
                .map(|(&tile, rng)| (tile as u64, rng.state()))
                .collect(),
            byz_last_frames: self
                .byz_last_frame
                .iter()
                .enumerate()
                .filter_map(|(tile, slot)| {
                    slot.as_ref()
                        .map(|(id, frame)| (tile as u64, id.0, frame.to_vec()))
                })
                .collect(),
            tiles_alive: self.tiles_alive.clone(),
            links_alive: self.links_alive.clone(),
            clocks: self.clocks.iter().map(|c| (c.skew(), c.slips())).collect(),
            egress_next: self.egress_next.iter().map(|o| o.map(|id| id.0)).collect(),
            buffers: self
                .buffers
                .iter()
                .map(|buf| {
                    let (messages, seen, expired) = buf.snapshot();
                    BufferState {
                        messages: messages
                            .into_iter()
                            .map(|m| MessageState {
                                id: m.id.0,
                                source: m.source.index() as u64,
                                destination: m.destination.index() as u64,
                                ttl: m.ttl,
                                payload: m.payload.to_vec(),
                            })
                            .collect(),
                        seen: seen.into_iter().map(|id| id.0).collect(),
                        expired,
                    }
                })
                .collect(),
            inbox_next: arena(&self.inbox_next),
            inbox_later: arena(&self.inbox_later),
            informed: self
                .informed
                .iter()
                .map(|(&id, &count)| (id.0, count as u64))
                .collect(),
            terminated: self.terminated.iter().map(|id| id.0).collect(),
            report: ReportState {
                rounds_executed: self.report.rounds_executed,
                completed: self.report.completed,
                packets_sent: self.report.packets_sent,
                bits_sent: self.report.bits_sent.bits(),
                upsets_detected: self.report.upsets_detected,
                upsets_undetected: self.report.upsets_undetected,
                overflow_drops: self.report.overflow_drops,
                crash_drops: self.report.crash_drops,
                clock_slips: self.report.clock_slips,
                ttl_expirations: self.report.ttl_expirations,
                partition_drops: self.report.partition_drops,
                byzantine_forges: self.report.byzantine_forges,
                byzantine_replays: self.report.byzantine_replays,
                adversarial_delays: self.report.adversarial_delays,
                adversarial_reorders: self.report.adversarial_reorders,
                quiescent_rounds: self.report.quiescent_rounds,
                records: self
                    .report
                    .records()
                    .map(|rec| RecordState {
                        id: rec.id.0,
                        source: rec.source.index() as u64,
                        destination: rec.destination.index() as u64,
                        injected_round: rec.injected_round,
                        delivered_round: rec.delivered_round,
                        frame_bits: rec.frame_bits.bits(),
                    })
                    .collect(),
            },
        }
    }

    /// Overwrites this (freshly built) simulation's state with a
    /// checkpoint's, rebuilding the derived frontier bookkeeping
    /// (`Inflight` counters, buffer frontier, live total) exactly from
    /// the restored arenas and buffers. Only called from
    /// [`SimulationBuilder::resume_with_sink`] on a simulation that has
    /// executed zero rounds, so every scratch structure is empty.
    fn restore_from(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        if ck.config_digest != self.config_digest_value() {
            return Err(CheckpointError::Mismatch(
                "configuration digest differs (topology, config, fault model, \
                 crash schedule, adversary, seed, codec, technology, egress \
                 limits or forwarding overrides changed)",
            ));
        }
        let n = self.topology.node_count();
        let m = self.topology.link_count();
        if ck.tiles_alive.len() != n {
            return Err(CheckpointError::Mismatch("tile liveness length"));
        }
        if ck.links_alive.len() != m {
            return Err(CheckpointError::Mismatch("link liveness length"));
        }
        if ck.clocks.len() != n
            || ck.egress_next.len() != n
            || ck.buffers.len() != n
            || ck.inbox_next.len() != n
            || ck.inbox_later.len() != n
        {
            return Err(CheckpointError::Mismatch("per-tile state length"));
        }
        if ck.chaos_states.len() != self.chaos_streams.len() {
            return Err(CheckpointError::Mismatch("chaos stream count"));
        }
        if ck.byz_states.len() != self.byz_streams.len()
            || !ck
                .byz_states
                .iter()
                .all(|&(tile, _)| self.byz_streams.contains_key(&(tile as usize)))
        {
            return Err(CheckpointError::Mismatch("byzantine tile set"));
        }
        if ck
            .byz_last_frames
            .iter()
            .any(|&(tile, _, _)| tile as usize >= n)
        {
            return Err(CheckpointError::Mismatch("byzantine replay tile index"));
        }

        self.round = ck.round;
        self.next_message_id = ck.next_message_id;
        self.started = ck.started;
        self.completed = ck.completed;
        self.injector.restore(&InjectorSnapshot {
            rng_state: ck.injector_rng,
            gauss_spare: ck.injector_spare,
            tally: InjectionTally {
                upsets: ck.tally_upsets,
                overflow_drops: ck.tally_overflow_drops,
                skew_draws: ck.tally_skew_draws,
            },
        });
        for (stream, &state) in self.chaos_streams.iter_mut().zip(&ck.chaos_states) {
            *stream = StdRng::from_state(state);
        }
        for &(tile, state) in &ck.byz_states {
            if let Some(stream) = self.byz_streams.get_mut(&(tile as usize)) {
                *stream = StdRng::from_state(state);
            }
        }
        self.byz_last_frame = vec![None; n];
        for (tile, id, frame) in &ck.byz_last_frames {
            self.byz_last_frame[*tile as usize] =
                Some((MessageId(*id), Arc::from(frame.as_slice())));
        }
        self.tiles_alive = ck.tiles_alive.clone();
        self.links_alive = ck.links_alive.clone();
        self.clocks = ck
            .clocks
            .iter()
            .map(|&(skew, slips)| ClockDomain::from_parts(skew, slips))
            .collect();
        self.egress_next = ck.egress_next.iter().map(|o| o.map(MessageId)).collect();
        self.buffers = ck
            .buffers
            .iter()
            .map(|buf| {
                SendBuffer::from_parts(
                    buf.messages
                        .iter()
                        .map(|msg| {
                            Message::new(
                                MessageId(msg.id),
                                NodeId(msg.source as usize),
                                NodeId(msg.destination as usize),
                                msg.ttl,
                                msg.payload.clone(),
                            )
                        })
                        .collect(),
                    buf.seen.iter().map(|&id| MessageId(id)).collect(),
                    buf.expired,
                )
            })
            .collect();
        let arena = |arena: &[Vec<FrameState>]| -> Vec<Vec<Frame>> {
            arena
                .iter()
                .map(|frames| {
                    frames
                        .iter()
                        .map(|f| Frame {
                            bytes: Arc::from(f.bytes.as_slice()),
                            scrambled: f.scrambled,
                            via: f.via.map(|l| LinkId(l as usize)),
                        })
                        .collect()
                })
                .collect()
        };
        self.inbox_next = arena(&ck.inbox_next);
        self.inbox_later = arena(&ck.inbox_later);
        self.informed = ck
            .informed
            .iter()
            .map(|&(id, count)| (MessageId(id), count as usize))
            .collect();
        self.terminated = ck.terminated.iter().map(|&id| MessageId(id)).collect();
        let tech = *self.report.technology();
        let mut report = SimulationReport::new(tech);
        report.rounds_executed = ck.report.rounds_executed;
        report.completed = ck.report.completed;
        report.packets_sent = ck.report.packets_sent;
        report.bits_sent = Bits(ck.report.bits_sent);
        report.upsets_detected = ck.report.upsets_detected;
        report.upsets_undetected = ck.report.upsets_undetected;
        report.overflow_drops = ck.report.overflow_drops;
        report.crash_drops = ck.report.crash_drops;
        report.clock_slips = ck.report.clock_slips;
        report.ttl_expirations = ck.report.ttl_expirations;
        report.partition_drops = ck.report.partition_drops;
        report.byzantine_forges = ck.report.byzantine_forges;
        report.byzantine_replays = ck.report.byzantine_replays;
        report.adversarial_delays = ck.report.adversarial_delays;
        report.adversarial_reorders = ck.report.adversarial_reorders;
        report.quiescent_rounds = ck.report.quiescent_rounds;
        for rec in &ck.report.records {
            report.record_injection(MessageRecord {
                id: MessageId(rec.id),
                source: NodeId(rec.source as usize),
                destination: NodeId(rec.destination as usize),
                injected_round: rec.injected_round,
                delivered_round: rec.delivered_round,
                frame_bits: Bits(rec.frame_bits),
            });
        }
        self.report = report;

        // Derived bookkeeping is rebuilt, never serialized: the
        // Inflight counters and frontier sets are exact functions of
        // the restored arenas and buffers.
        self.inflight = Inflight::new(n);
        for (tile, frames) in self.inbox_next.iter().enumerate() {
            if !frames.is_empty() {
                self.inflight.next.tiles.insert(tile);
                self.inflight.next.frames += frames.len() as u64;
            }
        }
        for (tile, frames) in self.inbox_later.iter().enumerate() {
            if !frames.is_empty() {
                self.inflight.later.tiles.insert(tile);
                self.inflight.later.frames += frames.len() as u64;
            }
        }
        self.buffer_frontier = TileSet::new(n);
        self.live_total = 0;
        for (tile, buf) in self.buffers.iter().enumerate() {
            if !buf.is_empty() {
                self.buffer_frontier.insert(tile);
                self.live_total += buf.len() as u64;
            }
        }
        Ok(())
    }

    /// Executes one gossip round.
    pub fn step(&mut self) -> RoundStats {
        if self.shards > 1 {
            self.step_sharded()
        } else {
            self.step_sequential()
        }
    }

    /// Shifts the delay line through persistent arenas: the old `next`
    /// becomes this round's arrivals (in `inbox_scratch`), the old
    /// `later` becomes `next`, and the vectors drained last round
    /// rotate back in as the fresh `later` — steady-state rounds
    /// allocate no inbox memory. The inflight trackers rotate in
    /// lockstep.
    fn rotate_arenas(&mut self) {
        std::mem::swap(&mut self.inbox_next, &mut self.inbox_scratch);
        std::mem::swap(&mut self.inbox_next, &mut self.inbox_later);
        self.inflight.rotate();
    }

    /// The single-shard round loop: the historical sequential engine,
    /// now iterating each phase over the active frontier instead of
    /// every tile. The frontier sets are exact and walked in ascending
    /// tile order, so the visit — and therefore RNG draw — sequence is
    /// identical to the old full `0..n` scans and every pre-frontier
    /// golden digest still holds.
    fn step_sequential(&mut self) -> RoundStats {
        let round = self.round;
        // Sequential rounds have no tape/fan-out/merge breakdown; the
        // wall-clock plane gets the whole-round span only.
        let obs = self.obs.clone();
        let round_span = span_start(&obs);
        let mut stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        self.rotate_arenas();

        // Phase 1: receive.
        {
            let Simulation {
                ref config,
                ref crash_schedule,
                ref mut injector,
                ref codec,
                ref tiles_alive,
                ref mut buffers,
                ref mut inbox_scratch,
                ref mut delivery_scratch,
                ref mut terminated,
                ref mut pending_purge,
                ref mut informed,
                ref mut report,
                ref mut sink,
                ref inflight,
                ref mut buffer_frontier,
                ref mut live_total,
                ref ip_is_custom,
                ..
            } = *self;
            for tile in inflight.scratch.tiles.iter() {
                let frames = &mut inbox_scratch[tile];
                if frames.is_empty() {
                    continue;
                }
                let node = NodeId(tile);
                if !tiles_alive[tile] || crash_schedule.tile_dead(tile, round) {
                    report.crash_drops += frames.len() as u64;
                    for _ in 0..frames.len() {
                        sink.emit(SimEvent::CrashDrop {
                            round,
                            site: DropSite::Tile(node),
                        });
                    }
                    frames.clear();
                    continue;
                }
                apply_overflow_in_place(injector, report, sink, round, node, frames);
                for frame in frames.drain(..) {
                    let view = if frame.scrambled {
                        // A scrambled frame must take the real CRC check:
                        // it is usually discarded here, and the residual
                        // undetected-error rate is faithfully possible.
                        match codec.decode_view(&frame.bytes) {
                            Ok(view) => {
                                if terminated.contains(&view.id) {
                                    // Spread already terminated.
                                    sink.emit(SimEvent::DuplicateDrop {
                                        round,
                                        tile: node,
                                        message: view.id,
                                    });
                                    continue;
                                }
                                // The CRC failed to notice the upset: the
                                // corrupt message proceeds, faithfully.
                                report.upsets_undetected += 1;
                                sink.emit(SimEvent::UndetectedUpset {
                                    round,
                                    tile: node,
                                    message: view.id,
                                });
                                if buffers[tile].has_seen(view.id) {
                                    // Duplicate: insertion is a no-op.
                                    sink.emit(SimEvent::DuplicateDrop {
                                        round,
                                        tile: node,
                                        message: view.id,
                                    });
                                    continue;
                                }
                                view
                            }
                            Err(_) => {
                                report.upsets_detected += 1;
                                sink.emit(SimEvent::CrcReject {
                                    round,
                                    tile: node,
                                    link: frame.via,
                                });
                                continue;
                            }
                        }
                    } else {
                        // Never-scrambled frames are bit-identical to our
                        // own encoder's output, so the CRC holds by
                        // construction and the id sits at a fixed offset.
                        // Most arrivals in a flood are duplicates of an
                        // already-buffered message: they die right here
                        // on two hash probes, with no CRC or parse work.
                        let id = codec
                            .peek_id(&frame.bytes)
                            // noc-lint: allow(hot-path-panic, reason = "engine invariant: never-scrambled frames come from our own encoder, so the header is present by construction")
                            .expect("self-encoded frames carry a full header");
                        if terminated.contains(&id) || buffers[tile].has_seen(id) {
                            sink.emit(SimEvent::DuplicateDrop {
                                round,
                                tile: node,
                                message: id,
                            });
                            continue;
                        }
                        codec
                            .decode_view_trusted(&frame.bytes)
                            // noc-lint: allow(hot-path-panic, reason = "engine invariant: trusted decode of a frame this engine encoded; failure means a codec bug, not input")
                            .expect("self-encoded frames parse")
                    };
                    *informed.entry(view.id).or_insert(0) += 1;
                    // First sighting: materialize owned (shared) payload
                    // bytes off the borrowed frame.
                    let message = view.to_message();
                    if message.destination == node {
                        if report.record_delivery(message.id, round) {
                            sink.emit(SimEvent::Delivery {
                                round,
                                tile: node,
                                message: message.id,
                                source: message.source,
                            });
                        }
                        stats.deliveries += 1;
                        if ip_is_custom[tile] {
                            delivery_scratch[tile]
                                .push((message.source, Arc::clone(&message.payload)));
                        }
                        if config.terminate_on_delivery && terminated.insert(message.id) {
                            pending_purge.push(message.id);
                        }
                    }
                    let id = message.id;
                    match buffers[tile].insert_checked(message) {
                        InsertOutcome::Inserted => {
                            *live_total += 1;
                            buffer_frontier.insert(tile);
                        }
                        InsertOutcome::ExpiredOnArrival => {
                            // Only reachable when an undetected upset zeroed
                            // the TTL field: the id is consumed, the buffer
                            // counts an expiry, and the event stream must
                            // agree.
                            sink.emit(SimEvent::TtlExpiry {
                                round,
                                tile: node,
                                message: id,
                            });
                        }
                        InsertOutcome::AlreadySeen => {}
                    }
                }
            }
        }
        self.inflight.scratch.clear();

        // Phase 2: compute (IPs run with zero computation time).
        self.run_compute(round);

        // Phase 3: age TTLs and garbage-collect over the buffer
        // frontier; spreads terminated this round are purged first.
        // (Spreads terminated in earlier rounds were purged then and can
        // never re-enter a buffer — the receive phase suppresses them.)
        {
            let Simulation {
                ref mut buffers,
                ref mut sink,
                ref buffer_frontier,
                ref pending_purge,
                ref mut live_total,
                ref mut emptied_scratch,
                ..
            } = *self;
            emptied_scratch.clear();
            for tile in buffer_frontier.iter() {
                let buffer = &mut buffers[tile];
                for &id in pending_purge.iter() {
                    if buffer.remove(id) {
                        *live_total -= 1;
                    }
                }
                let before = buffer.len() as u64;
                buffer.age_with(|id| {
                    sink.emit(SimEvent::TtlExpiry {
                        round,
                        tile: NodeId(tile),
                        message: id,
                    });
                });
                *live_total -= before - buffer.len() as u64;
                if buffer.is_empty() {
                    emptied_scratch.push(tile as u32);
                }
            }
        }
        self.pending_purge.clear();
        let emptied = std::mem::take(&mut self.emptied_scratch);
        for &tile in &emptied {
            self.buffer_frontier.remove(tile as usize);
        }
        self.emptied_scratch = emptied;

        // Phase 4: forward with probability p per (message, link). The
        // buffer is walked by reference, each frame is encoded at most
        // once per round through the memo, and fan-out shares the frame
        // bytes by `Arc` instead of cloning them per link.
        {
            let Simulation {
                ref topology,
                ref config,
                ref crash_schedule,
                ref adversary,
                ref mut chaos_streams,
                ref mut byz_streams,
                ref mut byz_last_frame,
                ref mut injector,
                ref codec,
                ref tiles_alive,
                ref links_alive,
                ref buffers,
                ref mut clocks,
                ref mut inbox_next,
                ref mut inbox_later,
                ref mut frame_memo,
                ref egress_limits,
                ref mut egress_next,
                ref forward_overrides,
                ref mut report,
                ref mut sink,
                ref buffer_frontier,
                ref mut inflight,
                ..
            } = *self;
            frame_memo.begin_round();
            for tile in buffer_frontier.iter() {
                let node = NodeId(tile);
                let msgs = buffers[tile].messages();
                if !tiles_alive[tile] || crash_schedule.tile_dead(tile, round) || msgs.is_empty() {
                    continue;
                }
                let p = forward_overrides[tile].unwrap_or(config.forward_probability);
                // Synchronization: a slipped tile delivers one round late.
                let skew = injector.round_skew();
                let slips = clocks[tile].advance(skew);
                for _ in 0..slips {
                    sink.emit(SimEvent::ClockSlip { round, tile: node });
                }
                let slipped = slips > 0;
                let len = msgs.len();
                let (start, count) = match egress_limits[tile] {
                    // Serve the buffer round-robin so a long-lived head
                    // does not starve later arrivals (bus-style fair
                    // arbitration). The resume point is a message *id*:
                    // an index cursor would drift whenever the buffer
                    // shrinks between rounds (TTL expiry, termination
                    // purges) and skip or double-serve survivors.
                    Some(limit) if len > limit => {
                        let start = egress_next[tile]
                            .and_then(|id| msgs.iter().position(|m| m.id == id))
                            .unwrap_or(0);
                        egress_next[tile] = Some(msgs[(start + limit) % len].id);
                        (start, limit)
                    }
                    _ => (0, len),
                };
                for k in 0..count {
                    let message = &msgs[(start + k) % len];
                    let frame = frame_memo.frame_for(codec, message);
                    sink.emit(SimEvent::Forwarded {
                        round,
                        tile: node,
                        message: message.id,
                    });
                    if byz_streams.contains_key(&tile) {
                        byz_last_frame[tile] = Some((message.id, Arc::clone(&frame)));
                    }
                    for &link_id in topology.out_links(node) {
                        if p < 1.0 && !injector.rng().gen_bool_p(p) {
                            continue;
                        }
                        transmit_frame(
                            topology,
                            links_alive,
                            crash_schedule,
                            adversary,
                            injector,
                            chaos_streams,
                            report,
                            sink,
                            &mut stats,
                            inbox_next,
                            inbox_later,
                            inflight,
                            round,
                            node,
                            link_id,
                            message.id,
                            &frame,
                            slipped,
                        );
                    }
                }
                // A compromised tile attacks after its legitimate service:
                // one activation draw per armed round (from the tile's own
                // stream), then a forged equivocation or a stale replay is
                // flooded to *every* output link, ignoring the protocol's
                // forwarding probability.
                if adversary.byzantine.armed(tile, round) {
                    if let Some(stream) = byz_streams.get_mut(&tile) {
                        if stream.gen_bool_p(adversary.byzantine.activation_probability) {
                            let attack = match adversary.byzantine.mode {
                                ByzantineMode::Forge => {
                                    let victim = &msgs[start % len];
                                    let mut payload = victim.payload.to_vec();
                                    if payload.is_empty() {
                                        None
                                    } else {
                                        use rand::Rng;
                                        let at = stream.gen_range(0..payload.len());
                                        let mask = stream.gen_range(1..=255u64) as u8;
                                        payload[at] ^= mask;
                                        let forged = Message::new(
                                            victim.id,
                                            victim.source,
                                            victim.destination,
                                            victim.ttl,
                                            payload,
                                        );
                                        let frame: Arc<[u8]> = codec.encode(&forged).into();
                                        report.byzantine_forges += 1;
                                        sink.emit(SimEvent::ByzantineForge {
                                            round,
                                            tile: node,
                                            message: victim.id,
                                        });
                                        Some((victim.id, frame))
                                    }
                                }
                                ByzantineMode::Replay => {
                                    byz_last_frame[tile].clone().inspect(|(_, _)| {
                                        report.byzantine_replays += 1;
                                        sink.emit(SimEvent::ByzantineReplay { round, tile: node });
                                    })
                                }
                            };
                            if let Some((id, frame)) = attack {
                                for &link_id in topology.out_links(node) {
                                    transmit_frame(
                                        topology,
                                        links_alive,
                                        crash_schedule,
                                        adversary,
                                        injector,
                                        chaos_streams,
                                        report,
                                        sink,
                                        &mut stats,
                                        inbox_next,
                                        inbox_later,
                                        inflight,
                                        round,
                                        node,
                                        link_id,
                                        id,
                                        &frame,
                                        slipped,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        self.finish_round(&mut stats);
        span_end(&obs, EnginePhase::Round, round_span);
        stats
    }

    /// Phase 2: compute (IPs run with zero computation time). Only
    /// tiles with a custom IP participate — [`NullIp`]'s hooks are
    /// no-ops and it reports done, so skipping unmapped tiles changes
    /// nothing observable.
    #[allow(clippy::needless_range_loop)] // body needs `&mut self` per tile
    fn run_compute(&mut self, round: u64) {
        for i in 0..self.custom_ip_tiles.len() {
            let tile = self.custom_ip_tiles[i];
            let node = NodeId(tile);
            if !self.tile_alive(node) {
                continue;
            }
            let mut ctx = IpContext::new(node, round);
            if !self.started {
                self.ips[tile].on_start(&mut ctx);
            }
            let mut delivered = std::mem::take(&mut self.delivery_scratch[tile]);
            for (from, payload) in delivered.drain(..) {
                self.ips[tile].on_message(&mut ctx, from, &payload);
            }
            self.delivery_scratch[tile] = delivered;
            self.ips[tile].on_round(&mut ctx);
            for (destination, payload) in ctx.take_outbox() {
                self.inject_from_ip(node, destination, payload);
            }
        }
        self.started = true;
    }

    /// Round epilogue shared by the sequential and sharded paths:
    /// advances the round, evaluates completion and quiescence from the
    /// frontier counters (O(1) instead of the old O(n) scans), and
    /// fills the live-message stat. Debug builds re-assert every
    /// counter and frontier bit against the ground-truth scans.
    fn finish_round(&mut self, stats: &mut RoundStats) {
        // Wall-clock plane only: cloning the handles (cheap `Arc`
        // bumps, or a no-op `None`) decouples the span from the `&mut
        // self` borrows below.
        let obs = self.obs.clone();
        let span = span_start(&obs);
        self.round += 1;
        stats.live_messages = self.live_total;
        #[cfg(debug_assertions)]
        {
            let live: u64 = self.buffers.iter().map(|b| b.len() as u64).sum();
            debug_assert_eq!(live, self.live_total, "live-message counter drifted");
            let next: u64 = self.inbox_next.iter().map(|v| v.len() as u64).sum();
            debug_assert_eq!(
                next, self.inflight.next.frames,
                "next-arena counter drifted"
            );
            let later: u64 = self.inbox_later.iter().map(|v| v.len() as u64).sum();
            debug_assert_eq!(
                later, self.inflight.later.frames,
                "later-arena counter drifted"
            );
            for (tile, buffer) in self.buffers.iter().enumerate() {
                debug_assert_eq!(
                    !buffer.is_empty(),
                    self.buffer_frontier.contains(tile),
                    "buffer frontier inexact at tile {tile}"
                );
            }
            for (tile, inbox) in self.inbox_next.iter().enumerate() {
                debug_assert_eq!(
                    !inbox.is_empty(),
                    self.inflight.next.tiles.contains(tile),
                    "next-arena frontier inexact at tile {tile}"
                );
            }
        }
        // The run is complete when every IP has finished *and* the network
        // has drained: no live messages buffered and nothing in flight.
        // (Keeping the spread alive until TTL expiry matches the paper's
        // "the spread could be terminated" remark — the TTL is the
        // termination mechanism.) Chaos-delayed frames parked in the
        // `later` arena count as in flight, so quiescence cannot fire
        // early.
        let drained = self.live_total == 0 && self.inflight.pending_frames() == 0;
        self.completed = drained && self.custom_ip_tiles.iter().all(|&t| self.ips[t].is_done());
        self.report.rounds_executed = self.round;
        self.report.completed = self.completed;
        if self.live_total == 0 && !self.completed {
            // A quiescent round: the buffer frontier is empty but the
            // run is not over (frames still in the delay line, or IPs
            // not done). These are the frontier's O(active) fast-path
            // rounds.
            self.report.quiescent_rounds += 1;
            self.sink.emit(SimEvent::RoundQuiescent {
                round: stats.round,
                inflight: self.inflight.pending_frames(),
            });
        }
        span_end(&obs, EnginePhase::Quiescence, span);
        if let Some(obs) = &obs {
            obs.count_round();
        }
    }

    /// The tile-partitioned round loop (`shards > 1`).
    ///
    /// Division of labour (see [`crate::shard`]): every RNG draw
    /// happens here on the main thread, in serial pre-passes that walk
    /// tiles in exactly the sequential engine's order; scoped shard
    /// workers execute the recorded outcomes over disjoint tile ranges;
    /// merges walk shards in ascending tile order. Reports, digests and
    /// event streams are byte-identical to `shards = 1`.
    fn step_sharded(&mut self) -> RoundStats {
        let round = self.round;
        let n = self.node_count();
        let record_events = S::RECORDS;
        let mut stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        // Wall-clock plane handles, cloned once so spans never contend
        // with the phase destructuring borrows. Spans only start when a
        // phase actually runs — skipped phases record nothing. The
        // whole-round span wraps the breakdown, so `phase=round` is
        // comparable between the sequential and sharded loops.
        let obs = self.obs.clone();
        let round_span = span_start(&obs);
        self.rotate_arenas();
        let ranges = shard_ranges(n, self.shards);

        // Receive pre-pass: probabilistic overflow draws one Bernoulli
        // per arriving frame at each alive tile — replay them onto the
        // tape in tile order.
        self.receive_tape.clear();
        let tape_mode = matches!(
            self.injector.model().overflow_mode,
            OverflowMode::Probabilistic
        ) && self.injector.model().p_overflow > 0.0;
        if tape_mode {
            let tape_span = span_start(&obs);
            let Simulation {
                ref mut receive_tape,
                ref mut injector,
                ref inbox_scratch,
                ref inflight,
                ref tiles_alive,
                ref crash_schedule,
                ..
            } = *self;
            for tile in inflight.scratch.tiles.iter() {
                let frames = &inbox_scratch[tile];
                if frames.is_empty() || !tiles_alive[tile] || crash_schedule.tile_dead(tile, round)
                {
                    continue;
                }
                let start = receive_tape.keeps.len() as u32;
                for _ in 0..frames.len() {
                    receive_tape.keeps.push(!injector.overflow_drop());
                }
                receive_tape.spans.push(OverflowSpan {
                    tile: tile as u32,
                    start,
                    len: frames.len() as u32,
                });
            }
            span_end(&obs, EnginePhase::Tape, tape_span);
        }
        let overflow_plan = if tape_mode {
            OverflowPlan::Tape(&self.receive_tape)
        } else {
            match self.injector.model().overflow_mode {
                OverflowMode::Structural { capacity } => OverflowPlan::Structural { capacity },
                OverflowMode::Probabilistic => OverflowPlan::None,
            }
        };

        // Termination plan: under terminate-on-delivery one tile's
        // delivery suppresses later copies of the id — cross-shard
        // information a worker cannot observe, so the delivering tiles
        // are computed up front (RNG-free).
        let newly_terminated = if self.config.terminate_on_delivery {
            plan_terminations(
                round,
                &self.inflight.scratch.tiles,
                &self.inbox_scratch,
                &self.buffers,
                &self.codec,
                &self.tiles_alive,
                &self.crash_schedule,
                &overflow_plan,
                &self.terminated,
            )
        } else {
            BTreeMap::new()
        };

        // Phase 1: receive, one RNG-free worker per shard.
        let fan_span = if self.inflight.scratch.frames == 0 {
            None
        } else {
            span_start(&obs)
        };
        let receive_outs: Vec<ReceiveOut> = if self.inflight.scratch.frames == 0 {
            Vec::new()
        } else {
            let Simulation {
                ref config,
                ref crash_schedule,
                ref codec,
                ref tiles_alive,
                ref mut buffers,
                ref mut inbox_scratch,
                ref mut delivery_scratch,
                ref terminated,
                ref inflight,
                ref ip_is_custom,
                ..
            } = *self;
            let ctx = ReceiveCtx {
                round,
                frontier: &inflight.scratch.tiles,
                codec,
                tiles_alive,
                crash_schedule,
                overflow: overflow_plan,
                terminated,
                newly_terminated: &newly_terminated,
                terminate_on_delivery: config.terminate_on_delivery,
                ip_is_custom,
                record_events,
            };
            let inboxes = split_chunks(inbox_scratch, &ranges);
            let buffers = split_chunks(buffers, &ranges);
            let scratch = split_chunks(delivery_scratch, &ranges);
            let work: Vec<_> = ranges
                .iter()
                .zip(inboxes)
                .zip(buffers)
                .zip(scratch)
                .map(|(((&(lo, _), inbox), buf), ds)| (lo, inbox, buf, ds))
                .collect();
            run_shards(work, |(lo, inbox, buf, ds)| {
                receive_shard(&ctx, lo, inbox, buf, ds)
            })
        };
        span_end(&obs, EnginePhase::ShardFanout, fan_span);
        let merge_span = if receive_outs.is_empty() {
            None
        } else {
            span_start(&obs)
        };
        for out in &receive_outs {
            self.report.crash_drops += out.crash_drops;
            self.report.overflow_drops += out.overflow_drops;
            self.report.upsets_detected += out.upsets_detected;
            self.report.upsets_undetected += out.upsets_undetected;
            for &id in &out.informed {
                *self.informed.entry(id).or_insert(0) += 1;
            }
            stats.deliveries += out.deliveries.len() as u64;
            if record_events {
                // Delivery events are candidates: first-delivery
                // arbitration replays here, in shard (= tile) order.
                for &event in &out.events {
                    if let SimEvent::Delivery { round, message, .. } = event {
                        if self.report.record_delivery(message, round) {
                            self.sink.emit(event);
                        }
                    } else {
                        self.sink.emit(event);
                    }
                }
            } else {
                for &id in &out.deliveries {
                    self.report.record_delivery(id, round);
                }
            }
            self.live_total += out.inserted;
            for &tile in &out.touched {
                self.buffer_frontier.insert(tile as usize);
            }
        }
        span_end(&obs, EnginePhase::Merge, merge_span);
        self.inflight.scratch.clear();
        for &id in newly_terminated.keys() {
            if self.terminated.insert(id) {
                self.pending_purge.push(id);
            }
        }

        // Phase 2: compute.
        self.run_compute(round);

        // Phase 3: age over the buffer frontier, one worker per shard.
        let fan_span = if self.buffer_frontier.is_empty() {
            None
        } else {
            span_start(&obs)
        };
        let age_outs: Vec<AgeOut> = if self.buffer_frontier.is_empty() {
            Vec::new()
        } else {
            let Simulation {
                ref buffer_frontier,
                ref mut buffers,
                ref pending_purge,
                ..
            } = *self;
            let chunks = split_chunks(buffers, &ranges);
            let work: Vec<_> = ranges
                .iter()
                .zip(chunks)
                .map(|(&(lo, _), chunk)| (lo, chunk))
                .collect();
            run_shards(work, |(lo, chunk)| {
                age_shard(
                    round,
                    lo,
                    buffer_frontier,
                    chunk,
                    pending_purge,
                    record_events,
                )
            })
        };
        span_end(&obs, EnginePhase::ShardFanout, fan_span);
        let merge_span = if age_outs.is_empty() {
            None
        } else {
            span_start(&obs)
        };
        for out in &age_outs {
            for &event in &out.events {
                self.sink.emit(event);
            }
            self.live_total -= out.purged + out.expired;
            for &tile in &out.emptied {
                self.buffer_frontier.remove(tile as usize);
            }
        }
        span_end(&obs, EnginePhase::Merge, merge_span);
        self.pending_purge.clear();

        // Phase 4: forward. Fully-deterministic configurations skip the
        // tape: workers recompute outcomes locally (and return the
        // counter deltas the pre-pass would have accumulated).
        let forward_outs: Vec<ForwardOut> = if self.buffer_frontier.is_empty() {
            Vec::new()
        } else if self.uniform_forward {
            let fan_span = span_start(&obs);
            let Simulation {
                ref buffer_frontier,
                ref buffers,
                ref topology,
                ref codec,
                ref tiles_alive,
                ref links_alive,
                ref crash_schedule,
                ref adversary,
                ref forward_overrides,
                ref config,
                ..
            } = *self;
            let ctx = UniformForwardCtx {
                round,
                frontier: buffer_frontier,
                buffers,
                topology,
                codec,
                tiles_alive,
                links_alive,
                crash_schedule,
                adversary,
                forward_overrides,
                forward_probability: config.forward_probability,
                record_events,
            };
            let outs = run_shards(ranges.clone(), |(lo, hi)| {
                forward_shard_uniform(&ctx, lo, hi)
            });
            span_end(&obs, EnginePhase::ShardFanout, fan_span);
            outs
        } else {
            let tape_span = span_start(&obs);
            self.build_forward_tape(round, &mut stats);
            span_end(&obs, EnginePhase::Tape, tape_span);
            let fan_span = span_start(&obs);
            let Simulation {
                ref forward_tape,
                ref buffers,
                ref topology,
                ref codec,
                ..
            } = *self;
            let outs = run_shards(ranges.clone(), |(lo, hi)| {
                forward_shard_tape(
                    round,
                    lo,
                    hi,
                    forward_tape,
                    buffers,
                    topology,
                    codec,
                    record_events,
                )
            });
            span_end(&obs, EnginePhase::ShardFanout, fan_span);
            outs
        };
        let merge_span = if forward_outs.is_empty() {
            None
        } else {
            span_start(&obs)
        };
        for out in &forward_outs {
            for &event in &out.events {
                self.sink.emit(event);
            }
            // Uniform-mode counter deltas; the tape pre-pass accumulates
            // these itself and leaves worker deltas at zero.
            stats.transmissions += out.transmissions;
            self.report.packets_sent += out.transmissions;
            self.report.bits_sent += Bits(out.bits);
            self.report.crash_drops += out.crash_drops;
            self.report.partition_drops += out.partition_drops;
        }
        span_end(&obs, EnginePhase::Merge, merge_span);

        // File egress into the arrival arenas, one worker per
        // destination shard, walking producers in shard order so each
        // inbox fills in exactly the sequential filing order.
        if forward_outs.iter().any(|out| !out.egress.is_empty()) {
            let fan_span = span_start(&obs);
            let file_outs: Vec<FileOut> = {
                let Simulation {
                    ref mut inbox_next,
                    ref mut inbox_later,
                    ..
                } = *self;
                let next = split_chunks(inbox_next, &ranges);
                let later = split_chunks(inbox_later, &ranges);
                let outs = &forward_outs;
                let work: Vec<_> = ranges
                    .iter()
                    .zip(next)
                    .zip(later)
                    .map(|((&(lo, _), next), later)| (lo, next, later))
                    .collect();
                run_shards(work, |(lo, next, later)| file_shard(lo, outs, next, later))
            };
            span_end(&obs, EnginePhase::ShardFanout, fan_span);
            let merge_span = span_start(&obs);
            for out in &file_outs {
                self.inflight.next.frames += out.next_frames;
                self.inflight.later.frames += out.later_frames;
                for &tile in &out.next_tiles {
                    self.inflight.next.tiles.insert(tile as usize);
                }
                for &tile in &out.later_tiles {
                    self.inflight.later.tiles.insert(tile as usize);
                }
            }
            span_end(&obs, EnginePhase::Merge, merge_span);
        }

        self.finish_round(&mut stats);
        span_end(&obs, EnginePhase::Round, round_span);
        stats
    }

    /// The forward phase's serial RNG pre-pass (sharded, non-uniform
    /// configurations): walks the buffer frontier in sequential tile
    /// order consuming every draw — forwarding Bernoullis, clock skew,
    /// upsets (captured as XOR masks by scrambling a zero buffer of the
    /// frame's length, which spends the identical draws), chaos jitter
    /// and Byzantine activity — and records the outcomes on the tape
    /// for the RNG-free workers. All transmission counters accumulate
    /// here, in draw order.
    fn build_forward_tape(&mut self, round: u64, stats: &mut RoundStats) {
        let Simulation {
            ref topology,
            ref config,
            ref crash_schedule,
            ref adversary,
            ref mut chaos_streams,
            ref mut byz_streams,
            ref mut byz_last_frame,
            ref mut injector,
            ref codec,
            ref tiles_alive,
            ref links_alive,
            ref buffers,
            ref mut clocks,
            ref mut frame_memo,
            ref egress_limits,
            ref mut egress_next,
            ref forward_overrides,
            ref mut report,
            ref buffer_frontier,
            ref mut forward_tape,
            ..
        } = *self;
        forward_tape.clear();
        frame_memo.begin_round();
        for tile in buffer_frontier.iter() {
            let node = NodeId(tile);
            let msgs = buffers[tile].messages();
            if !tiles_alive[tile] || crash_schedule.tile_dead(tile, round) || msgs.is_empty() {
                continue;
            }
            let p = forward_overrides[tile].unwrap_or(config.forward_probability);
            let skew = injector.round_skew();
            let slips = clocks[tile].advance(skew);
            let slipped = slips > 0;
            let serves_start = forward_tape.serves.len() as u32;
            let len = msgs.len();
            let (start, count) = match egress_limits[tile] {
                Some(limit) if len > limit => {
                    let start = egress_next[tile]
                        .and_then(|id| msgs.iter().position(|m| m.id == id))
                        .unwrap_or(0);
                    egress_next[tile] = Some(msgs[(start + limit) % len].id);
                    (start, limit)
                }
                _ => (0, len),
            };
            for k in 0..count {
                let slot = (start + k) % len;
                let message = &msgs[slot];
                let frame_len = codec.frame_bytes(message.payload.len());
                if byz_streams.contains_key(&tile) {
                    // Replay ammunition must be the encoded frame; the
                    // engine memo deduplicates the encode work.
                    let frame = frame_memo.frame_for(codec, message);
                    byz_last_frame[tile] = Some((message.id, frame));
                }
                let txs_start = forward_tape.txs.len() as u32;
                for &link_id in topology.out_links(node) {
                    if p < 1.0 && !injector.rng().gen_bool_p(p) {
                        continue;
                    }
                    plan_transmission(
                        forward_tape,
                        links_alive,
                        crash_schedule,
                        adversary,
                        injector,
                        chaos_streams,
                        report,
                        stats,
                        round,
                        link_id,
                        frame_len,
                        slipped,
                    );
                }
                forward_tape.serves.push(ServeCmd {
                    source: ServeSource::Buffer { slot: slot as u32 },
                    txs: (txs_start, forward_tape.txs.len() as u32),
                });
            }
            // Byzantine attack after legitimate service, same stream
            // discipline as the sequential engine.
            if adversary.byzantine.armed(tile, round) {
                if let Some(stream) = byz_streams.get_mut(&tile) {
                    if stream.gen_bool_p(adversary.byzantine.activation_probability) {
                        let attack = match adversary.byzantine.mode {
                            ByzantineMode::Forge => {
                                let victim = &msgs[start % len];
                                let mut payload = victim.payload.to_vec();
                                if payload.is_empty() {
                                    None
                                } else {
                                    use rand::Rng;
                                    let at = stream.gen_range(0..payload.len());
                                    let mask = stream.gen_range(1..=255u64) as u8;
                                    payload[at] ^= mask;
                                    let forged = Message::new(
                                        victim.id,
                                        victim.source,
                                        victim.destination,
                                        victim.ttl,
                                        payload,
                                    );
                                    let frame: Arc<[u8]> = codec.encode(&forged).into();
                                    report.byzantine_forges += 1;
                                    Some(ServeSource::Forge {
                                        id: victim.id,
                                        frame,
                                    })
                                }
                            }
                            ByzantineMode::Replay => {
                                byz_last_frame[tile].clone().map(|(id, frame)| {
                                    report.byzantine_replays += 1;
                                    ServeSource::Replay { id, frame }
                                })
                            }
                        };
                        if let Some(source) = attack {
                            let frame_len = match &source {
                                ServeSource::Forge { frame, .. }
                                | ServeSource::Replay { frame, .. } => frame.len(),
                                // Attack sources always carry a frame.
                                ServeSource::Buffer { .. } => 0,
                            };
                            let txs_start = forward_tape.txs.len() as u32;
                            for &link_id in topology.out_links(node) {
                                plan_transmission(
                                    forward_tape,
                                    links_alive,
                                    crash_schedule,
                                    adversary,
                                    injector,
                                    chaos_streams,
                                    report,
                                    stats,
                                    round,
                                    link_id,
                                    frame_len,
                                    slipped,
                                );
                            }
                            forward_tape.serves.push(ServeCmd {
                                source,
                                txs: (txs_start, forward_tape.txs.len() as u32),
                            });
                        }
                    }
                }
            }
            forward_tape.plans.push(TilePlan {
                tile: tile as u32,
                slips,
                serves: (serves_start, forward_tape.serves.len() as u32),
            });
        }
    }

    fn inject_from_ip(&mut self, source: NodeId, destination: NodeId, payload: Vec<u8>) {
        let id = MessageId(self.next_message_id);
        self.next_message_id += 1;
        let frame_bits = self.codec.frame_bits(payload.len());
        self.report.record_injection(MessageRecord {
            id,
            source,
            destination,
            injected_round: self.round,
            delivered_round: None,
            frame_bits,
        });
        let message = Message::new(id, source, destination, self.config.default_ttl, payload);
        if destination == source {
            if self.report.record_delivery(id, self.round) {
                self.sink.emit(SimEvent::Delivery {
                    round: self.round,
                    tile: source,
                    message: id,
                    source,
                });
            }
            let frame: Arc<[u8]> = self.codec.encode(&message).into();
            let inbox = &mut self.inbox_next[source.index()];
            if inbox.is_empty() {
                self.inflight.next.tiles.insert(source.index());
            }
            self.inflight.next.frames += 1;
            inbox.push(Frame {
                bytes: frame,
                scrambled: false,
                via: None,
            });
            return;
        }
        if self.buffers[source.index()].insert(message) {
            self.live_total += 1;
            self.buffer_frontier.insert(source.index());
        }
        *self.informed.entry(id).or_insert(0) += 1;
    }
}

/// Transmits one frame onto `link_id` during the forward phase: counts
/// it, swallows it on a dead or partitioned link, scrambles it on an
/// upset, applies chaos jitter from the link's dedicated stream, and
/// files it into the destination inbox (`inbox_later` when the sender
/// slipped or the link delayed; queue-front when the link reordered).
///
/// Factoring the per-hop tail into one function keeps the legitimate
/// forwarding loop and the Byzantine emission loop byte-identical in
/// their draw order — both paths traverse exactly the same decision
/// sequence per link.
#[allow(clippy::too_many_arguments)] // the forward phase's split borrows, passed explicitly
fn transmit_frame<S: EventSink>(
    topology: &Topology,
    links_alive: &[bool],
    crash_schedule: &CrashSchedule,
    adversary: &AdversarialScenario,
    injector: &mut FaultInjector,
    chaos_streams: &mut [StdRng],
    report: &mut SimulationReport,
    sink: &mut S,
    stats: &mut RoundStats,
    inbox_next: &mut [Vec<Frame>],
    inbox_later: &mut [Vec<Frame>],
    inflight: &mut Inflight,
    round: u64,
    from: NodeId,
    link_id: LinkId,
    message: MessageId,
    frame: &Arc<[u8]>,
    slipped: bool,
) {
    stats.transmissions += 1;
    report.packets_sent += 1;
    report.bits_sent += Bits((frame.len() * 8) as u64);
    let to = topology.link(link_id).to;
    sink.emit(SimEvent::FrameSent {
        round,
        from,
        link: link_id,
        to,
        message,
    });
    let link_dead =
        !links_alive[link_id.index()] || crash_schedule.link_dead(link_id.index(), round);
    if link_dead {
        report.crash_drops += 1;
        sink.emit(SimEvent::CrashDrop {
            round,
            site: DropSite::Link(link_id),
        });
        return;
    }
    // Partition cuts are pure schedule lookups — no RNG draw — so a
    // benign scenario leaves the main fault stream untouched.
    if adversary.partitions.link_cut(link_id.index(), round) {
        report.partition_drops += 1;
        sink.emit(SimEvent::PartitionDrop {
            round,
            link: link_id,
        });
        return;
    }
    let mut out = Frame {
        bytes: Arc::clone(frame),
        scrambled: false,
        via: Some(link_id),
    };
    if injector.upset_occurs() {
        injector.scramble_shared(&mut out.bytes);
        out.scrambled = true;
    }
    let mut held = slipped;
    let mut front = false;
    if !chaos_streams.is_empty() {
        // Fixed draw order per surviving frame: delay first, then
        // reorder. `gen_bool_p` short-circuits p = 0 without a draw, so
        // a delay-only (or reorder-only) configuration consumes exactly
        // one draw per frame from the link's stream.
        let stream = &mut chaos_streams[link_id.index()];
        if stream.gen_bool_p(adversary.chaos.delay_probability) {
            report.adversarial_delays += 1;
            sink.emit(SimEvent::AdversarialDelay {
                round,
                link: link_id,
            });
            held = true;
        }
        if stream.gen_bool_p(adversary.chaos.reorder_probability) {
            report.adversarial_reorders += 1;
            sink.emit(SimEvent::AdversarialReorder {
                round,
                link: link_id,
            });
            front = true;
        }
    }
    let (inbox, track) = if held {
        (&mut inbox_later[to.index()], &mut inflight.later)
    } else {
        (&mut inbox_next[to.index()], &mut inflight.next)
    };
    if inbox.is_empty() {
        track.tiles.insert(to.index());
    }
    track.frames += 1;
    if front {
        inbox.insert(0, out);
    } else {
        inbox.push(out);
    }
}

/// Pre-draws one transmission's fate onto the forward tape: counts it,
/// decides dead-link/partition swallowing, captures an upset's XOR mask
/// (scrambling a zero buffer of the frame's length consumes the
/// identical draws the sequential engine would spend on the frame
/// bytes — both error models are XOR-linear), and draws chaos jitter
/// from the link's dedicated stream. The decision sequence per link is
/// byte-identical to [`transmit_frame`]'s.
#[allow(clippy::too_many_arguments)] // the forward pre-pass's split borrows, passed explicitly
fn plan_transmission(
    tape: &mut ForwardTape,
    links_alive: &[bool],
    crash_schedule: &CrashSchedule,
    adversary: &AdversarialScenario,
    injector: &mut FaultInjector,
    chaos_streams: &mut [StdRng],
    report: &mut SimulationReport,
    stats: &mut RoundStats,
    round: u64,
    link_id: LinkId,
    frame_len: usize,
    slipped: bool,
) {
    stats.transmissions += 1;
    report.packets_sent += 1;
    report.bits_sent += Bits((frame_len * 8) as u64);
    let link_dead =
        !links_alive[link_id.index()] || crash_schedule.link_dead(link_id.index(), round);
    let outcome = if link_dead {
        report.crash_drops += 1;
        TxOutcome::DeadLink
    } else if adversary.partitions.link_cut(link_id.index(), round) {
        report.partition_drops += 1;
        TxOutcome::Partitioned
    } else {
        let scramble = if injector.upset_occurs() {
            let mut mask = vec![0u8; frame_len];
            injector.scramble(&mut mask);
            Some(mask.into_boxed_slice())
        } else {
            None
        };
        let mut held = slipped;
        let mut front = false;
        let mut delayed = false;
        let mut reordered = false;
        if !chaos_streams.is_empty() {
            // Same fixed draw order as `transmit_frame`: delay first,
            // then reorder, from the link's dedicated stream.
            let stream = &mut chaos_streams[link_id.index()];
            if stream.gen_bool_p(adversary.chaos.delay_probability) {
                report.adversarial_delays += 1;
                held = true;
                delayed = true;
            }
            if stream.gen_bool_p(adversary.chaos.reorder_probability) {
                report.adversarial_reorders += 1;
                front = true;
                reordered = true;
            }
        }
        TxOutcome::Deliver {
            scramble,
            held,
            front,
            delayed,
            reordered,
        }
    };
    tape.txs.push(LinkTx {
        link: link_id,
        outcome,
    });
}

/// Runs one worker per shard on scoped threads, executing the last
/// shard inline on the calling thread (a one-element work list spawns
/// nothing). Results return in shard order; a worker panic propagates
/// to the caller.
fn run_shards<W, T, F>(mut work: Vec<W>, f: F) -> Vec<T>
where
    W: Send,
    T: Send,
    F: Fn(W) -> T + Sync,
{
    let Some(last) = work.pop() else {
        return Vec::new();
    };
    if work.is_empty() {
        return vec![f(last)];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|w| scope.spawn(move || f(w)))
            .collect();
        let inline = f(last);
        let mut results: Vec<T> = handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(out) => out,
                // noc-lint: allow(hot-path-panic, reason = "re-raises a worker thread's panic payload on the main thread; not a new panic site")
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        results.push(inline);
        results
    })
}

/// Applies the configured overflow policy to one tile's arrivals in place,
/// reusing the arrival arena's allocation.
///
/// Equivalent to filtering through [`noc_fabric::ReceiveBuffer`]: the
/// probabilistic mode draws one Bernoulli sample per frame in arrival
/// order, the structural mode keeps the newest `capacity` frames
/// (drop-oldest).
fn apply_overflow_in_place<S: EventSink>(
    injector: &mut FaultInjector,
    report: &mut SimulationReport,
    sink: &mut S,
    round: u64,
    tile: NodeId,
    frames: &mut Vec<Frame>,
) {
    match injector.model().overflow_mode {
        OverflowMode::Probabilistic => {
            if injector.model().p_overflow == 0.0 {
                return;
            }
            let before = frames.len();
            frames.retain(|_| !injector.overflow_drop());
            let dropped = (before - frames.len()) as u64;
            report.overflow_drops += dropped;
            for _ in 0..dropped {
                sink.emit(SimEvent::OverflowDrop { round, tile });
            }
        }
        OverflowMode::Structural { capacity } => {
            if frames.len() > capacity {
                let excess = frames.len() - capacity;
                frames.drain(..excess);
                report.overflow_drops += excess as u64;
                for _ in 0..excess {
                    sink.emit(SimEvent::OverflowDrop { round, tile });
                }
            }
        }
    }
}

/// Extension trait so the engine can draw Bernoulli samples through the
/// injector's deterministic stream without importing `rand` traits at
/// every call site.
trait GenBool {
    fn gen_bool_p(&mut self, p: f64) -> bool;
}

impl GenBool for rand::rngs::StdRng {
    fn gen_bool_p(&mut self, p: f64) -> bool {
        use rand::Rng;
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_bool(p)
        }
    }
}

impl SimulationBuilder {
    /// Convenience: builds over a square grid of `side × side` tiles.
    pub fn square_grid(side: usize) -> Self {
        Self::new(Grid2d::new(side, side))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_faults::ErrorModel;

    fn grid4() -> Grid2d {
        Grid2d::new(4, 4)
    }

    #[test]
    fn flooding_delivers_in_manhattan_distance_rounds() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12))
            .seed(1)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        assert!(report.delivered(id));
        // Tile 5 -> 11 is 3 hops; flooding is latency-optimal.
        assert_eq!(report.latency(id), Some(3));
    }

    #[test]
    fn flooding_informs_every_tile() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12))
            .seed(1)
            .build();
        let id = sim.inject(NodeId(0), NodeId(15), b"x".to_vec());
        for _ in 0..7 {
            sim.step();
        }
        assert_eq!(sim.informed_count(id), 16, "broadcast reaches all tiles");
    }

    #[test]
    fn gossip_delivers_with_half_probability() {
        let mut delivered = 0;
        for seed in 0..20 {
            let mut sim = SimulationBuilder::new(grid4())
                .forward_probability(0.5)
                .ttl(16)
                .max_rounds(100)
                .seed(seed)
                .build();
            let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
            let report = sim.run();
            if report.delivered(id) {
                delivered += 1;
            }
        }
        assert!(delivered >= 19, "p=0.5 delivered only {delivered}/20");
    }

    #[test]
    fn zero_probability_never_delivers_to_remote() {
        let mut sim = SimulationBuilder::new(grid4())
            .forward_probability(0.0)
            .max_rounds(50)
            .seed(3)
            .build();
        let id = sim.inject(NodeId(0), NodeId(15), b"x".to_vec());
        let report = sim.run();
        assert!(!report.delivered(id));
        assert_eq!(report.packets_sent, 0);
    }

    #[test]
    fn self_addressed_messages_deliver_instantly() {
        let mut sim = SimulationBuilder::new(grid4()).seed(4).build();
        let id = sim.inject(NodeId(6), NodeId(6), b"me".to_vec());
        assert!(sim.report().delivered(id));
        assert_eq!(sim.report().latency(id), Some(0));
    }

    #[test]
    fn ttl_bounds_total_traffic() {
        let run = |ttl: u8| {
            let mut sim = SimulationBuilder::new(grid4())
                .config(StochasticConfig::flooding(ttl).with_max_rounds(60))
                .seed(5)
                .build();
            sim.inject(NodeId(0), NodeId(15), b"x".to_vec());
            sim.run().packets_sent
        };
        let short = run(4);
        let long = run(16);
        assert!(long > short, "higher ttl must generate more packets");
        // With ttl t the broadcast lives t rounds; traffic is finite.
        assert!(short > 0);
    }

    #[test]
    fn energy_grows_with_forward_probability() {
        let run = |p: f64| {
            let mut sim = SimulationBuilder::new(grid4())
                .forward_probability(p)
                .ttl(10)
                .max_rounds(40)
                .seed(6)
                .build();
            sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
            sim.run().total_energy().joules()
        };
        let e25 = run(0.25);
        let e100 = run(1.0);
        assert!(
            e100 > e25,
            "flooding must dissipate more than p=0.25 ({e100} vs {e25})"
        );
    }

    #[test]
    fn dead_source_loses_the_message() {
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(5, 0);
        let mut sim = SimulationBuilder::new(grid4())
            .crash_schedule(schedule)
            .seed(7)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        assert!(!report.delivered(id));
    }

    #[test]
    fn gossip_routes_around_dead_tiles() {
        // Kill two tiles off the direct path; the message still arrives.
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(3, 0).kill_tile(12, 0);
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12))
            .crash_schedule(schedule)
            .seed(8)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        assert!(report.delivered(id));
    }

    #[test]
    fn partitioned_network_cannot_deliver() {
        // Kill the middle columns entirely: 4x4 grid split between
        // x<=0 and x>=2 when column 1 is dead... need both columns 1 and 2
        // to separate 0 and 15? Column x=1 tiles: 1,5,9,13. Killing them
        // separates x=0 from x>=2.
        let mut schedule = CrashSchedule::new();
        for t in [1usize, 5, 9, 13] {
            schedule.kill_tile(t, 0);
        }
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(20).with_max_rounds(60))
            .crash_schedule(schedule)
            .seed(9)
            .build();
        let id = sim.inject(NodeId(0), NodeId(15), b"x".to_vec());
        let report = sim.run();
        assert!(!report.delivered(id), "no path exists through a dead wall");
    }

    #[test]
    fn upsets_are_detected_and_survived() {
        let model = FaultModel::builder()
            .p_upset(0.3)
            .error_model(ErrorModel::RandomErrorVector)
            .build()
            .unwrap();
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(16).with_max_rounds(80))
            .fault_model(model)
            .seed(10)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"payload".to_vec());
        let report = sim.run();
        assert!(report.delivered(id), "redundancy defeats 30% upsets");
        assert!(
            report.upsets_detected > 0,
            "some upsets must have been caught"
        );
    }

    #[test]
    fn overflow_drops_are_counted() {
        let model = FaultModel::builder().p_overflow(0.5).build().unwrap();
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12).with_max_rounds(60))
            .fault_model(model)
            .seed(11)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        assert!(report.overflow_drops > 0);
        assert!(report.delivered(id), "50% overflow is survivable");
    }

    #[test]
    fn structural_overflow_mode_also_works() {
        let model = FaultModel::builder()
            .overflow_mode(OverflowMode::Structural { capacity: 1 })
            .build()
            .unwrap();
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12).with_max_rounds(60))
            .fault_model(model)
            .seed(12)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        // Flooding generates multiple copies per round: a 1-deep buffer
        // must overflow somewhere.
        assert!(report.overflow_drops > 0);
        assert!(report.delivered(id));
    }

    #[test]
    fn synchronization_errors_cause_jitter_not_loss() {
        let model = FaultModel::builder().sigma_synch(0.4).build().unwrap();
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(16).with_max_rounds(80))
            .fault_model(model)
            .seed(13)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
        let report = sim.run();
        assert!(report.delivered(id), "sync errors alone never lose packets");
        assert!(report.clock_slips > 0, "sigma=0.4 must cause slips");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let model = FaultModel::builder()
                .p_upset(0.2)
                .p_overflow(0.1)
                .build()
                .unwrap();
            let mut sim = SimulationBuilder::new(grid4())
                .forward_probability(0.5)
                .fault_model(model)
                .seed(seed)
                .max_rounds(60)
                .build();
            sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
            let r = sim.run();
            (
                r.packets_sent,
                r.upsets_detected,
                r.overflow_drops,
                r.rounds_executed,
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn step_stats_are_consistent() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(8))
            .seed(14)
            .build();
        sim.inject(NodeId(0), NodeId(15), b"x".to_vec());
        let s0 = sim.step();
        assert_eq!(s0.round, 0);
        assert!(s0.transmissions > 0, "source forwards in round 0");
        let s1 = sim.step();
        assert_eq!(s1.round, 1);
        assert!(s1.transmissions >= s0.transmissions);
    }

    #[test]
    fn report_totals_match_counters() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(6).with_max_rounds(30))
            .seed(15)
            .build();
        sim.inject(NodeId(0), NodeId(15), b"four".to_vec());
        let mut total = 0;
        while sim.round() < 30 && !sim.is_complete() {
            total += sim.step().transmissions;
        }
        let report = sim.into_report();
        assert_eq!(report.packets_sent, total);
        let frame_bits = 8 * (15 + 4 + 2) as u64; // header + payload + crc16
        assert_eq!(report.bits_sent.bits(), total * frame_bits);
    }

    #[test]
    fn ips_communicate_through_the_network() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Producer {
            to: NodeId,
            sent: bool,
        }
        impl IpCore for Producer {
            fn on_round(&mut self, ctx: &mut IpContext) {
                if !self.sent {
                    ctx.send(self.to, b"ping".to_vec());
                    self.sent = true;
                }
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        struct Consumer {
            got: Rc<RefCell<Option<u64>>>,
        }
        impl IpCore for Consumer {
            fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
                if payload == b"ping" {
                    *self.got.borrow_mut() = Some(ctx.round());
                }
            }
            fn is_done(&self) -> bool {
                self.got.borrow().is_some()
            }
        }

        let got = Rc::new(RefCell::new(None));
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(12))
            .with_ip(
                NodeId(5),
                Box::new(Producer {
                    to: NodeId(11),
                    sent: false,
                }),
            )
            .with_ip(
                NodeId(11),
                Box::new(Consumer {
                    got: Rc::clone(&got),
                }),
            )
            .seed(16)
            .build();
        let report = sim.run();
        assert!(report.completed, "both IPs finished");
        assert_eq!(*got.borrow(), Some(3), "ping crossed 3 hops in 3 rounds");
    }

    #[test]
    fn square_grid_convenience() {
        let sim = SimulationBuilder::square_grid(5).build();
        assert_eq!(sim.node_count(), 25);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn mapping_ip_out_of_range_panics() {
        let _ = SimulationBuilder::new(grid4()).with_ip(NodeId(99), Box::new(NullIp));
    }

    #[test]
    fn egress_limit_throttles_a_node() {
        // A 3-node line 0-1-2 where node 1 may forward one message per
        // round: two simultaneous messages through it serialize.
        let line = Topology::from_links(
            "line",
            3,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(1)),
            ],
        );
        let run = |limit: Option<usize>| {
            let mut builder = SimulationBuilder::new(line.clone())
                .config(StochasticConfig::flooding(10).with_max_rounds(30))
                .seed(1);
            if let Some(l) = limit {
                builder = builder.egress_limit(NodeId(1), l);
            }
            let mut sim = builder.build();
            let a = sim.inject(NodeId(0), NodeId(2), vec![1]);
            let b = sim.inject(NodeId(0), NodeId(2), vec![2]);
            let report = sim.run();
            (report.latency(a), report.latency(b))
        };
        let (ua, ub) = run(None);
        assert_eq!((ua, ub), (Some(2), Some(2)), "unlimited: both in 2 hops");
        let (la, lb) = run(Some(1));
        let (la, lb) = (la.unwrap(), lb.unwrap());
        assert_eq!(la.min(lb), 2, "one message still crosses immediately");
        assert!(la.max(lb) > 2, "the other queued behind the limit");
    }

    #[test]
    fn egress_cursor_survives_expiring_head_message() {
        // Line 0-1-2, node 1 limited to one forward per round. A is a
        // round older than B and C, so it expires out of node 1's buffer
        // while B and C still wait for service. The round-robin resume
        // point must follow the *message* it owes service to: an index
        // cursor recomputed against the shrunken buffer double-serves B
        // and starves C entirely.
        let line = Topology::from_links(
            "line",
            3,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(1)),
            ],
        );
        let mut sim = SimulationBuilder::new(line)
            .config(StochasticConfig::flooding(5).with_max_rounds(30))
            .egress_limit(NodeId(1), 1)
            .seed(1)
            .build();
        let a = sim.inject(NodeId(0), NodeId(2), vec![b'a']);
        sim.step();
        let b = sim.inject(NodeId(0), NodeId(2), vec![b'b']);
        let c = sim.inject(NodeId(0), NodeId(2), vec![b'c']);
        let report = sim.run();
        assert_eq!(report.latency(a), Some(2), "head crosses unimpeded");
        assert_eq!(report.latency(b), Some(3), "b served the round after a");
        assert_eq!(
            report.latency(c),
            Some(4),
            "c is served after a expires instead of being skipped"
        );
    }

    #[test]
    fn forward_probability_override_applies_per_node() {
        // Global p = 0: nothing moves — except the source tile overridden
        // to p = 1, whose neighbours still receive the message.
        let mut sim = SimulationBuilder::new(grid4())
            .forward_probability(0.0)
            .ttl(6)
            .max_rounds(10)
            .forward_probability_at(NodeId(5), 1.0)
            .seed(2)
            .build();
        let id = sim.inject(NodeId(5), NodeId(15), vec![1]);
        sim.step();
        sim.step();
        // Tile 5's 4 neighbours (1, 4, 6, 9) are informed; nobody else
        // forwards (their p is 0).
        assert_eq!(sim.informed_count(id), 5);
        assert!(sim.node_informed(NodeId(6), id));
        assert!(!sim.node_informed(NodeId(15), id));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn forward_override_validates_probability() {
        let _ = SimulationBuilder::new(grid4()).forward_probability_at(NodeId(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_egress_limit_rejected() {
        let _ = SimulationBuilder::new(grid4()).egress_limit(NodeId(0), 0);
    }

    #[test]
    fn termination_purges_buffers_after_delivery() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(
                StochasticConfig::flooding(16)
                    .with_max_rounds(40)
                    .with_termination(true),
            )
            .seed(3)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), vec![1]);
        let report = sim.run();
        assert!(report.delivered(id));
        // Flooding without termination would transmit for all 16 ttl
        // rounds; with termination the spread dies right after round 3.
        let links = 48u64; // 2*(4*3+4*3)
        assert!(
            report.packets_sent < 6 * links,
            "termination left {} packets",
            report.packets_sent
        );
    }

    #[test]
    fn run_with_history_matches_plain_run() {
        let build = || {
            let mut sim = SimulationBuilder::new(grid4())
                .config(StochasticConfig::flooding(8).with_max_rounds(30))
                .seed(21)
                .build();
            sim.inject(NodeId(0), NodeId(15), vec![1]);
            sim
        };
        let plain = build().run();
        let (report, history) = build().run_with_history();
        assert_eq!(report.packets_sent, plain.packets_sent);
        assert_eq!(history.len() as u64, report.rounds_executed);
        let total: u64 = history.iter().map(|s| s.transmissions).sum();
        assert_eq!(total, report.packets_sent);
        // Traffic rises as the broadcast spreads, then dies with the ttl.
        let peak = history.iter().map(|s| s.transmissions).max().unwrap();
        assert!(peak > history[0].transmissions);
        assert_eq!(history.last().unwrap().live_messages, 0);
    }

    #[test]
    fn buffer_len_reports_live_messages() {
        let mut sim = SimulationBuilder::new(grid4())
            .config(StochasticConfig::flooding(8))
            .seed(4)
            .build();
        assert_eq!(sim.buffer_len(NodeId(5)), 0);
        sim.inject(NodeId(5), NodeId(11), vec![1]);
        assert_eq!(sim.buffer_len(NodeId(5)), 1);
        sim.step();
        sim.step();
        assert!(sim.buffer_len(NodeId(6)) >= 1, "neighbour holds a copy");
    }
}
