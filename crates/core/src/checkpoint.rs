//! Serializable engine checkpoints: snapshot a running [`Simulation`]
//! at a round boundary, persist it, and resume later — on the same or a
//! different shard count — with byte-identical reports, digests and
//! event streams.
//!
//! A [`Checkpoint`] captures *every* piece of engine state that can
//! influence future draws and deliveries:
//!
//! * RNG stream positions — the trial fault stream (xoshiro256++ state
//!   plus the Box–Muller spare of the skew sampler), every per-link
//!   chaos stream, and every per-tile Byzantine stream;
//! * per-tile [`SendBuffer`](crate::SendBuffer)s (live messages, the
//!   seen-set, expiry counts) and round-robin egress cursors;
//! * per-tile clock domains (residual skew, slip totals);
//! * the arrival arenas (`next` and `later` delay lines) with each
//!   frame's bytes, scrambled flag and arrival link — the `Inflight`
//!   frontier bookkeeping is rebuilt exactly from these on restore;
//! * adversary progress (replay ammunition per Byzantine tile; the
//!   partition/crash schedules themselves are pure functions of the
//!   round and need no state);
//! * the report-so-far, the informed/terminated bookkeeping, and the
//!   round/id/started/completed cursors.
//!
//! What is deliberately **not** captured: custom IP-core state.
//! [`IpCore`](noc_fabric::IpCore) is an open trait object; callers that
//! map stateful IPs must re-map equivalently-stateful IPs before
//! resuming (the `started` flag is restored, so `on_start` never fires
//! twice). All golden workloads inject via
//! [`Simulation::inject`](crate::Simulation::inject) and are unaffected.
//!
//! The wire format is a hand-rolled versioned little-endian binary
//! encoding (magic + version header), dependency-free by construction:
//! the build environment has no serialization crates beyond the local
//! shims. The encoding of a checkpoint is deterministic — hash-ordered
//! collections are sorted before writing — so two checkpoints of
//! identical engine state are byte-identical.
//!
//! # Examples
//!
//! ```
//! use noc_fabric::NodeId;
//! use stochastic_noc::{Checkpoint, SimulationBuilder};
//!
//! let mut sim = SimulationBuilder::square_grid(4).ttl(8).seed(1).build();
//! sim.inject(NodeId(0), NodeId(15), b"snapshot me".to_vec());
//! sim.step();
//! let bytes = sim.checkpoint().to_bytes();
//!
//! let restored = Checkpoint::from_bytes(&bytes).unwrap();
//! let mut resumed = SimulationBuilder::square_grid(4)
//!     .ttl(8)
//!     .seed(1)
//!     .resume(&restored)
//!     .unwrap();
//! assert_eq!(resumed.round(), 1);
//! let straight = sim.run();
//! assert_eq!(format!("{straight:?}"), format!("{:?}", resumed.run()));
//! ```

use std::error::Error;
use std::fmt;
use std::path::Path;

/// Magic bytes opening every serialized checkpoint.
const MAGIC: &[u8; 8] = b"NOCSIMCK";

/// Current wire-format version. Bump on any layout change; readers
/// reject versions they do not understand instead of misparsing.
const VERSION: u32 = 1;

/// Error decoding, validating, or (for the convenience file helpers)
/// reading/writing a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the encoded structure did.
    Truncated,
    /// The stream does not open with the checkpoint magic.
    BadMagic,
    /// The stream's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// Bytes remained after the encoded structure ended.
    TrailingBytes(usize),
    /// The checkpoint does not match the simulation it is being
    /// restored into (different topology, config, fault model,
    /// adversary, or seed — or internally inconsistent lengths).
    Mismatch(&'static str),
    /// A file read/write failed (message carries the `io::Error` text).
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {VERSION})"
                )
            }
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after checkpoint"),
            Self::Mismatch(what) => {
                write!(f, "checkpoint does not match this simulation: {what}")
            }
            Self::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// One buffered message, flattened to plain words and bytes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MessageState {
    pub(crate) id: u64,
    pub(crate) source: u64,
    pub(crate) destination: u64,
    pub(crate) ttl: u8,
    pub(crate) payload: Vec<u8>,
}

/// One tile's send buffer: live messages in insertion order, the
/// seen-set sorted ascending, and the running expiry count.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct BufferState {
    pub(crate) messages: Vec<MessageState>,
    pub(crate) seen: Vec<u64>,
    pub(crate) expired: u64,
}

/// One in-flight frame in an arrival arena.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FrameState {
    pub(crate) bytes: Vec<u8>,
    pub(crate) scrambled: bool,
    pub(crate) via: Option<u64>,
}

/// One message's report record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RecordState {
    pub(crate) id: u64,
    pub(crate) source: u64,
    pub(crate) destination: u64,
    pub(crate) injected_round: u64,
    pub(crate) delivered_round: Option<u64>,
    pub(crate) frame_bits: u64,
}

/// The report-so-far: every public counter plus the per-message records.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ReportState {
    pub(crate) rounds_executed: u64,
    pub(crate) completed: bool,
    pub(crate) packets_sent: u64,
    pub(crate) bits_sent: u64,
    pub(crate) upsets_detected: u64,
    pub(crate) upsets_undetected: u64,
    pub(crate) overflow_drops: u64,
    pub(crate) crash_drops: u64,
    pub(crate) clock_slips: u64,
    pub(crate) ttl_expirations: u64,
    pub(crate) partition_drops: u64,
    pub(crate) byzantine_forges: u64,
    pub(crate) byzantine_replays: u64,
    pub(crate) adversarial_delays: u64,
    pub(crate) adversarial_reorders: u64,
    pub(crate) quiescent_rounds: u64,
    pub(crate) records: Vec<RecordState>,
}

/// A round-boundary snapshot of a [`Simulation`](crate::Simulation).
///
/// Capture one with
/// [`Simulation::checkpoint`](crate::Simulation::checkpoint) (valid at
/// any round boundary — i.e. whenever you hold `&self` outside
/// [`step`](crate::Simulation::step)), serialize with
/// [`Checkpoint::to_bytes`]/[`Checkpoint::save`], and resume with
/// [`SimulationBuilder::resume`](crate::SimulationBuilder::resume) on a
/// builder configured identically (the shard count and event sink are
/// free to differ — neither is observable).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Digest of the defining tuple `(topology, config, fault model,
    /// crash schedule, adversary, seed)`; resume refuses a mismatch.
    pub(crate) config_digest: u64,
    pub(crate) round: u64,
    pub(crate) next_message_id: u64,
    pub(crate) started: bool,
    pub(crate) completed: bool,
    pub(crate) injector_rng: [u64; 4],
    pub(crate) injector_spare: Option<f64>,
    pub(crate) tally_upsets: u64,
    pub(crate) tally_overflow_drops: u64,
    pub(crate) tally_skew_draws: u64,
    pub(crate) chaos_states: Vec<[u64; 4]>,
    pub(crate) byz_states: Vec<(u64, [u64; 4])>,
    pub(crate) byz_last_frames: Vec<(u64, u64, Vec<u8>)>,
    pub(crate) tiles_alive: Vec<bool>,
    pub(crate) links_alive: Vec<bool>,
    pub(crate) clocks: Vec<(f64, u64)>,
    pub(crate) egress_next: Vec<Option<u64>>,
    pub(crate) buffers: Vec<BufferState>,
    pub(crate) inbox_next: Vec<Vec<FrameState>>,
    pub(crate) inbox_later: Vec<Vec<FrameState>>,
    pub(crate) informed: Vec<(u64, u64)>,
    pub(crate) terminated: Vec<u64>,
    pub(crate) report: ReportState,
}

impl Checkpoint {
    /// The round boundary this checkpoint was taken at (number of
    /// rounds fully executed before capture).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Digest of the simulation's defining configuration tuple. Two
    /// checkpoints are resumable into the same builder iff their
    /// digests agree.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Serializes into the versioned binary wire format.
    ///
    /// The encoding is deterministic: the same engine state always
    /// produces the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes_raw(MAGIC);
        w.u32(VERSION);
        w.u64(self.config_digest);
        w.u64(self.round);
        w.u64(self.next_message_id);
        w.bool(self.started);
        w.bool(self.completed);
        for word in self.injector_rng {
            w.u64(word);
        }
        w.opt_f64(self.injector_spare);
        w.u64(self.tally_upsets);
        w.u64(self.tally_overflow_drops);
        w.u64(self.tally_skew_draws);
        w.u64(self.chaos_states.len() as u64);
        for state in &self.chaos_states {
            for &word in state {
                w.u64(word);
            }
        }
        w.u64(self.byz_states.len() as u64);
        for (tile, state) in &self.byz_states {
            w.u64(*tile);
            for &word in state {
                w.u64(word);
            }
        }
        w.u64(self.byz_last_frames.len() as u64);
        for (tile, id, frame) in &self.byz_last_frames {
            w.u64(*tile);
            w.u64(*id);
            w.bytes(frame);
        }
        w.bools(&self.tiles_alive);
        w.bools(&self.links_alive);
        w.u64(self.clocks.len() as u64);
        for &(skew, slips) in &self.clocks {
            w.f64(skew);
            w.u64(slips);
        }
        w.u64(self.egress_next.len() as u64);
        for &cursor in &self.egress_next {
            w.opt_u64(cursor);
        }
        w.u64(self.buffers.len() as u64);
        for buffer in &self.buffers {
            w.u64(buffer.messages.len() as u64);
            for m in &buffer.messages {
                w.u64(m.id);
                w.u64(m.source);
                w.u64(m.destination);
                w.u8(m.ttl);
                w.bytes(&m.payload);
            }
            w.u64(buffer.seen.len() as u64);
            for &id in &buffer.seen {
                w.u64(id);
            }
            w.u64(buffer.expired);
        }
        for arena in [&self.inbox_next, &self.inbox_later] {
            w.u64(arena.len() as u64);
            for frames in arena {
                w.u64(frames.len() as u64);
                for frame in frames {
                    w.bytes(&frame.bytes);
                    w.bool(frame.scrambled);
                    w.opt_u64(frame.via);
                }
            }
        }
        w.u64(self.informed.len() as u64);
        for &(id, count) in &self.informed {
            w.u64(id);
            w.u64(count);
        }
        w.u64(self.terminated.len() as u64);
        for &id in &self.terminated {
            w.u64(id);
        }
        let r = &self.report;
        w.u64(r.rounds_executed);
        w.bool(r.completed);
        w.u64(r.packets_sent);
        w.u64(r.bits_sent);
        w.u64(r.upsets_detected);
        w.u64(r.upsets_undetected);
        w.u64(r.overflow_drops);
        w.u64(r.crash_drops);
        w.u64(r.clock_slips);
        w.u64(r.ttl_expirations);
        w.u64(r.partition_drops);
        w.u64(r.byzantine_forges);
        w.u64(r.byzantine_replays);
        w.u64(r.adversarial_delays);
        w.u64(r.adversarial_reorders);
        w.u64(r.quiescent_rounds);
        w.u64(r.records.len() as u64);
        for rec in &r.records {
            w.u64(rec.id);
            w.u64(rec.source);
            w.u64(rec.destination);
            w.u64(rec.injected_round);
            w.opt_u64(rec.delivered_round);
            w.u64(rec.frame_bits);
        }
        w.into_bytes()
    }

    /// Decodes a checkpoint previously produced by
    /// [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on a bad magic, an unsupported
    /// version, truncation, or trailing bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(data);
        if r.bytes_raw(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let config_digest = r.u64()?;
        let round = r.u64()?;
        let next_message_id = r.u64()?;
        let started = r.bool()?;
        let completed = r.bool()?;
        let mut injector_rng = [0u64; 4];
        for word in &mut injector_rng {
            *word = r.u64()?;
        }
        let injector_spare = r.opt_f64()?;
        let tally_upsets = r.u64()?;
        let tally_overflow_drops = r.u64()?;
        let tally_skew_draws = r.u64()?;
        let chaos_states = {
            let count = r.len()?;
            let mut states = Vec::with_capacity(count);
            for _ in 0..count {
                let mut state = [0u64; 4];
                for word in &mut state {
                    *word = r.u64()?;
                }
                states.push(state);
            }
            states
        };
        let byz_states = {
            let count = r.len()?;
            let mut states = Vec::with_capacity(count);
            for _ in 0..count {
                let tile = r.u64()?;
                let mut state = [0u64; 4];
                for word in &mut state {
                    *word = r.u64()?;
                }
                states.push((tile, state));
            }
            states
        };
        let byz_last_frames = {
            let count = r.len()?;
            let mut frames = Vec::with_capacity(count);
            for _ in 0..count {
                let tile = r.u64()?;
                let id = r.u64()?;
                let frame = r.bytes()?;
                frames.push((tile, id, frame));
            }
            frames
        };
        let tiles_alive = r.bools()?;
        let links_alive = r.bools()?;
        let clocks = {
            let count = r.len()?;
            let mut clocks = Vec::with_capacity(count);
            for _ in 0..count {
                let skew = r.f64()?;
                let slips = r.u64()?;
                clocks.push((skew, slips));
            }
            clocks
        };
        let egress_next = {
            let count = r.len()?;
            let mut cursors = Vec::with_capacity(count);
            for _ in 0..count {
                cursors.push(r.opt_u64()?);
            }
            cursors
        };
        let buffers = {
            let count = r.len()?;
            let mut buffers = Vec::with_capacity(count);
            for _ in 0..count {
                let messages = {
                    let count = r.len()?;
                    let mut messages = Vec::with_capacity(count);
                    for _ in 0..count {
                        messages.push(MessageState {
                            id: r.u64()?,
                            source: r.u64()?,
                            destination: r.u64()?,
                            ttl: r.u8()?,
                            payload: r.bytes()?,
                        });
                    }
                    messages
                };
                let seen = {
                    let count = r.len()?;
                    let mut seen = Vec::with_capacity(count);
                    for _ in 0..count {
                        seen.push(r.u64()?);
                    }
                    seen
                };
                let expired = r.u64()?;
                buffers.push(BufferState {
                    messages,
                    seen,
                    expired,
                });
            }
            buffers
        };
        let mut arenas = Vec::with_capacity(2);
        for _ in 0..2 {
            let tiles = r.len()?;
            let mut arena = Vec::with_capacity(tiles);
            for _ in 0..tiles {
                let count = r.len()?;
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    frames.push(FrameState {
                        bytes: r.bytes()?,
                        scrambled: r.bool()?,
                        via: r.opt_u64()?,
                    });
                }
                arena.push(frames);
            }
            arenas.push(arena);
        }
        let inbox_later = arenas.pop().unwrap_or_default();
        let inbox_next = arenas.pop().unwrap_or_default();
        let informed = {
            let count = r.len()?;
            let mut informed = Vec::with_capacity(count);
            for _ in 0..count {
                let id = r.u64()?;
                let n = r.u64()?;
                informed.push((id, n));
            }
            informed
        };
        let terminated = {
            let count = r.len()?;
            let mut terminated = Vec::with_capacity(count);
            for _ in 0..count {
                terminated.push(r.u64()?);
            }
            terminated
        };
        let report = ReportState {
            rounds_executed: r.u64()?,
            completed: r.bool()?,
            packets_sent: r.u64()?,
            bits_sent: r.u64()?,
            upsets_detected: r.u64()?,
            upsets_undetected: r.u64()?,
            overflow_drops: r.u64()?,
            crash_drops: r.u64()?,
            clock_slips: r.u64()?,
            ttl_expirations: r.u64()?,
            partition_drops: r.u64()?,
            byzantine_forges: r.u64()?,
            byzantine_replays: r.u64()?,
            adversarial_delays: r.u64()?,
            adversarial_reorders: r.u64()?,
            quiescent_rounds: r.u64()?,
            records: {
                let count = r.len()?;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(RecordState {
                        id: r.u64()?,
                        source: r.u64()?,
                        destination: r.u64()?,
                        injected_round: r.u64()?,
                        delivered_round: r.opt_u64()?,
                        frame_bits: r.u64()?,
                    });
                }
                records
            },
        };
        let remaining = r.remaining();
        if remaining != 0 {
            return Err(CheckpointError::TrailingBytes(remaining));
        }
        Ok(Checkpoint {
            config_digest,
            round,
            next_message_id,
            started,
            completed,
            injector_rng,
            injector_spare,
            tally_upsets,
            tally_overflow_drops,
            tally_skew_draws,
            chaos_states,
            byz_states,
            byz_last_frames,
            tiles_alive,
            links_alive,
            clocks,
            egress_next,
            buffers,
            inbox_next,
            inbox_later,
            informed,
            terminated,
            report,
        })
    }

    /// Writes the serialized checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the write fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads and decodes a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the read fails, or any decode
    /// error from [`Checkpoint::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path.as_ref()).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }
}

/// Little-endian binary writer over a growable buffer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn bytes_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
            None => self.u8(0),
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.bytes_raw(bytes);
    }

    fn bools(&mut self, bools: &[bool]) {
        self.u64(bools.len() as u64);
        for &b in bools {
            self.bool(b);
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn bytes_raw(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes_raw(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let raw = self.bytes_raw(4)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(raw);
        Ok(u32::from_le_bytes(le))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let raw = self.bytes_raw(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(u64::from_le_bytes(le))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-bounded by the remaining byte count so a
    /// corrupt stream cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 * 8 + 8 {
            return Err(CheckpointError::Truncated);
        }
        Ok(len as usize)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.len()?;
        Ok(self.bytes_raw(len)?.to_vec())
    }

    fn bools(&mut self) -> Result<Vec<bool>, CheckpointError> {
        let len = self.len()?;
        let raw = self.bytes_raw(len)?;
        Ok(raw.iter().map(|&b| b != 0).collect())
    }
}

/// FNV-1a over a byte stream — the digest primitive behind
/// [`Checkpoint::config_digest`]. Stable across processes and
/// platforms; not cryptographic (it guards against honest mistakes,
/// not adversaries).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> Checkpoint {
        Checkpoint {
            config_digest: 0xDEAD_BEEF,
            round: 3,
            next_message_id: 2,
            started: true,
            completed: false,
            injector_rng: [1, 2, 3, 4],
            injector_spare: Some(-0.75),
            tally_upsets: 5,
            tally_overflow_drops: 6,
            tally_skew_draws: 7,
            chaos_states: vec![[9, 8, 7, 6]],
            byz_states: vec![(2, [5, 4, 3, 2])],
            byz_last_frames: vec![(2, 0, vec![0xAA, 0xBB])],
            tiles_alive: vec![true, false, true],
            links_alive: vec![true, true],
            clocks: vec![(0.25, 1), (0.0, 0), (-0.4, 3)],
            egress_next: vec![None, Some(1), None],
            buffers: vec![
                BufferState {
                    messages: vec![MessageState {
                        id: 0,
                        source: 0,
                        destination: 2,
                        ttl: 4,
                        payload: vec![1, 2, 3],
                    }],
                    seen: vec![0],
                    expired: 1,
                },
                BufferState::default(),
                BufferState::default(),
            ],
            inbox_next: vec![
                vec![FrameState {
                    bytes: vec![7, 7, 7],
                    scrambled: true,
                    via: Some(1),
                }],
                Vec::new(),
                Vec::new(),
            ],
            inbox_later: vec![Vec::new(), Vec::new(), Vec::new()],
            informed: vec![(0, 2)],
            terminated: vec![1],
            report: ReportState {
                rounds_executed: 3,
                completed: false,
                packets_sent: 11,
                bits_sent: 1776,
                records: vec![RecordState {
                    id: 0,
                    source: 0,
                    destination: 2,
                    injected_round: 0,
                    delivered_round: Some(2),
                    frame_bits: 88,
                }],
                ..ReportState::default()
            },
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let ck = tiny_checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck, back);
        assert_eq!(bytes, back.to_bytes(), "re-encoding is stable");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = tiny_checkpoint().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = tiny_checkpoint().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_every_truncation() {
        let bytes = tiny_checkpoint().to_bytes();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::TrailingBytes(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = tiny_checkpoint().to_bytes();
        bytes.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::TrailingBytes(1))
        );
    }

    #[test]
    fn nan_spare_survives_the_round_trip_bitwise() {
        // f64 fields travel as raw bits, so even a NaN spare (never
        // produced by Box–Muller, but the format must not care) is
        // restored bit-exactly.
        let mut ck = tiny_checkpoint();
        ck.injector_spare = Some(f64::from_bits(0x7FF8_0000_0000_0001));
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(
            back.injector_spare.map(f64::to_bits),
            ck.injector_spare.map(f64::to_bits)
        );
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(CheckpointError::Mismatch("seed")
            .to_string()
            .contains("seed"));
        assert!(CheckpointError::Io("denied".into())
            .to_string()
            .contains("denied"));
        assert!(CheckpointError::TrailingBytes(3).to_string().contains('3'));
    }
}
