//! The five-parameter DSM fault model and its builder.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error_vector::ErrorModel;

/// How buffer overflow losses are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowMode {
    /// Each received packet is independently dropped with `p_overflow`
    /// (the sweep axis used by the paper's MP3 experiments).
    #[default]
    Probabilistic,
    /// Receive buffers have the given finite capacity (in packets); on
    /// overflow the *oldest* buffered packet is dropped first, exactly as
    /// described in §4.2.
    Structural {
        /// Buffer capacity in packets.
        capacity: usize,
    },
}

/// The stochastic failure model of Chapter 2.
///
/// Construct via [`FaultModel::builder`]; [`FaultModel::none`] is the
/// fault-free configuration. All probabilities are validated to lie in
/// `[0, 1]` and `sigma_synch` (expressed as a fraction of the round
/// duration `T_R`) must be non-negative.
///
/// # Examples
///
/// ```
/// use noc_faults::FaultModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::builder()
///     .p_tiles(0.05)
///     .p_links(0.02)
///     .p_upset(0.3)
///     .p_overflow(0.1)
///     .sigma_synch(0.2)
///     .build()?;
/// assert_eq!(model.p_upset, 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that a tile is affected by a crash failure.
    pub p_tiles: f64,
    /// Probability that a link is affected by a crash failure.
    pub p_links: f64,
    /// Probability that a packet is scrambled by a data upset per link
    /// traversal.
    pub p_upset: f64,
    /// Probability that a packet is dropped because of buffer overflow.
    pub p_overflow: f64,
    /// Standard deviation of the round duration, as a fraction of `T_R`.
    pub sigma_synch: f64,
    /// Which analytical model generates upset error vectors.
    pub error_model: ErrorModel,
    /// How overflow losses are applied.
    pub overflow_mode: OverflowMode,
}

/// Error returned when a fault-model parameter is out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFaultModel {
    /// Name of the offending parameter.
    pub parameter: &'static str,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl fmt::Display for InvalidFaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault model: {} {}", self.parameter, self.reason)
    }
}

impl Error for InvalidFaultModel {}

impl FaultModel {
    /// The fault-free model (all probabilities zero).
    pub fn none() -> Self {
        Self::default()
    }

    /// Starts building a model.
    pub fn builder() -> FaultModelBuilder {
        FaultModelBuilder::new()
    }

    /// True if every failure probability is zero and clocks are ideal.
    pub fn is_fault_free(&self) -> bool {
        self.p_tiles == 0.0
            && self.p_links == 0.0
            && self.p_upset == 0.0
            && self.p_overflow == 0.0
            && self.sigma_synch == 0.0
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFaultModel`] naming the first out-of-range
    /// parameter.
    pub fn validate(&self) -> Result<(), InvalidFaultModel> {
        let probs = [
            ("p_tiles", self.p_tiles),
            ("p_links", self.p_links),
            ("p_upset", self.p_upset),
            ("p_overflow", self.p_overflow),
        ];
        for (name, v) in probs {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(InvalidFaultModel {
                    parameter: name,
                    reason: format!("= {v} is not a probability in [0, 1]"),
                });
            }
        }
        if self.sigma_synch < 0.0 || self.sigma_synch.is_nan() {
            return Err(InvalidFaultModel {
                parameter: "sigma_synch",
                reason: format!("= {} must be non-negative", self.sigma_synch),
            });
        }
        if let OverflowMode::Structural { capacity } = self.overflow_mode {
            if capacity == 0 {
                return Err(InvalidFaultModel {
                    parameter: "overflow_mode",
                    reason: "structural buffer capacity must be at least 1".to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`FaultModel`].
///
/// All parameters default to the fault-free values.
#[derive(Debug, Clone, Default)]
pub struct FaultModelBuilder {
    model: FaultModel,
}

impl FaultModelBuilder {
    /// Creates a builder with all parameters at their fault-free defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tile crash probability.
    pub fn p_tiles(mut self, p: f64) -> Self {
        self.model.p_tiles = p;
        self
    }

    /// Sets the link crash probability.
    pub fn p_links(mut self, p: f64) -> Self {
        self.model.p_links = p;
        self
    }

    /// Sets the per-traversal data-upset probability.
    pub fn p_upset(mut self, p: f64) -> Self {
        self.model.p_upset = p;
        self
    }

    /// Sets the buffer-overflow drop probability.
    pub fn p_overflow(mut self, p: f64) -> Self {
        self.model.p_overflow = p;
        self
    }

    /// Sets the synchronization-error standard deviation (fraction of
    /// `T_R`).
    pub fn sigma_synch(mut self, sigma: f64) -> Self {
        self.model.sigma_synch = sigma;
        self
    }

    /// Selects the analytical error-vector model for upsets.
    pub fn error_model(mut self, model: ErrorModel) -> Self {
        self.model.error_model = model;
        self
    }

    /// Selects how overflow losses are applied.
    pub fn overflow_mode(mut self, mode: OverflowMode) -> Self {
        self.model.overflow_mode = mode;
        self
    }

    /// Validates and returns the model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFaultModel`] if any parameter is out of range.
    pub fn build(self) -> Result<FaultModel, InvalidFaultModel> {
        self.model.validate()?;
        Ok(self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_fault_free() {
        let m = FaultModel::none();
        assert!(m.is_fault_free());
        m.validate().unwrap();
    }

    #[test]
    fn builder_sets_every_field() {
        let m = FaultModel::builder()
            .p_tiles(0.1)
            .p_links(0.2)
            .p_upset(0.3)
            .p_overflow(0.4)
            .sigma_synch(0.5)
            .error_model(ErrorModel::RandomBitError)
            .overflow_mode(OverflowMode::Structural { capacity: 8 })
            .build()
            .unwrap();
        assert_eq!(m.p_tiles, 0.1);
        assert_eq!(m.p_links, 0.2);
        assert_eq!(m.p_upset, 0.3);
        assert_eq!(m.p_overflow, 0.4);
        assert_eq!(m.sigma_synch, 0.5);
        assert_eq!(m.error_model, ErrorModel::RandomBitError);
        assert_eq!(m.overflow_mode, OverflowMode::Structural { capacity: 8 });
        assert!(!m.is_fault_free());
    }

    #[test]
    fn out_of_range_probability_is_rejected() {
        let err = FaultModel::builder().p_upset(1.5).build().unwrap_err();
        assert_eq!(err.parameter, "p_upset");
        assert!(err.to_string().contains("p_upset"));
    }

    #[test]
    fn negative_sigma_is_rejected() {
        let err = FaultModel::builder().sigma_synch(-0.1).build().unwrap_err();
        assert_eq!(err.parameter, "sigma_synch");
    }

    #[test]
    fn nan_probability_is_rejected() {
        let err = FaultModel::builder().p_tiles(f64::NAN).build().unwrap_err();
        assert_eq!(err.parameter, "p_tiles");
    }

    #[test]
    fn zero_capacity_structural_buffer_is_rejected() {
        let err = FaultModel::builder()
            .overflow_mode(OverflowMode::Structural { capacity: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err.parameter, "overflow_mode");
    }

    #[test]
    fn boundary_probabilities_are_accepted() {
        FaultModel::builder()
            .p_upset(1.0)
            .p_overflow(0.0)
            .build()
            .unwrap();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_in_range_model_validates(
                pt in 0.0f64..=1.0,
                pl in 0.0f64..=1.0,
                pu in 0.0f64..=1.0,
                po in 0.0f64..=1.0,
                sg in 0.0f64..10.0,
            ) {
                let model = FaultModel::builder()
                    .p_tiles(pt)
                    .p_links(pl)
                    .p_upset(pu)
                    .p_overflow(po)
                    .sigma_synch(sg)
                    .build();
                prop_assert!(model.is_ok());
            }

            #[test]
            fn out_of_range_probabilities_never_validate(
                excess in 1.0f64..100.0,
            ) {
                let p = 1.0 + excess * f64::EPSILON.max(1e-9) + excess;
                prop_assert!(FaultModel::builder().p_upset(p).build().is_err());
                prop_assert!(FaultModel::builder().p_tiles(-p).build().is_err());
            }

            #[test]
            fn is_fault_free_iff_all_zero(
                pu in 0.0f64..=1.0,
            ) {
                let m = FaultModel::builder().p_upset(pu).build().unwrap();
                prop_assert_eq!(m.is_fault_free(), pu == 0.0);
            }
        }
    }
}
