//! Experiment harness regenerating every figure of *On-Chip Stochastic
//! Communication*.
//!
//! One module per figure; each exposes a `run(scale)` returning typed
//! rows and a `print(&rows)` that writes the same series the paper plots.
//! The `experiments` binary dispatches on a figure name:
//!
//! ```text
//! cargo run -p noc-experiments --release -- fig4-4
//! cargo run -p noc-experiments --release -- all --full
//! ```
//!
//! [`Scale::Quick`] keeps every experiment under a few seconds for CI;
//! [`Scale::Full`] uses paper-scale repetition counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod error_models;
pub mod fig3_1;
pub mod fig3_3;
pub mod fig4_10;
pub mod fig4_11;
pub mod fig4_4;
pub mod fig4_5;
pub mod fig4_6;
pub mod fig4_8;
pub mod fig4_9;
pub mod fig5_3;
pub mod grid_spread;
pub mod hostile;
pub mod mega_grid;
pub mod runner;
pub mod stats;

pub use runner::TrialRunner;

/// How much work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced grids/repetitions; seconds per figure. Used by tests.
    #[default]
    Quick,
    /// Paper-scale sweeps and averaging.
    Full,
}

impl Scale {
    /// Number of repeated simulations to average, per scale.
    pub fn repetitions(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }
}
