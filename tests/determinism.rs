//! Reproducibility guarantees: identical `(inputs, seed)` pairs must
//! produce bit-identical results across every layer of the stack.

use ocsc::noc_apps::mp3::{Mp3App, Mp3Params};
use ocsc::noc_diversity::{compare_architectures, ComparisonParams};
use ocsc::noc_experiments::{fig3_3, fig4_9, runner, Scale, TrialRunner};
use ocsc::noc_fabric::{Grid2d, NodeId};
use ocsc::noc_faults::FaultModel;
use ocsc::stochastic_noc::{seed, SimulationBuilder, StochasticConfig};

fn full_model() -> FaultModel {
    FaultModel::builder()
        .p_tiles(0.05)
        .p_links(0.05)
        .p_upset(0.3)
        .p_overflow(0.2)
        .sigma_synch(0.25)
        .build()
        .unwrap()
}

#[test]
fn engine_runs_are_bit_reproducible() {
    let run = |seed: u64| {
        let mut sim = SimulationBuilder::new(Grid2d::new(5, 5))
            .config(StochasticConfig::new(0.5, 16).unwrap().with_max_rounds(80))
            .fault_model(full_model())
            .seed(seed)
            .build();
        let a = sim.inject(NodeId(0), NodeId(24), b"one".to_vec());
        let b = sim.inject(NodeId(12), NodeId(3), b"two".to_vec());
        let report = sim.run();
        (
            report.packets_sent,
            report.bits_sent,
            report.upsets_detected,
            report.upsets_undetected,
            report.overflow_drops,
            report.crash_drops,
            report.clock_slips,
            report.latency(a),
            report.latency(b),
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds must diverge");
}

#[test]
fn application_outcomes_are_reproducible() {
    let run = || {
        let outcome = Mp3App::new(Mp3Params {
            frames: 8,
            fault_model: full_model(),
            config: StochasticConfig::new(0.7, 20).unwrap().with_max_rounds(400),
            seed: 11,
            ..Mp3Params::default()
        })
        .run();
        (
            outcome.frames_delivered,
            outcome.output_bits,
            outcome.arrival_rounds.clone(),
            outcome.report.packets_sent,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn architecture_comparison_is_reproducible() {
    let run = || {
        compare_architectures(&ComparisonParams::quick())
            .into_iter()
            .map(|r| (r.latency_rounds, r.transmissions))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn figure_rows_are_identical_for_any_thread_count() {
    // The same guarantee the `experiments` binary gives for
    // `--threads N`: figure rows (including every f64, compared via the
    // exact Debug rendering) must not depend on the worker count.
    let snapshot = |threads: usize| {
        runner::set_default_threads(threads);
        let rows = format!(
            "{:?}|{:?}",
            fig3_3::run(Scale::Quick),
            fig4_9::run(Scale::Quick)
        );
        let _ = runner::take_reports();
        rows
    };
    let baseline = snapshot(1);
    for threads in [2usize, 8] {
        assert_eq!(snapshot(threads), baseline, "threads={threads}");
    }
    runner::set_default_threads(0);
}

#[test]
fn trial_runner_matches_hand_rolled_serial_loop() {
    // The parallel runner must be a drop-in replacement for
    // `for i in 0..n { f(derive_trial_seed(base, i)) }`.
    let serial: Vec<u64> = (0..40)
        .map(|i| {
            let s = seed::derive_trial_seed(123, i);
            s.rotate_left((i % 63) as u32) ^ i
        })
        .collect();
    let parallel = TrialRunner::new(123, 40)
        .threads(8)
        .run_indexed(|i, s| s.rotate_left((i % 63) as u32) ^ i as u64);
    assert_eq!(parallel, serial);
}
