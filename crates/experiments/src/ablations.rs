//! **Ablations** — quantifying the design choices DESIGN.md calls out:
//!
//! 1. *Spread termination* (§3.2.2's early-termination remark): traffic
//!    and delivery with/without the delivered-message purge.
//! 2. *Overflow semantics*: the probabilistic drop model versus the
//!    structural drop-oldest finite buffer of §4.2.
//! 3. *CRC width*: goodput and undetected-corruption leakage under
//!    upsets for CRC-8 versus CRC-16 protection.
//! 4. *Topology*: grid versus torus latency/traffic at equal tile count.

use noc_crc::CrcParams;
use noc_fabric::{Grid2d, NodeId, Topology, WireCodec};
use noc_faults::{FaultModel, OverflowMode};
use stochastic_noc::{SimulationBuilder, StochasticConfig};

use crate::stats::mean;
use crate::{Scale, TrialRunner};

/// One ablation row: a labelled variant with its measured behaviour.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which ablation group the row belongs to.
    pub group: &'static str,
    /// The variant within the group.
    pub variant: String,
    /// Delivery ratio of the probe broadcasts.
    pub delivery_ratio: f64,
    /// Mean latency in rounds over delivered probes.
    pub latency_rounds: Option<f64>,
    /// Mean packets transmitted per run.
    pub packets: f64,
    /// Undetected corrupted deliveries per run (CRC ablation only).
    pub undetected: f64,
}

fn probe(
    builder: impl Fn(u64) -> SimulationBuilder + Sync,
    reps: u64,
    group: &'static str,
    variant: String,
) -> AblationRow {
    let label = format!("ablations/{group}/{variant}");
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| {
        let mut sim = builder(seed)
            .shards(crate::runner::default_shards())
            .build();
        let n = sim.node_count();
        let id = sim.inject(NodeId(0), NodeId(n - 1), vec![0x5A; 16]);
        let report = sim.run_to_report();
        (
            report.latency(id),
            report.packets_sent as f64,
            report.upsets_undetected as f64,
        )
    });
    let mut delivered = 0u64;
    let mut latencies = Vec::new();
    let mut packets = Vec::new();
    let mut undetected = Vec::new();
    for (latency, sent, upsets) in outcomes {
        if let Some(l) = latency {
            delivered += 1;
            latencies.push(l as f64);
        }
        packets.push(sent);
        undetected.push(upsets);
    }
    AblationRow {
        group,
        variant,
        delivery_ratio: delivered as f64 / reps as f64,
        latency_rounds: mean(&latencies),
        packets: mean(&packets).unwrap_or(0.0),
        undetected: mean(&undetected).unwrap_or(0.0),
    }
}

/// Runs all four ablation groups.
pub fn run(scale: Scale) -> Vec<AblationRow> {
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    };
    let mut rows = Vec::new();

    // 1. Spread termination.
    for terminate in [false, true] {
        rows.push(probe(
            move |seed| {
                SimulationBuilder::new(Grid2d::new(4, 4))
                    .config(
                        StochasticConfig::new(0.5, 16)
                            .expect("valid")
                            .with_max_rounds(60)
                            .with_termination(terminate),
                    )
                    .seed(seed)
            },
            reps,
            "spread termination",
            if terminate { "terminated" } else { "plain ttl" }.to_string(),
        ));
    }

    // 2. Overflow semantics at equal pressure.
    let probabilistic = FaultModel::builder()
        .p_overflow(0.3)
        .build()
        .expect("valid");
    rows.push(probe(
        move |seed| {
            SimulationBuilder::new(Grid2d::new(4, 4))
                .config(StochasticConfig::flooding(12).with_max_rounds(60))
                .fault_model(probabilistic)
                .seed(seed)
        },
        reps,
        "overflow semantics",
        "probabilistic p=0.3".to_string(),
    ));
    let structural = FaultModel::builder()
        .overflow_mode(OverflowMode::Structural { capacity: 2 })
        .build()
        .expect("valid");
    rows.push(probe(
        move |seed| {
            SimulationBuilder::new(Grid2d::new(4, 4))
                .config(StochasticConfig::flooding(12).with_max_rounds(60))
                .fault_model(structural)
                .seed(seed)
        },
        reps,
        "overflow semantics",
        "structural capacity=2".to_string(),
    ));

    // 3. CRC width under heavy upsets.
    for (label, params) in [
        ("crc-8", CrcParams::CRC8_ATM),
        ("crc-16", CrcParams::CRC16_CCITT),
    ] {
        let upsets = FaultModel::builder().p_upset(0.5).build().expect("valid");
        rows.push(probe(
            move |seed| {
                SimulationBuilder::new(Grid2d::new(4, 4))
                    .config(StochasticConfig::flooding(16).with_max_rounds(80))
                    .fault_model(upsets)
                    .wire_codec(WireCodec::new(params))
                    .seed(seed)
            },
            reps,
            "crc width",
            label.to_string(),
        ));
    }

    // 4. Grid vs torus at 36 tiles.
    rows.push(probe(
        |seed| {
            SimulationBuilder::new(Topology::grid(6, 6))
                .config(
                    StochasticConfig::new(0.5, 20)
                        .expect("valid")
                        .with_max_rounds(60),
                )
                .seed(seed)
        },
        reps,
        "topology",
        "grid 6x6".to_string(),
    ));
    rows.push(probe(
        |seed| {
            SimulationBuilder::new(Topology::torus(6, 6))
                .config(
                    StochasticConfig::new(0.5, 20)
                        .expect("valid")
                        .with_max_rounds(60),
                )
                .seed(seed)
        },
        reps,
        "topology",
        "torus 6x6".to_string(),
    ));

    rows
}

/// Prints the ablation table.
pub fn print(rows: &[AblationRow]) {
    crate::stats::print_table_header(
        "Ablations: design-choice impact on one diameter-spanning broadcast",
        &[
            "group",
            "variant",
            "delivery",
            "latency [rounds]",
            "packets",
            "undetected",
        ],
    );
    for r in rows {
        println!(
            "{}\t{}\t{:.2}\t{}\t{:.0}\t{:.2}",
            r.group,
            r.variant,
            r.delivery_ratio,
            r.latency_rounds
                .map_or("-".to_string(), |l| format!("{l:.1}")),
            r.packets,
            r.undetected
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [AblationRow], group: &str, variant: &str) -> &'a AblationRow {
        rows.iter()
            .find(|r| r.group == group && r.variant.contains(variant))
            .expect("row present")
    }

    #[test]
    fn termination_cuts_traffic_not_delivery() {
        let rows = run(Scale::Quick);
        let plain = row(&rows, "spread termination", "plain");
        let term = row(&rows, "spread termination", "terminated");
        assert_eq!(plain.delivery_ratio, term.delivery_ratio);
        assert!(
            term.packets < plain.packets / 2.0,
            "terminated {} vs plain {}",
            term.packets,
            plain.packets
        );
    }

    #[test]
    fn both_overflow_modes_lose_packets_but_deliver() {
        let rows = run(Scale::Quick);
        for variant in ["probabilistic", "structural"] {
            let r = row(&rows, "overflow semantics", variant);
            assert!(r.delivery_ratio >= 0.8, "{variant}: {}", r.delivery_ratio);
        }
    }

    #[test]
    fn wider_crc_leaks_no_more_than_narrow() {
        let rows = run(Scale::Quick);
        let narrow = row(&rows, "crc width", "crc-8");
        let wide = row(&rows, "crc width", "crc-16");
        assert!(wide.undetected <= narrow.undetected + 1e-9);
        assert_eq!(wide.delivery_ratio, 1.0, "flooding defeats 50% upsets");
    }

    #[test]
    fn torus_beats_grid_on_latency() {
        let rows = run(Scale::Quick);
        let grid = row(&rows, "topology", "grid").latency_rounds.unwrap();
        let torus = row(&rows, "topology", "torus").latency_rounds.unwrap();
        assert!(
            torus < grid,
            "torus {torus} should beat grid {grid} (diameter 6 vs 10)"
        );
    }
}
