//! Payload serialization helpers shared by the applications.
//!
//! Application messages are small tagged binary structures; these helpers
//! keep the encoding compact and the decoding total (corrupted payloads
//! that leak past the CRC must never panic an IP core).

/// Writes a `u32` (big-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Writes an `f64`.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Writes a length-prefixed `f64` slice.
pub fn put_f64_slice(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f64(buf, v);
    }
}

/// A bounds-checked reader over a payload.
#[derive(Debug, Clone)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> PayloadReader<'a> {
    /// Creates a reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, cursor: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.cursor
    }

    /// Reads a `u8`; `None` if exhausted.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.cursor)?;
        self.cursor += 1;
        Some(v)
    }

    /// Reads a big-endian `u32`; `None` if exhausted.
    pub fn u32(&mut self) -> Option<u32> {
        let end = self.cursor.checked_add(4)?;
        let slice = self.bytes.get(self.cursor..end)?;
        self.cursor = end;
        Some(u32::from_be_bytes(slice.try_into().ok()?))
    }

    /// Reads an `f64`; `None` if exhausted.
    pub fn f64(&mut self) -> Option<f64> {
        let end = self.cursor.checked_add(8)?;
        let slice = self.bytes.get(self.cursor..end)?;
        self.cursor = end;
        Some(f64::from_be_bytes(slice.try_into().ok()?))
    }

    /// Reads a length-prefixed `f64` vector with a sanity cap; `None` on
    /// truncation or an implausible length (corrupt payload defense).
    pub fn f64_slice(&mut self) -> Option<Vec<f64>> {
        let len = self.u32()? as usize;
        if len > self.remaining() / 8 {
            return None;
        }
        (0..len).map(|_| self.f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = vec![7u8];
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_f64(&mut buf, -1.5);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.f64(), Some(-1.5));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None);
    }

    #[test]
    fn round_trip_slices() {
        let values = [1.0, -2.5, 3.25];
        let mut buf = Vec::new();
        put_f64_slice(&mut buf, &values);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.f64_slice(), Some(values.to_vec()));
    }

    #[test]
    fn empty_slice_round_trips() {
        let mut buf = Vec::new();
        put_f64_slice(&mut buf, &[]);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.f64_slice(), Some(vec![]));
    }

    #[test]
    fn corrupt_length_is_rejected_not_panicking() {
        // Claim 2^31 floats but provide 4 bytes.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.f64_slice(), None);
    }

    #[test]
    fn truncated_reads_return_none() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), None);
        let mut r = PayloadReader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(r.u32(), Some(0x01020304));
        assert_eq!(r.f64(), None);
    }
}
