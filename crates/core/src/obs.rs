//! Engine-side handles into the wall-clock observability plane.
//!
//! [`EngineObs`] bundles the `noc-obs` instruments the round loop
//! records into: one `engine_phase_seconds{phase=...}` histogram per
//! engine phase and an `engine_rounds_total` counter. It is installed
//! through [`crate::SimulationBuilder::obs`] (or the
//! [`crate::SimulationBuilder::build_with_obs`] shorthand) and lives in
//! `Option<EngineObs>` inside the engine, so the default path pays one
//! `Option` test per phase per round and nothing else.
//!
//! Two-plane contract (DESIGN.md §13): nothing recorded here can feed
//! back into the simulation. The handles are write-only from the
//! engine's perspective — no branch, draw, or report field ever reads
//! them — so reports, event streams, and golden digests are
//! byte-identical with or without an `EngineObs` installed.

use noc_obs::{Counter, Histogram, Metrics, Stopwatch};

/// The engine phases timed on the wall-clock plane.
///
/// `Tape` covers the serial main-thread pre-passes that draw RNG onto
/// replay tapes (receive-fault tape, forward tape); `ShardFanout` the
/// scoped-worker execution of a phase across shards; `Merge` the
/// main-thread replay of worker results in deterministic order;
/// `Quiescence` the end-of-round frontier/inflight bookkeeping that
/// decides termination; `Round` a whole sequential (shards = 1) round,
/// where the sharded breakdown does not apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Serial RNG pre-pass building a replay tape.
    Tape,
    /// Fan-out of one phase across scoped shard workers.
    ShardFanout,
    /// Deterministic main-thread merge of shard outputs.
    Merge,
    /// End-of-round quiescence detection and termination bookkeeping.
    Quiescence,
    /// One whole round of the sequential engine.
    Round,
}

impl EnginePhase {
    fn label(self) -> &'static str {
        match self {
            EnginePhase::Tape => "tape",
            EnginePhase::ShardFanout => "shard_fanout",
            EnginePhase::Merge => "merge",
            EnginePhase::Quiescence => "quiescence",
            EnginePhase::Round => "round",
        }
    }
}

/// Wall-clock instruments for one engine. Cloning shares the underlying
/// registry slots, so one `EngineObs` can be handed to many builds and
/// the spans accumulate.
#[derive(Clone)]
pub struct EngineObs {
    tape: Histogram,
    shard_fanout: Histogram,
    merge: Histogram,
    quiescence: Histogram,
    round: Histogram,
    rounds: Counter,
}

impl EngineObs {
    /// Registers (or re-attaches to) the engine instruments in
    /// `metrics`.
    pub fn new(metrics: &Metrics) -> Self {
        let phase =
            |p: EnginePhase| metrics.histogram("engine_phase_seconds", &[("phase", p.label())]);
        EngineObs {
            tape: phase(EnginePhase::Tape),
            shard_fanout: phase(EnginePhase::ShardFanout),
            merge: phase(EnginePhase::Merge),
            quiescence: phase(EnginePhase::Quiescence),
            round: phase(EnginePhase::Round),
            rounds: metrics.counter("engine_rounds_total", &[]),
        }
    }

    /// Records one completed span against a phase histogram.
    pub(crate) fn record(&self, phase: EnginePhase, span: Stopwatch) {
        let hist = match phase {
            EnginePhase::Tape => &self.tape,
            EnginePhase::ShardFanout => &self.shard_fanout,
            EnginePhase::Merge => &self.merge,
            EnginePhase::Quiescence => &self.quiescence,
            EnginePhase::Round => &self.round,
        };
        hist.observe(&span);
    }

    /// Counts one executed round.
    pub(crate) fn count_round(&self) {
        self.rounds.inc();
    }
}

/// Starts a span iff the wall-clock plane is installed. The `None` path
/// is a single branch — the cost the default build pays per phase.
#[inline]
pub(crate) fn span_start(obs: &Option<EngineObs>) -> Option<Stopwatch> {
    obs.as_ref().map(|_| Stopwatch::start())
}

/// Ends a span started by [`span_start`].
#[inline]
pub(crate) fn span_end(obs: &Option<EngineObs>, phase: EnginePhase, span: Option<Stopwatch>) {
    if let (Some(obs), Some(span)) = (obs.as_ref(), span) {
        obs.record(phase, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_the_right_phase() {
        let metrics = Metrics::new();
        let obs = Some(EngineObs::new(&metrics));
        let span = span_start(&obs);
        assert!(span.is_some());
        span_end(&obs, EnginePhase::Merge, span);
        if let Some(o) = &obs {
            o.count_round();
        }
        let snap = metrics.snapshot();
        let merge = snap
            .histograms
            .iter()
            .find(|h| h.labels == vec![("phase".to_string(), "merge".to_string())])
            .expect("merge histogram registered");
        assert_eq!(merge.count, 1);
        let tape = snap
            .histograms
            .iter()
            .find(|h| h.labels == vec![("phase".to_string(), "tape".to_string())])
            .expect("tape histogram registered");
        assert_eq!(tape.count, 0, "no tape span was recorded");
        assert_eq!(metrics.counter_value("engine_rounds_total"), Some(1));
    }

    #[test]
    fn disabled_plane_starts_no_spans() {
        let obs: Option<EngineObs> = None;
        assert!(span_start(&obs).is_none());
        // And ending a never-started span is a no-op.
        span_end(&obs, EnginePhase::Round, None);
    }
}
