//! A stochastic failure model for networks-on-chip.
//!
//! Implements Chapter 2 of Dumitraş's *On-Chip Stochastic Communication*:
//! the deep-sub-micron failure modes that a NoC communication scheme must
//! survive, parameterised by
//!
//! * `p_tiles`, `p_links` — probability that a tile/link suffers a crash
//!   failure (dead from the start, or scheduled mid-run),
//! * `p_upset` — probability that a packet is scrambled by a data upset
//!   while crossing a link,
//! * `p_overflow` — probability that a packet is dropped because of buffer
//!   overflow,
//! * `σ_synchr` — standard deviation of the round duration, modelling
//!   synchronization errors between per-tile clock domains (GALS).
//!
//! The chapter's two analytical error models are implemented in
//! [`ErrorModel`]: the **random error vector** model (all `2^n − 1`
//! non-null vectors equally likely, `p_v ≈ p_upset / 2^n`) and the
//! **random bit error** model (independent bit flips, `p_b ≈ p_upset / n`).
//!
//! # Examples
//!
//! ```
//! use noc_faults::{FaultInjector, FaultModel};
//!
//! let model = FaultModel::builder()
//!     .p_upset(0.3)
//!     .p_overflow(0.1)
//!     .build()
//!     .expect("probabilities in range");
//! let mut injector = FaultInjector::new(model, 42);
//!
//! let mut packet = vec![0xAB, 0xCD, 0xEF];
//! if injector.upset_occurs() {
//!     injector.scramble(&mut packet);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod error_vector;
mod injector;
mod model;
mod rng;
mod sweep;

pub use adversary::{
    AdversarialScenario, AdversarialScenarioBuilder, ByzantineMode, ByzantineSet, InvalidScenario,
    LinkChaos, PartitionCut, PartitionSchedule,
};
pub use error_vector::{bit_error_probability, vector_probability, ErrorModel};
pub use injector::{CrashSchedule, FaultInjector, InjectionTally, InjectorSnapshot};
pub use model::{FaultModel, FaultModelBuilder, InvalidFaultModel, OverflowMode};
pub use rng::GaussianSampler;
pub use sweep::{linspace, FaultSweep};
