//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this vendored crate re-implements exactly the API subset the
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is a xoshiro256++ generator seeded through SplitMix64,
//! matching the seeding recipe the upstream crate documents for
//! `seed_from_u64`. Streams are deterministic for a given seed but are
//! **not** bit-compatible with upstream `rand`; nothing in this
//! workspace depends on the exact stream, only on determinism and
//! statistical quality.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing random-value API, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn split_mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = split_mix64(&mut state);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for checkpointing.
        ///
        /// Feeding the words back through [`StdRng::from_state`]
        /// reconstructs a generator that continues the stream exactly
        /// where this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        ///
        /// The all-zero state is absorbing for xoshiro and can never be
        /// produced by [`SeedableRng::seed_from_u64`] or by stepping, so
        /// it is replaced with the seeding guard constant.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
