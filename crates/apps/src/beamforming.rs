//! Acoustic delay-and-sum beamforming — the Chapter 5 on-chip diversity
//! workload.
//!
//! The paper cites a 3-D ultrasound beamforming experiment as the traffic
//! source for comparing flat, hierarchical and bus-connected NoC
//! architectures. As documented in DESIGN.md, the original application is
//! substituted by a from-scratch delay-and-sum beamformer over synthetic
//! microphone-array data: `M` sensor IPs each stream sample blocks to a
//! beamformer IP, which aligns them with per-sensor integer delays and
//! sums. The communication pattern — many-to-one streaming across the
//! fabric — is what the architecture comparison measures.

use std::cell::RefCell;
use std::rc::Rc;

use noc_fabric::{IpContext, IpCore, NodeId, Topology};
use noc_faults::FaultModel;
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

use crate::wire::{put_f64_slice, put_u32, PayloadReader};

const TAG_BLOCK: u8 = 31;

/// Samples per streamed block.
pub const BLOCK_SAMPLES: usize = 32;

/// Parameters of a beamforming run (topology-agnostic: the caller picks
/// the fabric and placement, which is the point of the Chapter 5 study).
#[derive(Debug, Clone)]
pub struct BeamformingParams {
    /// Number of blocks each sensor streams.
    pub blocks: u32,
    /// Rounds between blocks from each sensor.
    pub block_interval: u64,
    /// Per-sensor alignment delays in samples (length = sensor count).
    pub delays: Vec<usize>,
    /// Protocol configuration.
    pub config: StochasticConfig,
    /// Fault model.
    pub fault_model: FaultModel,
    /// RNG seed.
    pub seed: u64,
}

impl BeamformingParams {
    /// A default setup for `sensors` microphones: small staggered delays,
    /// 8 blocks per sensor, one block every 2 rounds.
    pub fn for_sensors(sensors: usize) -> Self {
        Self {
            blocks: 8,
            block_interval: 2,
            delays: (0..sensors).map(|s| s % 4).collect(),
            config: StochasticConfig::default().with_max_rounds(400),
            fault_model: FaultModel::none(),
            seed: 0,
        }
    }
}

/// Outcome of a beamforming run.
#[derive(Debug, Clone)]
pub struct BeamformingOutcome {
    /// Did the beamformer assemble every block from every sensor?
    pub completed: bool,
    /// Round of the last assembled block.
    pub completion_round: Option<u64>,
    /// Blocks fully assembled (all sensors present).
    pub blocks_assembled: u32,
    /// Mean output power of the beamformed signal.
    pub output_power: f64,
    /// Full engine report.
    pub report: SimulationReport,
}

struct SensorIp {
    beamformer: NodeId,
    sensor_index: u32,
    delay: usize,
    blocks: u32,
    interval: u64,
    sent: u32,
}

impl SensorIp {
    /// The common source signal all microphones observe (a two-tone
    /// chirp-free mixture), shifted by the per-sensor delay.
    fn sample(&self, t: usize) -> f64 {
        let t = t as f64;
        (0.08 * t).sin() + 0.4 * (0.23 * t).sin()
    }
}

impl IpCore for SensorIp {
    fn on_round(&mut self, ctx: &mut IpContext) {
        if self.sent >= self.blocks || !ctx.round().is_multiple_of(self.interval) {
            return;
        }
        let start = self.sent as usize * BLOCK_SAMPLES;
        let block: Vec<f64> = (0..BLOCK_SAMPLES)
            .map(|j| self.sample(start + j + self.delay))
            .collect();
        let mut payload = vec![TAG_BLOCK];
        put_u32(&mut payload, self.sensor_index);
        put_u32(&mut payload, self.sent);
        put_f64_slice(&mut payload, &block);
        ctx.send(self.beamformer, payload);
        self.sent += 1;
    }

    fn is_done(&self) -> bool {
        self.sent >= self.blocks
    }

    fn name(&self) -> &str {
        "sensor"
    }
}

#[derive(Debug)]
struct BeamformerState {
    assembled: u32,
    completion_round: Option<u64>,
    power_accum: f64,
    power_samples: u64,
}

struct BeamformerIp {
    sensors: usize,
    blocks: u32,
    delays: Vec<usize>,
    /// block id -> per-sensor samples (ordered: assembly must not depend
    /// on hash-iteration order, per the map-iteration-order lint)
    pending: std::collections::BTreeMap<u32, Vec<Option<Vec<f64>>>>,
    state: Rc<RefCell<BeamformerState>>,
}

impl IpCore for BeamformerIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_BLOCK) {
            return;
        }
        let (Some(sensor), Some(block_id)) = (r.u32(), r.u32()) else {
            return;
        };
        let Some(samples) = r.f64_slice() else { return };
        if sensor as usize >= self.sensors
            || block_id >= self.blocks
            || samples.len() != BLOCK_SAMPLES
        {
            return;
        }
        let slot = self
            .pending
            .entry(block_id)
            .or_insert_with(|| vec![None; self.sensors]);
        if slot[sensor as usize].is_some() {
            return;
        }
        slot[sensor as usize] = Some(samples);
        if slot.iter().all(Option::is_some) {
            // Delay-and-sum: each sensor observed the source shifted by
            // its delay; summing the (already compensated) blocks yields
            // coherent gain.
            let blocks = self.pending.remove(&block_id).expect("just checked");
            let mut state = self.state.borrow_mut();
            for j in 0..BLOCK_SAMPLES {
                let sum: f64 = blocks
                    .iter()
                    .map(|b| b.as_ref().expect("all present")[j])
                    .sum();
                let y = sum / self.sensors as f64;
                state.power_accum += y * y;
                state.power_samples += 1;
            }
            state.assembled += 1;
            if state.assembled == self.blocks {
                state.completion_round = Some(ctx.round());
            }
            let _ = &self.delays; // delays applied at the sensors
        }
    }

    fn is_done(&self) -> bool {
        self.state.borrow().assembled >= self.blocks
    }

    fn name(&self) -> &str {
        "beamformer"
    }
}

/// Installs the beamforming workload on an arbitrary topology and runs
/// it.
///
/// `sensor_tiles` are the microphone placements and `beamformer_tile` the
/// many-to-one sink. This is the entry point the Chapter 5 architecture
/// comparison uses with flat, hierarchical and bus-connected fabrics.
///
/// # Panics
///
/// Panics if fewer than one sensor is given, placements collide, or the
/// delays vector does not match the sensor count.
///
/// # Examples
///
/// ```
/// use noc_apps::beamforming::{run_on_topology, BeamformingParams};
/// use noc_fabric::{NodeId, Topology};
///
/// let topology = Topology::grid(4, 4);
/// let sensors = [NodeId(0), NodeId(3), NodeId(12), NodeId(15)];
/// let outcome = run_on_topology(
///     topology,
///     &sensors,
///     NodeId(5),
///     BeamformingParams::for_sensors(4),
/// );
/// assert!(outcome.completed);
/// ```
pub fn run_on_topology(
    topology: Topology,
    sensor_tiles: &[NodeId],
    beamformer_tile: NodeId,
    params: BeamformingParams,
) -> BeamformingOutcome {
    run_with_builder(
        SimulationBuilder::new(topology),
        sensor_tiles,
        beamformer_tile,
        params,
    )
}

/// Like [`run_on_topology`], but over a caller-prepared builder (so the
/// diversity experiments can add egress limits or fault models first).
///
/// The builder's config/fault/seed are overridden by `params`.
///
/// # Panics
///
/// Same conditions as [`run_on_topology`].
pub fn run_with_builder(
    builder: SimulationBuilder,
    sensor_tiles: &[NodeId],
    beamformer_tile: NodeId,
    params: BeamformingParams,
) -> BeamformingOutcome {
    assert!(!sensor_tiles.is_empty(), "at least one sensor required");
    assert_eq!(
        params.delays.len(),
        sensor_tiles.len(),
        "one delay per sensor required"
    );
    let mut all = sensor_tiles.to_vec();
    all.push(beamformer_tile);
    let count = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), count, "tile placements must be distinct");

    let state = Rc::new(RefCell::new(BeamformerState {
        assembled: 0,
        completion_round: None,
        power_accum: 0.0,
        power_samples: 0,
    }));

    let mut builder = builder
        .config(params.config)
        .fault_model(params.fault_model)
        .seed(params.seed)
        .with_ip(
            beamformer_tile,
            Box::new(BeamformerIp {
                sensors: sensor_tiles.len(),
                blocks: params.blocks,
                delays: params.delays.clone(),
                pending: Default::default(),
                state: Rc::clone(&state),
            }),
        );
    for (i, &tile) in sensor_tiles.iter().enumerate() {
        builder = builder.with_ip(
            tile,
            Box::new(SensorIp {
                beamformer: beamformer_tile,
                sensor_index: i as u32,
                delay: params.delays[i],
                blocks: params.blocks,
                interval: params.block_interval,
                sent: 0,
            }),
        );
    }
    let mut sim = builder.build();
    let report = sim.run();
    let state = state.borrow();
    BeamformingOutcome {
        completed: state.assembled >= params.blocks,
        completion_round: state.completion_round,
        blocks_assembled: state.assembled,
        output_power: if state.power_samples > 0 {
            state.power_accum / state.power_samples as f64
        } else {
            0.0
        },
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_sensors() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(3), NodeId(12), NodeId(15)]
    }

    #[test]
    fn fault_free_run_assembles_every_block() {
        let outcome = run_on_topology(
            Topology::grid(4, 4),
            &grid_sensors(),
            NodeId(5),
            BeamformingParams::for_sensors(4),
        );
        assert!(outcome.completed);
        assert_eq!(outcome.blocks_assembled, 8);
        assert!(outcome.output_power > 0.0);
    }

    #[test]
    fn aligned_sensors_gain_coherently() {
        // With zero delays, all sensors see the same signal: the average
        // equals one sensor's signal, so power matches a single source.
        let mut params = BeamformingParams::for_sensors(4);
        params.delays = vec![0; 4];
        let outcome = run_on_topology(Topology::grid(4, 4), &grid_sensors(), NodeId(5), params);
        let misaligned = {
            let mut params = BeamformingParams::for_sensors(4);
            params.delays = vec![0, 7, 13, 23];
            run_on_topology(Topology::grid(4, 4), &grid_sensors(), NodeId(5), params)
        };
        assert!(
            outcome.output_power > misaligned.output_power,
            "coherent {} vs incoherent {}",
            outcome.output_power,
            misaligned.output_power
        );
    }

    #[test]
    fn works_on_a_fully_connected_fabric() {
        let outcome = run_on_topology(
            Topology::fully_connected(8),
            &[NodeId(1), NodeId(2), NodeId(3)],
            NodeId(0),
            BeamformingParams {
                delays: vec![0, 1, 2],
                ..BeamformingParams::for_sensors(3)
            },
        );
        assert!(outcome.completed);
    }

    #[test]
    fn traffic_scales_with_block_count() {
        let run = |blocks: u32| {
            let params = BeamformingParams {
                blocks,
                ..BeamformingParams::for_sensors(4)
            };
            run_on_topology(Topology::grid(4, 4), &grid_sensors(), NodeId(5), params)
                .report
                .packets_sent
        };
        assert!(run(12) > run(4));
    }

    #[test]
    fn survives_moderate_upsets() {
        let params = BeamformingParams {
            fault_model: FaultModel::builder().p_upset(0.25).build().unwrap(),
            config: StochasticConfig::new(0.75, 20)
                .unwrap()
                .with_max_rounds(600),
            ..BeamformingParams::for_sensors(4)
        };
        let outcome = run_on_topology(Topology::grid(4, 4), &grid_sensors(), NodeId(5), params);
        assert!(outcome.completed, "25% upsets should be survivable");
        assert!(outcome.report.upsets_detected > 0);
    }

    #[test]
    fn beamformed_output_is_deterministic_per_seed() {
        let run = |seed| {
            let params = BeamformingParams {
                seed,
                ..BeamformingParams::for_sensors(4)
            };
            run_on_topology(Topology::grid(4, 4), &grid_sensors(), NodeId(5), params).output_power
        };
        assert_eq!(run(1).to_bits(), run(1).to_bits());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn colliding_placements_panic() {
        let _ = run_on_topology(
            Topology::grid(4, 4),
            &[NodeId(0), NodeId(0)],
            NodeId(5),
            BeamformingParams::for_sensors(2),
        );
    }

    #[test]
    #[should_panic(expected = "one delay per sensor")]
    fn delay_count_checked() {
        let _ = run_on_topology(
            Topology::grid(4, 4),
            &[NodeId(0), NodeId(1)],
            NodeId(5),
            BeamformingParams::for_sensors(3),
        );
    }
}
