//! A minimal complex-number type for the FFT kernels.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use noc_dsp::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A real number as a complex value.
    pub fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^(iθ)` on the unit circle.
    pub fn from_polar(radius: f64, theta: f64) -> Self {
        Self {
            re: radius * theta.cos(),
            im: radius * theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex64::abs`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_hold_numerically() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.0);
        let c = Complex64::new(2.0, 0.25);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c), a * b + a * c));
        assert!(close((a / b) * b, a));
        assert!(close(a + (-a), Complex64::ZERO));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.im.atan2(z.re) - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z * z.conj(), Complex64::from_re(z.norm_sqr())));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scale_and_assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::new(2.0, -1.0);
        assert_eq!(z, Complex64::new(3.0, 0.0));
        z -= Complex64::new(1.0, 0.0);
        assert_eq!(z, Complex64::new(2.0, 0.0));
        assert_eq!(z.scale(0.5), Complex64::new(1.0, 0.0));
    }
}
