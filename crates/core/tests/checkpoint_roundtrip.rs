//! Checkpoint/resume determinism: resuming from a checkpoint must be
//! provably indistinguishable from never having stopped.
//!
//! For each of the twelve golden/adversarial workloads, the suite
//! checkpoints at *every* round boundary of a straight-through run,
//! resumes each checkpoint at shard counts 1, 2 and 8, and byte-compares
//! the final report digest (and, per checkpoint round, the concatenated
//! JSONL event stream) against the uninterrupted run. A property test
//! sweeps random checkpoint rounds × shard counts on top.

use noc_fabric::{NodeId, Topology};
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, ErrorModel, FaultModel, OverflowMode,
};
use proptest::prelude::*;
use stochastic_noc::events::JsonlSink;
use stochastic_noc::{
    Checkpoint, CheckpointError, Simulation, SimulationBuilder, SimulationReport, StochasticConfig,
};

/// Serializes every observable report field — the golden digest format
/// plus the adversarial and quiescence counters — into a stable string.
fn digest(report: &SimulationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rounds={} completed={} packets={} bits={} upd={} upu={} ovf={} crash={} slips={} ttlx={}\n",
        report.rounds_executed,
        report.completed,
        report.packets_sent,
        report.bits_sent.bits(),
        report.upsets_detected,
        report.upsets_undetected,
        report.overflow_drops,
        report.crash_drops,
        report.clock_slips,
        report.ttl_expirations,
    ));
    out.push_str(&format!(
        "part={} byzf={} byzr={} adel={} areo={} quies={}\n",
        report.partition_drops,
        report.byzantine_forges,
        report.byzantine_replays,
        report.adversarial_delays,
        report.adversarial_reorders,
        report.quiescent_rounds,
    ));
    for r in report.records() {
        out.push_str(&format!(
            "{}:{}->{} inj={} del={:?} bits={}\n",
            r.id,
            r.source,
            r.destination,
            r.injected_round,
            r.delivered_round,
            r.frame_bits.bits(),
        ));
    }
    out
}

type BuilderFn = Box<dyn Fn() -> SimulationBuilder>;

struct Workload {
    name: &'static str,
    builder: BuilderFn,
    injections: Vec<(usize, usize, &'static [u8])>,
}

/// The six golden workloads of `golden_report.rs`, as fresh-builder
/// factories (a `SimulationBuilder` is consumed by `build`, and every
/// resume needs an identically configured builder of its own).
fn golden_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "grid4_flooding_fault_free",
            builder: Box::new(|| {
                SimulationBuilder::new(Topology::grid(4, 4))
                    .config(StochasticConfig::flooding(12).with_max_rounds(40))
                    .seed(1)
            }),
            injections: vec![(5, 11, b"figure 3-3")],
        },
        Workload {
            name: "grid8_gossip_under_faults",
            builder: Box::new(|| {
                let model = FaultModel::builder()
                    .p_upset(0.2)
                    .p_overflow(0.1)
                    .sigma_synch(0.3)
                    .error_model(ErrorModel::RandomErrorVector)
                    .build()
                    .unwrap();
                SimulationBuilder::new(Topology::grid(8, 8))
                    .forward_probability(0.5)
                    .ttl(20)
                    .max_rounds(100)
                    .fault_model(model)
                    .seed(42)
            }),
            injections: vec![(0, 63, b"corner to corner"), (9, 54, b"x")],
        },
        Workload {
            name: "grid16_flooding_with_defects",
            builder: Box::new(|| {
                let model = FaultModel::builder()
                    .p_upset(0.1)
                    .p_tiles(0.05)
                    .p_links(0.05)
                    .error_model(ErrorModel::RandomBitError)
                    .build()
                    .unwrap();
                SimulationBuilder::new(Topology::grid(16, 16))
                    .config(StochasticConfig::flooding(24).with_max_rounds(60))
                    .fault_model(model)
                    .seed(7)
            }),
            injections: vec![(0, 255, b"big grid")],
        },
        Workload {
            name: "torus_structural_overflow",
            builder: Box::new(|| {
                let model = FaultModel::builder()
                    .sigma_synch(0.2)
                    .overflow_mode(OverflowMode::Structural { capacity: 4 })
                    .build()
                    .unwrap();
                SimulationBuilder::new(Topology::torus(6, 6))
                    .forward_probability(0.35)
                    .ttl(18)
                    .max_rounds(80)
                    .fault_model(model)
                    .seed(9)
            }),
            injections: vec![(0, 21, b"a"), (17, 4, b"bb"), (30, 8, b"ccc")],
        },
        Workload {
            name: "fully_connected_with_termination",
            builder: Box::new(|| {
                SimulationBuilder::new(Topology::fully_connected(16))
                    .config(
                        StochasticConfig::flooding(6)
                            .with_max_rounds(30)
                            .with_termination(true),
                    )
                    .seed(11)
            }),
            injections: vec![(2, 13, b"bus-like")],
        },
        Workload {
            name: "grid6_with_crash_schedule",
            builder: Box::new(|| {
                let mut crash = CrashSchedule::new();
                crash.kill_tile(7, 0).kill_tile(14, 5).kill_link(3, 8);
                let model = FaultModel::builder().p_upset(0.05).build().unwrap();
                SimulationBuilder::new(Topology::grid(6, 6))
                    .forward_probability(0.6)
                    .ttl(15)
                    .max_rounds(60)
                    .fault_model(model)
                    .crash_schedule(crash)
                    .seed(5)
            }),
            injections: vec![(1, 34, b"survivor"), (35, 0, b"reverse")],
        },
    ]
}

/// The moderately faulty gossip base the hostile scenarios build on
/// (mirrors `golden_adversarial.rs`).
fn grid6_base() -> SimulationBuilder {
    let model = FaultModel::builder()
        .p_upset(0.05)
        .sigma_synch(0.2)
        .error_model(ErrorModel::RandomErrorVector)
        .build()
        .unwrap();
    SimulationBuilder::new(Topology::grid(6, 6))
        .forward_probability(0.6)
        .ttl(15)
        .max_rounds(60)
        .fault_model(model)
        .seed(13)
}

/// The six adversarial workloads of `golden_adversarial.rs`.
fn adversarial_workloads() -> Vec<Workload> {
    fn scenario(name: &str) -> AdversarialScenario {
        match name {
            "partition_with_heal" => AdversarialScenario::builder()
                .cut_links([24, 25, 26, 27], 3, Some(9))
                .build()
                .unwrap(),
            "permanent_death" => AdversarialScenario::builder()
                .kill_tile(14, 2)
                .kill_tile(21, 6)
                .kill_link(40, 0)
                .build()
                .unwrap(),
            "chaos_jitter" => AdversarialScenario::builder()
                .delay_probability(0.15)
                .reorder_probability(0.2)
                .build()
                .unwrap(),
            "byzantine_forge" => AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.5)
                .build()
                .unwrap(),
            "byzantine_replay" => AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Replay)
                .byzantine_activation(0.5)
                .byzantine_until(Some(20))
                .build()
                .unwrap(),
            "combined_hostile" => AdversarialScenario::builder()
                .cut_links([10, 11], 2, Some(7))
                .kill_tile(20, 4)
                .delay_probability(0.1)
                .reorder_probability(0.1)
                .byzantine_tile(13)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.4)
                .build()
                .unwrap(),
            other => panic!("unknown scenario {other}"),
        }
    }
    [
        "partition_with_heal",
        "permanent_death",
        "chaos_jitter",
        "byzantine_forge",
        "byzantine_replay",
        "combined_hostile",
    ]
    .into_iter()
    .map(|name| Workload {
        name,
        builder: Box::new(move || grid6_base().adversary(scenario(name))),
        injections: vec![(0, 35, b"hostile column"), (30, 5, b"cross")],
    })
    .collect()
}

/// All twelve workloads.
fn workloads() -> Vec<Workload> {
    let mut all = golden_workloads();
    all.extend(adversarial_workloads());
    all
}

fn inject_all(sim: &mut Simulation<impl stochastic_noc::EventSink>, w: &Workload) {
    for &(src, dst, payload) in &w.injections {
        sim.inject(NodeId(src), NodeId(dst), payload.to_vec());
    }
}

/// Runs the workload straight through (sequentially), checkpointing at
/// every round boundary — including round 0 (post-injection) and the
/// final round. Returns the checkpoints and the final report digest.
fn checkpoints_and_digest(w: &Workload) -> (Vec<Checkpoint>, String) {
    let mut sim = (w.builder)().build();
    inject_all(&mut sim, w);
    let mut checkpoints = vec![sim.checkpoint()];
    while !sim.is_complete() && sim.round() < sim.config().max_rounds {
        sim.step();
        checkpoints.push(sim.checkpoint());
    }
    (checkpoints, digest(&sim.run()))
}

/// The tentpole guarantee: for every workload, every checkpoint round,
/// and shard counts 1/2/8, the resumed run's report digest is
/// byte-identical to the uninterrupted run's — and the checkpoint
/// itself survives serialization and re-capture bit-exactly.
#[test]
fn every_checkpoint_round_resumes_byte_identically() {
    for w in workloads() {
        let (checkpoints, want) = checkpoints_and_digest(&w);
        for (round, ck) in checkpoints.iter().enumerate() {
            let bytes = ck.to_bytes();
            let decoded = Checkpoint::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{}: decode at round {round}: {e}", w.name));
            for shards in [1usize, 2, 8] {
                let mut resumed = (w.builder)()
                    .shards(shards)
                    .resume(&decoded)
                    .unwrap_or_else(|e| panic!("{}: resume at round {round}: {e}", w.name));
                if shards == 1 {
                    // Restore fidelity: re-capturing immediately must
                    // reproduce the serialized checkpoint bit-exactly.
                    assert_eq!(
                        resumed.checkpoint().to_bytes(),
                        bytes,
                        "{}: re-capture at round {round} drifted",
                        w.name
                    );
                }
                assert_eq!(
                    digest(&resumed.run()),
                    want,
                    "{}: resume at round {round} shards {shards} diverged",
                    w.name
                );
            }
        }
    }
}

/// The event-stream half of the guarantee: the JSONL bytes emitted
/// before the checkpoint plus the bytes emitted by the resumed run are
/// exactly the straight-through run's bytes, at every checkpoint round.
#[test]
fn jsonl_event_streams_concatenate_byte_identically() {
    for w in workloads() {
        let mut sim = (w.builder)().build_with_sink(JsonlSink::new(Vec::new()));
        inject_all(&mut sim, &w);
        sim.run();
        let straight = sim.into_sink().into_inner();
        let (checkpoints, _) = checkpoints_and_digest(&w);
        for round in 0..checkpoints.len() as u64 {
            let mut prefix_sim = (w.builder)().build_with_sink(JsonlSink::new(Vec::new()));
            inject_all(&mut prefix_sim, &w);
            while prefix_sim.round() < round {
                prefix_sim.step();
            }
            let ck = prefix_sim.checkpoint();
            let mut stream = prefix_sim.into_sink().into_inner();
            let mut resumed = (w.builder)()
                .resume_with_sink(&ck, JsonlSink::new(Vec::new()))
                .unwrap();
            resumed.run();
            stream.extend_from_slice(&resumed.into_sink().into_inner());
            assert_eq!(
                stream, straight,
                "{}: JSONL stream split at round {round} is not byte-identical",
                w.name
            );
        }
    }
}

/// `run_until_idle` must agree with `run()` on every workload: all
/// twelve quiesce within their round budget, so ignoring the budget
/// changes nothing — same digest, same round count.
#[test]
fn run_until_idle_agrees_with_run_on_every_workload() {
    for w in workloads() {
        let mut budgeted = (w.builder)().build();
        inject_all(&mut budgeted, &w);
        let budgeted = budgeted.run();
        let mut idle = (w.builder)().build();
        inject_all(&mut idle, &w);
        let idle = idle.run_until_idle();
        assert_eq!(
            digest(&idle),
            digest(&budgeted),
            "{}: run_until_idle diverged from run()",
            w.name
        );
        assert_eq!(idle.rounds_executed, budgeted.rounds_executed, "{}", w.name);
        assert_eq!(
            idle.quiescent_rounds, budgeted.quiescent_rounds,
            "{}",
            w.name
        );
        assert!(
            idle.completed,
            "{}: run_until_idle must reach quiescence",
            w.name
        );
    }
}

/// `run_until_idle` after a mid-run resume also matches the straight
/// run — the quiescence condition is restored, not recomputed wrongly.
#[test]
fn run_until_idle_after_resume_matches() {
    let w = &workloads()[1]; // grid8_gossip_under_faults: the richest
    let (checkpoints, want) = checkpoints_and_digest(w);
    let mid = &checkpoints[checkpoints.len() / 2];
    let mut resumed = (w.builder)().resume(mid).unwrap();
    assert_eq!(digest(&resumed.run_until_idle()), want);
}

/// Save/load file round-trip: a checkpoint written to disk resumes
/// identically to the in-memory one.
#[test]
fn checkpoint_file_round_trip_resumes_identically() {
    let w = &workloads()[3]; // torus_structural_overflow
    let (checkpoints, want) = checkpoints_and_digest(w);
    let ck = &checkpoints[checkpoints.len() / 2];
    let path = std::env::temp_dir().join(format!(
        "noc-checkpoint-roundtrip-{}.ckpt",
        std::process::id()
    ));
    ck.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded, ck);
    let mut resumed = (w.builder)().resume(&loaded).unwrap();
    assert_eq!(digest(&resumed.run()), want);
}

/// Resume refuses a builder whose configuration differs from the one
/// the checkpoint was taken under.
#[test]
fn resume_rejects_mismatched_configuration() {
    let w = &workloads()[5]; // grid6_with_crash_schedule
    let (checkpoints, _) = checkpoints_and_digest(w);
    let ck = &checkpoints[1];
    let wrong_seed = (w.builder)().seed(999).resume(ck);
    assert!(
        matches!(wrong_seed, Err(CheckpointError::Mismatch(_))),
        "a different seed must be rejected, got {:?}",
        wrong_seed.as_ref().err()
    );
    let wrong_topology = SimulationBuilder::new(Topology::grid(5, 5))
        .forward_probability(0.6)
        .seed(5)
        .resume(ck);
    assert!(
        matches!(wrong_topology, Err(CheckpointError::Mismatch(_))),
        "a different topology must be rejected"
    );
}

/// Resuming a checkpoint taken at one shard count under another is
/// explicitly supported: the capture-side shard count is invisible.
#[test]
fn checkpoints_taken_sharded_resume_sequentially_and_back() {
    let w = &workloads()[1]; // grid8_gossip_under_faults
    let (_, want) = checkpoints_and_digest(w);
    let mut sharded = (w.builder)().shards(4).build();
    inject_all(&mut sharded, w);
    for _ in 0..6 {
        sharded.step();
    }
    let ck = sharded.checkpoint();
    let mut sequential = (w.builder)().shards(1).resume(&ck).unwrap();
    assert_eq!(
        digest(&sequential.run()),
        want,
        "sharded capture → sequential resume"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random checkpoint rounds × shard counts on a randomized faulty
    /// grid: resumption is byte-identical wherever you cut.
    #[test]
    fn random_checkpoint_rounds_resume_identically(
        seed in 0u64..1_000,
        p in 0.3f64..0.9,
        ttl in 6u8..14,
        checkpoint_round in 0u64..20,
        shards in 1usize..9,
    ) {
        let model = FaultModel::builder()
            .p_upset(0.1)
            .sigma_synch(0.15)
            .build()
            .unwrap();
        let make = || {
            SimulationBuilder::new(Topology::grid(4, 4))
                .forward_probability(p)
                .ttl(ttl)
                .max_rounds(30)
                .fault_model(model)
                .seed(seed)
        };
        let inject = |sim: &mut Simulation| {
            sim.inject(NodeId(0), NodeId(15), b"prop".to_vec());
            sim.inject(NodeId(12), NodeId(3), b"q".to_vec());
        };
        let mut straight = make().build();
        inject(&mut straight);
        let want = digest(&straight.run());

        let mut sim = make().build();
        inject(&mut sim);
        while sim.round() < checkpoint_round
            && !sim.is_complete()
            && sim.round() < sim.config().max_rounds
        {
            sim.step();
        }
        let ck = Checkpoint::from_bytes(&sim.checkpoint().to_bytes()).unwrap();
        let mut resumed = make().shards(shards).resume(&ck).unwrap();
        prop_assert_eq!(digest(&resumed.run()), want);
    }
}
