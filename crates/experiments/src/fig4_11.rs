//! **Figure 4-11** — impact of buffer overflow and synchronization
//! errors on the MP3 output bit-rate (with jitter error bars).
//!
//! Expected shapes: the bit-rate is sustained with up to ~60% dropped
//! packets; even severe synchronization error levels barely move the
//! bit-rate or the output jitter.

use noc_apps::mp3::{Mp3App, Mp3Params};
use noc_faults::FaultModel;
use stochastic_noc::StochasticConfig;

use crate::stats::mean_std;
use crate::{Scale, TrialRunner};

/// Which fault axis a row sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Axis {
    /// Buffer-overflow drop probability.
    DroppedPackets(f64),
    /// Synchronization-error standard deviation.
    SigmaSynch(f64),
}

/// One bit-rate measurement.
#[derive(Debug, Clone)]
pub struct BitratePoint {
    /// The swept fault level.
    pub axis: Axis,
    /// Mean output bit-rate in bits/round over runs that produced one.
    pub bitrate: Option<f64>,
    /// Run-to-run standard deviation of the bit-rate (error bar).
    pub bitrate_std: Option<f64>,
    /// Mean arrival jitter in rounds.
    pub jitter: Option<f64>,
    /// Fraction of frames delivered (across all runs).
    pub frames_delivered_ratio: f64,
}

/// Runs both panels of Figure 4-11.
pub fn run(scale: Scale) -> Vec<BitratePoint> {
    let (drops, sigmas): (Vec<f64>, Vec<f64>) = match scale {
        Scale::Quick => (vec![0.0, 0.6], vec![0.0, 0.4]),
        Scale::Full => (
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        ),
    };
    let mut rows = Vec::new();
    for &d in &drops {
        let model = FaultModel::builder().p_overflow(d).build().expect("valid");
        rows.push(run_point(Axis::DroppedPackets(d), model, scale));
    }
    for &s in &sigmas {
        let model = FaultModel::builder().sigma_synch(s).build().expect("valid");
        rows.push(run_point(Axis::SigmaSynch(s), model, scale));
    }
    rows
}

fn run_point(axis: Axis, model: FaultModel, scale: Scale) -> BitratePoint {
    let reps = scale.repetitions();
    let label = match axis {
        Axis::DroppedPackets(d) => format!("fig4-11/dropped={d:.2}"),
        Axis::SigmaSynch(s) => format!("fig4-11/sigma={s:.2}"),
    };
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| {
        let params = Mp3Params {
            frames: 12,
            config: StochasticConfig::new(0.6, 20)
                .expect("valid")
                .with_max_rounds(600),
            fault_model: model,
            seed,
            ..Mp3Params::default()
        };
        Mp3App::new(params).run()
    });
    let mut rates = Vec::new();
    let mut jitters = Vec::new();
    let mut delivered = 0u64;
    let mut requested = 0u64;
    for outcome in outcomes {
        delivered += outcome.frames_delivered as u64;
        requested += outcome.frames_requested as u64;
        if let Some(rate) = outcome.bitrate_per_round() {
            rates.push(rate);
        }
        if let Some(j) = outcome.jitter() {
            jitters.push(j);
        }
    }
    let rate_stats = mean_std(&rates);
    BitratePoint {
        axis,
        bitrate: rate_stats.map(|(m, _)| m),
        bitrate_std: rate_stats.map(|(_, s)| s),
        jitter: mean_std(&jitters).map(|(m, _)| m),
        frames_delivered_ratio: delivered as f64 / requested.max(1) as f64,
    }
}

/// Prints both panels.
pub fn print(rows: &[BitratePoint]) {
    crate::stats::print_table_header(
        "Figure 4-11: MP3 output bit-rate vs dropped packets / sync errors",
        &[
            "axis",
            "level",
            "bitrate [bits/round]",
            "std",
            "jitter",
            "frames",
        ],
    );
    for r in rows {
        let (axis, level) = match r.axis {
            Axis::DroppedPackets(d) => ("dropped", d),
            Axis::SigmaSynch(s) => ("sigma", s),
        };
        println!(
            "{}\t{:.2}\t{}\t{}\t{}\t{:.2}",
            axis,
            level,
            r.bitrate.map_or("-".to_string(), |b| format!("{b:.1}")),
            r.bitrate_std.map_or("-".to_string(), |s| format!("{s:.1}")),
            r.jitter.map_or("-".to_string(), |j| format!("{j:.2}")),
            r.frames_delivered_ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dropped(rows: &[BitratePoint], level: f64) -> &BitratePoint {
        rows.iter()
            .find(|r| matches!(r.axis, Axis::DroppedPackets(d) if d == level))
            .expect("point present")
    }

    fn sigma(rows: &[BitratePoint], level: f64) -> &BitratePoint {
        rows.iter()
            .find(|r| matches!(r.axis, Axis::SigmaSynch(s) if s == level))
            .expect("point present")
    }

    #[test]
    fn bitrate_sustained_at_sixty_percent_drops() {
        let rows = run(Scale::Quick);
        let clean = dropped(&rows, 0.0);
        let lossy = dropped(&rows, 0.6);
        assert!(
            lossy.frames_delivered_ratio > 0.8,
            "60% drops delivered only {:.0}% of frames",
            lossy.frames_delivered_ratio * 100.0
        );
        let clean_rate = clean.bitrate.expect("clean bitrate");
        let lossy_rate = lossy.bitrate.expect("lossy bitrate");
        assert!(
            lossy_rate > clean_rate * 0.3,
            "bit-rate collapsed: {lossy_rate:.1} vs {clean_rate:.1}"
        );
    }

    #[test]
    fn sync_errors_keep_the_bitrate_steady() {
        let rows = run(Scale::Quick);
        let clean = sigma(&rows, 0.0);
        let noisy = sigma(&rows, 0.4);
        assert_eq!(noisy.frames_delivered_ratio, 1.0);
        let ratio = noisy.bitrate.unwrap() / clean.bitrate.unwrap();
        assert!(
            (0.5..=1.5).contains(&ratio),
            "sync errors moved the bit-rate by {ratio:.2}x"
        );
    }
}
