//! The metrics registry: named, labelled counters, gauges, and
//! log-bucketed histograms.
//!
//! Registration (`Metrics::counter`/`gauge`/`histogram`) takes a mutex
//! and interns the instrument in a `BTreeMap` keyed by `(name, sorted
//! labels)`, so snapshots enumerate in a stable order. The returned
//! handles are `Arc`-backed: recording is one or two atomic operations,
//! lock-free and safe from any thread. Registering the same name+labels
//! twice returns a handle to the same underlying instrument.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use crate::time::Stopwatch;

/// Number of logarithmic histogram buckets. Bucket `i` (for `i >= 1`)
/// holds observations whose nanosecond value has bit length `i`, i.e.
/// the range `[2^(i-1), 2^i - 1]` ns; bucket 0 holds exact zeros and
/// the last bucket absorbs everything from ~4.6 s upward.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Key under which an instrument is interned: name plus label pairs
/// sorted by label key.
type Key = (String, Vec<(String, String)>);

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// A monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float sample (stored as `f64` bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed latency histogram recording durations in nanoseconds.
///
/// Buckets are powers of two (see [`HISTOGRAM_BUCKETS`]), which keeps
/// recording to four relaxed atomic ops and still resolves p50/p90/p99
/// to within a factor of two — plenty for "where does the wall-clock
/// go" questions. The exact maximum is tracked separately, and quantile
/// estimates are clamped to it.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Bucket index for an observation of `nanos`: its bit length, capped
/// at the last bucket.
#[inline]
pub(crate) fn bucket_index(nanos: u64) -> usize {
    (u64::BITS - nanos.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize
}

/// Inclusive upper bound, in nanoseconds, of bucket `i` (the largest
/// value with bit length `i` is `2^i - 1`); `None` means +Inf.
pub(crate) fn bucket_upper_nanos(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

impl Histogram {
    /// Records a duration expressed in whole nanoseconds.
    #[inline]
    pub fn observe_nanos(&self, nanos: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        core.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a duration expressed in seconds (negative and non-finite
    /// values clamp to zero; oversized ones saturate).
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        let nanos = if secs.is_finite() && secs > 0.0 {
            let n = secs * 1e9;
            if n >= u64::MAX as f64 {
                u64::MAX
            } else {
                n as u64
            }
        } else {
            0
        };
        self.observe_nanos(nanos);
    }

    /// Records the elapsed time of a running [`Stopwatch`].
    #[inline]
    pub fn observe(&self, sw: &Stopwatch) {
        self.observe_nanos(sw.elapsed_nanos());
    }

    /// Observations recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.0.sum_nanos.load(Ordering::Relaxed)
    }

    /// Largest single observation, nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.0.max_nanos.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos() as f64 * 1e-9
    }

    /// Largest single observation, in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_nanos() as f64 * 1e-9
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q <= 1) in
    /// nanoseconds: the upper edge of the first bucket whose cumulative
    /// count reaches `ceil(q * count)`, clamped to the exact maximum.
    /// Returns 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let max = self.max_nanos();
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cum += core.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                return match bucket_upper_nanos(i) {
                    Some(le) => le.min(max),
                    None => max,
                };
            }
        }
        max
    }

    /// [`Histogram::quantile_nanos`] converted to seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile_nanos(q) as f64 * 1e-9
    }

    /// Per-bucket counts (non-cumulative), for snapshotting.
    pub(crate) fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// The instrument registry. See the crate docs for the threading model.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<Key, Slot>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, Slot>> {
        // A poisoned registry mutex only means another thread panicked
        // mid-registration; the map itself is always consistent.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = key(name, labels);
        let mut map = self.locked();
        let slot = map
            .entry(key)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric `{name}` already registered as a non-counter"),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = key(name, labels);
        let mut map = self.locked();
        let slot = map
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match slot {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric `{name}` already registered as a non-gauge"),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = key(name, labels);
        let mut map = self.locked();
        let slot = map
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::new())));
        match slot {
            Slot::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric `{name}` already registered as a non-histogram"),
        }
    }

    /// Sum of every registered counter named `name`, across all label
    /// sets; `None` if no such counter exists. Used by progress
    /// heartbeats to derive e.g. rounds/sec without holding handles.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let map = self.locked();
        let mut found = false;
        let mut total = 0u64;
        for ((n, _), slot) in map.iter() {
            if n == name {
                if let Slot::Counter(c) = slot {
                    found = true;
                    total = total.saturating_add(c.load(Ordering::Relaxed));
                }
            }
        }
        found.then_some(total)
    }

    /// A point-in-time copy of every instrument, in stable
    /// name-then-labels order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.locked();
        let mut snap = MetricsSnapshot::default();
        for ((name, labels), slot) in map.iter() {
            match slot {
                Slot::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.load(Ordering::Relaxed),
                }),
                Slot::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: f64::from_bits(g.load(Ordering::Relaxed)),
                }),
                Slot::Histogram(h) => {
                    let h = Histogram(Arc::clone(h));
                    snap.histograms.push(HistogramSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        count: h.count(),
                        sum_nanos: h.sum_nanos(),
                        max_nanos: h.max_nanos(),
                        p50_nanos: h.quantile_nanos(0.50),
                        p90_nanos: h.quantile_nanos(0.90),
                        p99_nanos: h.quantile_nanos(0.99),
                        buckets: h.bucket_counts().to_vec(),
                    });
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let m = Metrics::new();
        let a = m.counter("rounds_total", &[]);
        let b = m.counter("rounds_total", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5, "both handles hit the same instrument");
        assert_eq!(m.counter_value("rounds_total"), Some(5));
        assert_eq!(m.counter_value("missing"), None);
    }

    #[test]
    fn counter_value_sums_across_label_sets() {
        let m = Metrics::new();
        m.counter("trials", &[("figure", "a")]).add(3);
        m.counter("trials", &[("figure", "b")]).add(9);
        assert_eq!(m.counter_value("trials"), Some(12));
    }

    #[test]
    fn gauges_store_floats() {
        let m = Metrics::new();
        let g = m.gauge("throughput", &[("figure", "fig3-3")]);
        assert_eq!(g.value(), 0.0);
        g.set(12.75);
        assert_eq!(g.value(), 12.75);
        g.set(-1.5);
        assert_eq!(g.value(), -1.5);
    }

    #[test]
    fn label_order_does_not_split_instruments() {
        let m = Metrics::new();
        let a = m.counter("c", &[("x", "1"), ("y", "2")]);
        let b = m.counter("c", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.value(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.counter("clash", &[]);
        m.gauge("clash", &[]);
    }

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Powers of two sit at the *bottom* of their bucket: bit length
        // of 2^k is k+1.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(1025), 11);
        // The top of the range saturates into the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1 << 62), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_are_inclusive_edges() {
        assert_eq!(bucket_upper_nanos(0), Some(0));
        assert_eq!(bucket_upper_nanos(1), Some(1));
        assert_eq!(bucket_upper_nanos(11), Some(2047));
        assert_eq!(bucket_upper_nanos(HISTOGRAM_BUCKETS - 1), None);
        // Each finite edge is exactly the largest value of its bucket:
        // bucket_index(edge) == i and bucket_index(edge + 1) == i + 1.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let edge = bucket_upper_nanos(i).expect("finite edge");
            assert_eq!(bucket_index(edge), i, "edge {edge} not in bucket {i}");
            assert_eq!(bucket_index(edge + 1), i + 1, "edge {edge} not maximal");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_and_max() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[]);
        h.observe_nanos(100);
        h.observe_nanos(300);
        h.observe_secs(1e-6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_nanos(), 1400);
        assert_eq!(h.max_nanos(), 1000);
        assert!((h.sum_secs() - 1400e-9).abs() < 1e-15);
    }

    #[test]
    fn observe_secs_clamps_garbage_to_zero() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[]);
        h.observe_secs(-4.0);
        h.observe_secs(f64::NAN);
        h.observe_secs(f64::INFINITY);
        h.observe_secs(1e300);
        // -4, NaN and +Inf land in the zero bucket; a finite duration
        // too large for u64 nanoseconds saturates into the top bucket.
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts()[0], 3);
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped_to_max() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[]);
        assert_eq!(h.quantile_nanos(0.5), 0, "empty histogram");
        for nanos in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.observe_nanos(nanos);
        }
        let p50 = h.quantile_nanos(0.50);
        let p90 = h.quantile_nanos(0.90);
        let p99 = h.quantile_nanos(0.99);
        let max = h.max_nanos();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        // 9 of 10 observations are <= 90ns (bucket edge 127ns); the p99
        // must reach the outlier's bucket but never exceed the true max.
        assert!(p50 <= 127, "p50 {p50} too high");
        assert!(p99 > 127, "p99 {p99} missed the outlier");
        assert_eq!(max, 5000);
        assert_eq!(h.quantile_nanos(1.0), 5000, "p100 is the exact max");
    }

    #[test]
    fn single_observation_quantile_equals_max() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[]);
        h.observe_nanos(777);
        // The bucket edge (1023ns) exceeds the true max, so the clamp
        // must kick in for every quantile.
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile_nanos(q), 777, "q={q}");
        }
    }

    #[test]
    fn handles_record_from_worker_threads() {
        let m = Metrics::new();
        let c = m.counter("work", &[]);
        let h = m.histogram("lat", &[]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        c.inc();
                        h.observe_nanos(i);
                    }
                });
            }
        });
        assert_eq!(c.value(), 400);
        assert_eq!(h.count(), 400);
    }
}
