//! GALS clock domains with accumulated synchronization skew.
//!
//! The paper adopts "a tile-based architecture in which every tile has its
//! own clock domain" with mixed-clock interfaces between tiles; the round
//! duration of each tile is normally distributed around `T_R` with a
//! standard deviation `σ_synchr`. A tile whose accumulated skew drifts past
//! half a round misses the round boundary: its outgoing messages land one
//! round late at their receivers. This reproduces the paper's observation
//! that synchronization errors cause latency *jitter* without message loss.

/// Per-tile clock domain tracking accumulated skew (in fractions of the
/// round duration `T_R`).
///
/// # Examples
///
/// ```
/// use noc_fabric::ClockDomain;
///
/// let mut clock = ClockDomain::new();
/// // A tile running 60% of a round slow this round slips the boundary:
/// assert_eq!(clock.advance(0.6), 1);
/// // ...and is back in step afterwards (the slip consumed the debt).
/// assert_eq!(clock.advance(0.0), 0);
/// // A massive deviation slips as many boundaries as it crossed
/// // (accumulated skew is -0.4 here, so 2.0 more crosses two):
/// assert_eq!(clock.advance(2.0), 2);
/// assert!(clock.skew() > -0.5 && clock.skew() <= 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockDomain {
    skew: f64,
    slips: u64,
}

impl ClockDomain {
    /// A clock domain with no accumulated skew.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the domain by one round whose duration deviated from `T_R`
    /// by `skew_fraction` (e.g. `0.1` = 10% slow, `-0.1` = 10% fast).
    ///
    /// Returns the number of round boundaries slipped: each time the
    /// accumulated skew crosses half a round in either direction, the tile
    /// misses a boundary and its sends this round are delayed by one
    /// round. Every slip resets the accumulated skew by a whole round in
    /// the appropriate direction, so a `skew_fraction` larger than 1.5
    /// slips more than once and the residual skew is always restored to
    /// the documented `(-0.5, 0.5]` range.
    pub fn advance(&mut self, skew_fraction: f64) -> u32 {
        self.skew += skew_fraction;
        let mut count = 0;
        while self.skew <= -0.5 || self.skew > 0.5 {
            self.skew -= self.skew.signum();
            self.slips += 1;
            count += 1;
        }
        count
    }

    /// Rebuilds a domain from previously captured `skew`/`slips`
    /// values, for checkpoint restore.
    ///
    /// `skew` is taken verbatim — the caller is trusted to hand back a
    /// value previously read via [`ClockDomain::skew`], which the
    /// advance loop keeps inside `(-0.5, 0.5]`.
    pub fn from_parts(skew: f64, slips: u64) -> Self {
        Self { skew, slips }
    }

    /// Current accumulated skew, as a fraction of `T_R` in `(-0.5, 0.5]`.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Total round-boundary slips since construction.
    pub fn slips(&self) -> u64 {
        self.slips
    }

    /// Resets skew and slip count.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_clock_never_slips() {
        let mut c = ClockDomain::new();
        for _ in 0..1000 {
            assert_eq!(c.advance(0.0), 0);
        }
        assert_eq!(c.slips(), 0);
        assert_eq!(c.skew(), 0.0);
    }

    #[test]
    fn small_skews_accumulate_into_a_slip() {
        let mut c = ClockDomain::new();
        assert_eq!(c.advance(0.3), 0);
        assert_eq!(c.advance(0.2), 0); // exactly 0.5: not yet over
        assert_eq!(c.advance(0.1), 1); // 0.6 > 0.5: slip
        assert_eq!(c.slips(), 1);
        assert!((c.skew() - (-0.4)).abs() < 1e-12);
    }

    #[test]
    fn fast_clocks_slip_too() {
        let mut c = ClockDomain::new();
        assert_eq!(c.advance(-0.7), 1);
        assert!((c.skew() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn large_skews_slip_multiple_boundaries() {
        let mut c = ClockDomain::new();
        assert_eq!(c.advance(2.6), 3, "2.6 crosses three boundaries");
        assert!((c.skew() - (-0.4)).abs() < 1e-12);
        assert_eq!(c.slips(), 3);

        let mut fast = ClockDomain::new();
        assert_eq!(fast.advance(-1.6), 2);
        assert!((fast.skew() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ClockDomain::new();
        c.advance(0.9);
        c.reset();
        assert_eq!(c.skew(), 0.0);
        assert_eq!(c.slips(), 0);
    }

    #[test]
    fn slip_rate_grows_with_sigma() {
        // Feed alternating-free Gaussian-ish noise of two magnitudes and
        // check that bigger noise slips more often.
        let noisy: Vec<f64> = (0..2000)
            .map(|i| if i % 2 == 0 { 0.45 } else { -0.3 })
            .collect();
        let calm: Vec<f64> = (0..2000)
            .map(|i| if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let run = |skews: &[f64]| {
            let mut c = ClockDomain::new();
            for &s in skews {
                c.advance(s);
            }
            c.slips()
        };
        assert!(run(&noisy) > run(&calm));
        assert_eq!(run(&calm), 0);
    }

    proptest! {
        #[test]
        fn skew_stays_bounded(skews in proptest::collection::vec(-3.0f64..3.0, 0..500)) {
            let mut c = ClockDomain::new();
            for s in skews {
                c.advance(s);
                // After each advance the residual skew sits in the
                // documented half-open range, no matter how large the
                // per-round deviation was.
                prop_assert!(c.skew() > -0.5 && c.skew() <= 0.5);
            }
        }
    }
}
