//! Corpus fixture: a self-contained generator with a reasoned allow.

pub fn traffic_pattern(seed: u64) -> u64 {
    // noc-lint: allow(rng-draw-site, reason = "self-contained traffic-pattern generator seeded by the caller; no engine or tape involved")
    StdRng::seed_from_u64(seed).next_u64()
}
