//! True positive: hash-ordered set in the faults crate, which feeds
//! adversarial scenario digests and seed-stream derivation.

use std::collections::HashSet;

pub struct PartitionCut {
    pub links: HashSet<usize>,
}
