//! **Figure 3-3** — the producer–consumer example on a 4×4 grid: round
//! by round, which tiles have become aware of the message and when the
//! consumer receives it.

use noc_fabric::{Grid2d, NodeId};
use stochastic_noc::{SimulationBuilder, StochasticConfig};

use crate::{Scale, TrialRunner};

/// Trace of one producer–consumer gossip spread.
#[derive(Debug, Clone)]
pub struct ProducerConsumerTrace {
    /// Informed tile count after each round (index = round).
    pub informed_per_round: Vec<usize>,
    /// Round at which the consumer first received the message, if any.
    pub delivery_round: Option<u64>,
    /// Total packet transmissions over the whole spread.
    pub packets_sent: u64,
}

/// Runs the producer (tile 6, 0-based 5) → consumer (tile 12, 0-based
/// 11) example at `p = 0.5` on a 4×4 grid.
pub fn run(scale: Scale) -> Vec<ProducerConsumerTrace> {
    TrialRunner::for_figure("fig3-3", scale.repetitions()).run(|seed| {
        let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
            .config(
                StochasticConfig::new(0.5, 12)
                    .expect("valid")
                    .with_max_rounds(40),
            )
            .seed(seed)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), b"figure 3-3".to_vec());
        let mut informed = vec![sim.informed_count(id)];
        while !sim.is_complete() && sim.round() < 40 {
            sim.step();
            informed.push(sim.informed_count(id));
        }
        let report = sim.into_report();
        ProducerConsumerTrace {
            informed_per_round: informed,
            delivery_round: report.latency(id),
            packets_sent: report.packets_sent,
        }
    })
}

/// Prints the per-round awareness trace of each run.
pub fn print(traces: &[ProducerConsumerTrace]) {
    crate::stats::print_table_header(
        "Figure 3-3: producer (tile 6) -> consumer (tile 12), 4x4 grid, p=0.5",
        &[
            "run",
            "delivery round",
            "packets",
            "informed tiles per round",
        ],
    );
    for (i, t) in traces.iter().enumerate() {
        let spread: Vec<String> = t.informed_per_round.iter().map(|c| c.to_string()).collect();
        println!(
            "{}\t{}\t{}\t{}",
            i,
            t.delivery_round.map_or("-".to_string(), |r| r.to_string()),
            t.packets_sent,
            spread.join(",")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_is_reached_before_full_broadcast_usually() {
        let traces = run(Scale::Quick);
        let delivered = traces.iter().filter(|t| t.delivery_round.is_some()).count();
        assert!(delivered >= traces.len() - 1, "p=0.5 delivers reliably");
    }

    #[test]
    fn awareness_is_monotone() {
        for t in run(Scale::Quick) {
            assert!(t.informed_per_round.windows(2).all(|w| w[1] >= w[0]));
            assert_eq!(t.informed_per_round[0], 1, "only the producer at start");
        }
    }
}
