//! Umbrella crate for the On-Chip Stochastic Communication reproduction.
//!
//! This crate hosts the workspace-level runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). It re-exports every member
//! crate so downstream users can depend on a single crate:
//!
//! ```
//! use ocsc::stochastic_noc::SimulationBuilder;
//! use ocsc::noc_fabric::Grid2d;
//!
//! let grid = Grid2d::new(4, 4);
//! let sim = SimulationBuilder::new(grid).forward_probability(0.5).build();
//! assert_eq!(sim.node_count(), 16);
//! ```

#![forbid(unsafe_code)]

pub use noc_apps;
pub use noc_bus;
pub use noc_crc;
pub use noc_diversity;
pub use noc_dsp;
pub use noc_energy;
pub use noc_experiments;
pub use noc_fabric;
pub use noc_faults;
pub use stochastic_noc;
