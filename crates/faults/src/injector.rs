//! The runtime fault injector that a simulation engine consults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::model::FaultModel;
use crate::rng::GaussianSampler;

/// Explicit crash events: which tiles/links die, and when.
///
/// Round `0` means "dead from the start" (a manufacturing defect); any
/// later round models an in-field crash, used to reproduce the §4.1.3
/// observation that crashes in the early broadcast stages are the
/// dangerous ones.
///
/// # Examples
///
/// ```
/// use noc_faults::CrashSchedule;
///
/// let mut schedule = CrashSchedule::new();
/// schedule.kill_tile(5, 0);   // dead on arrival
/// schedule.kill_link(12, 30); // link 12 dies at round 30
/// assert!(schedule.tile_dead(5, 0));
/// assert!(!schedule.link_dead(12, 29));
/// assert!(schedule.link_dead(12, 30));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    tiles: Vec<(usize, u64)>,
    links: Vec<(usize, u64)>,
}

impl CrashSchedule {
    /// An empty schedule (nothing crashes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules tile `tile` to be dead from round `round` onwards.
    pub fn kill_tile(&mut self, tile: usize, round: u64) -> &mut Self {
        self.tiles.push((tile, round));
        self
    }

    /// Schedules link `link` to be dead from round `round` onwards.
    pub fn kill_link(&mut self, link: usize, round: u64) -> &mut Self {
        self.links.push((link, round));
        self
    }

    /// Is `tile` dead at `round`?
    pub fn tile_dead(&self, tile: usize, round: u64) -> bool {
        self.tiles.iter().any(|&(t, r)| t == tile && round >= r)
    }

    /// Is `link` dead at `round`?
    pub fn link_dead(&self, link: usize, round: u64) -> bool {
        self.links.iter().any(|&(l, r)| l == link && round >= r)
    }

    /// Number of tiles ever scheduled to die.
    pub fn dead_tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Number of links ever scheduled to die.
    pub fn dead_link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over `(tile, round)` crash events.
    pub fn tile_events(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.tiles.iter().copied()
    }

    /// Iterates over `(link, round)` crash events.
    pub fn link_events(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.links.iter().copied()
    }
}

/// Running totals of the faults an injector has actually fired, so event
/// streams and reports can be reconciled against the *injection* side:
/// every detected or undetected upset in a report must trace back to one
/// `upsets` tick here, and likewise for probabilistic overflow drops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionTally {
    /// Times [`FaultInjector::upset_occurs`] answered `true`.
    pub upsets: u64,
    /// Times [`FaultInjector::overflow_drop`] answered `true`.
    pub overflow_drops: u64,
    /// Non-zero skew fractions handed out by
    /// [`FaultInjector::round_skew`].
    pub skew_draws: u64,
}

/// A captured [`FaultInjector`] position: everything that varies as the
/// injector runs, without the (immutable) fault model.
///
/// Restoring a snapshot onto an injector built from the *same* model
/// continues the fault stream exactly where the snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectorSnapshot {
    /// Raw xoshiro256++ state of the fault stream.
    pub rng_state: [u64; 4],
    /// Cached Box–Muller spare of the skew sampler, if any.
    pub gauss_spare: Option<f64>,
    /// Injection-side fault ledger at capture time.
    pub tally: InjectionTally,
}

/// A seeded source of fault decisions, owned by the simulation engine.
///
/// All stochastic fault events — upsets, overflow drops, crash sampling,
/// synchronization skew — are drawn from one deterministic PRNG stream, so
/// an experiment is exactly reproducible from `(model, seed)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: FaultModel,
    rng: StdRng,
    gauss: GaussianSampler,
    tally: InjectionTally,
}

impl FaultInjector {
    /// Creates an injector for `model`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails [`FaultModel::validate`] — build models via
    /// [`FaultModel::builder`] to get a checked result instead.
    pub fn new(model: FaultModel, seed: u64) -> Self {
        model
            .validate()
            // noc-lint: allow(hot-path-panic, reason = "constructor-time validation of a builder-produced model; outside the per-round sampling path")
            .unwrap_or_else(|e| panic!("invalid fault model: {e}"));
        Self {
            model,
            rng: StdRng::seed_from_u64(seed),
            gauss: GaussianSampler::new(),
            tally: InjectionTally::default(),
        }
    }

    /// The model in force.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Totals of the faults fired so far (the injection-side ledger that
    /// event attribution reconciles against).
    pub fn tally(&self) -> InjectionTally {
        self.tally
    }

    /// Samples which of `n` tiles are dead from the start (Bernoulli with
    /// `p_tiles` per tile). Returns `alive[i]`.
    pub fn sample_alive_tiles(&mut self, n: usize) -> Vec<bool> {
        (0..n)
            .map(|_| !self.bernoulli(self.model.p_tiles))
            .collect()
    }

    /// Samples which of `m` links are dead from the start.
    pub fn sample_alive_links(&mut self, m: usize) -> Vec<bool> {
        (0..m)
            .map(|_| !self.bernoulli(self.model.p_links))
            .collect()
    }

    /// Samples exactly `k` distinct dead tiles out of `n` (used by the
    /// figure sweeps that put "number of defective tiles" on an axis).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_exact_dead_tiles(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot kill {k} of {n} tiles");
        // Floyd's algorithm for a k-subset.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.rng.gen_range(0..=j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Does a data upset scramble the packet on this link traversal?
    pub fn upset_occurs(&mut self) -> bool {
        let hit = self.bernoulli(self.model.p_upset);
        self.tally.upsets += u64::from(hit);
        hit
    }

    /// Applies the configured error model to `payload` in place
    /// (conditioned on an upset having occurred).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty.
    pub fn scramble(&mut self, payload: &mut [u8]) {
        let model = self.model.error_model;
        let p = self.model.p_upset;
        model.scramble(&mut self.rng, payload, p);
    }

    /// Copy-on-write [`FaultInjector::scramble`] for a frame shared between
    /// in-flight copies: clones the bytes once, scrambles the clone in
    /// place, and swaps the fresh allocation into `frame`. Other holders of
    /// the original `Arc` are unaffected, so one upset never corrupts the
    /// fan-out siblings of the same transmission.
    ///
    /// Draws exactly the same RNG sequence as [`FaultInjector::scramble`]
    /// on the same bytes.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty.
    pub fn scramble_shared(&mut self, frame: &mut std::sync::Arc<[u8]>) {
        let mut copy = frame.to_vec();
        self.scramble(&mut copy);
        *frame = copy.into();
    }

    /// Is a received packet dropped by (probabilistic) buffer overflow?
    pub fn overflow_drop(&mut self) -> bool {
        let hit = self.bernoulli(self.model.p_overflow);
        self.tally.overflow_drops += u64::from(hit);
        hit
    }

    /// Samples this tile's round-duration skew as a *fraction of `T_R`*
    /// drawn from `N(0, sigma_synch²)`.
    pub fn round_skew(&mut self) -> f64 {
        if self.model.sigma_synch == 0.0 {
            0.0
        } else {
            self.tally.skew_draws += 1;
            self.gauss
                .sample(&mut self.rng, 0.0, self.model.sigma_synch)
        }
    }

    /// Direct access to the underlying RNG for auxiliary decisions that
    /// must share the deterministic stream (e.g. gossip forwarding).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Captures the injector's mutable position (RNG state, Gaussian
    /// spare, tally) for checkpointing.
    pub fn snapshot(&self) -> InjectorSnapshot {
        InjectorSnapshot {
            rng_state: self.rng.state(),
            gauss_spare: self.gauss.spare(),
            tally: self.tally,
        }
    }

    /// Overwrites the injector's mutable position with `snapshot`,
    /// continuing the fault stream exactly where the snapshot was taken.
    /// The fault model is left untouched.
    pub fn restore(&mut self, snapshot: &InjectorSnapshot) {
        self.rng = StdRng::from_state(snapshot.rng_state);
        self.gauss = GaussianSampler::from_spare(snapshot.gauss_spare);
        self.tally = snapshot.tally;
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen_bool(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;

    fn model(p_upset: f64, p_overflow: f64) -> FaultModel {
        FaultModel::builder()
            .p_upset(p_upset)
            .p_overflow(p_overflow)
            .build()
            .unwrap()
    }

    #[test]
    fn fault_free_injector_never_fires() {
        let mut inj = FaultInjector::new(FaultModel::none(), 1);
        for _ in 0..1000 {
            assert!(!inj.upset_occurs());
            assert!(!inj.overflow_drop());
            assert_eq!(inj.round_skew(), 0.0);
        }
        assert!(inj.sample_alive_tiles(100).iter().all(|&a| a));
        assert!(inj.sample_alive_links(100).iter().all(|&a| a));
    }

    #[test]
    fn certain_faults_always_fire() {
        let mut inj = FaultInjector::new(model(1.0, 1.0), 1);
        for _ in 0..100 {
            assert!(inj.upset_occurs());
            assert!(inj.overflow_drop());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultInjector::new(model(0.5, 0.5), 42);
        let mut b = FaultInjector::new(model(0.5, 0.5), 42);
        let da: Vec<bool> = (0..100).map(|_| a.upset_occurs()).collect();
        let db: Vec<bool> = (0..100).map(|_| b.upset_occurs()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = FaultInjector::new(model(0.5, 0.5), 1);
        let mut b = FaultInjector::new(model(0.5, 0.5), 2);
        let da: Vec<bool> = (0..100).map(|_| a.upset_occurs()).collect();
        let db: Vec<bool> = (0..100).map(|_| b.upset_occurs()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn upset_rate_approximates_p_upset() {
        let mut inj = FaultInjector::new(model(0.3, 0.0), 7);
        let n = 20_000;
        let hits = (0..n).filter(|_| inj.upset_occurs()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn exact_dead_tiles_are_distinct_and_in_range() {
        let mut inj = FaultInjector::new(FaultModel::none(), 3);
        for k in 0..=16 {
            let dead = inj.sample_exact_dead_tiles(16, k);
            assert_eq!(dead.len(), k);
            assert!(dead.windows(2).all(|w| w[0] < w[1]), "distinct+sorted");
            assert!(dead.iter().all(|&t| t < 16));
        }
    }

    #[test]
    #[should_panic(expected = "cannot kill")]
    fn too_many_dead_tiles_panics() {
        let mut inj = FaultInjector::new(FaultModel::none(), 3);
        let _ = inj.sample_exact_dead_tiles(4, 5);
    }

    #[test]
    fn tally_counts_only_fired_faults() {
        let mut inj = FaultInjector::new(model(0.3, 0.3), 5);
        let mut upsets = 0u64;
        let mut overflows = 0u64;
        for _ in 0..1000 {
            upsets += u64::from(inj.upset_occurs());
            overflows += u64::from(inj.overflow_drop());
        }
        let t = inj.tally();
        assert_eq!(t.upsets, upsets);
        assert_eq!(t.overflow_drops, overflows);
        assert_eq!(t.skew_draws, 0, "sigma 0 never draws skew");

        let m = FaultModel::builder().sigma_synch(0.25).build().unwrap();
        let mut skewed = FaultInjector::new(m, 5);
        for _ in 0..17 {
            let _ = skewed.round_skew();
        }
        assert_eq!(skewed.tally().skew_draws, 17);
    }

    #[test]
    fn crash_schedule_semantics() {
        let mut s = CrashSchedule::new();
        s.kill_tile(2, 10).kill_link(7, 0);
        assert!(!s.tile_dead(2, 9));
        assert!(s.tile_dead(2, 10));
        assert!(s.tile_dead(2, 999));
        assert!(!s.tile_dead(3, 999));
        assert!(s.link_dead(7, 0));
        assert_eq!(s.dead_tile_count(), 1);
        assert_eq!(s.dead_link_count(), 1);
        assert_eq!(s.tile_events().collect::<Vec<_>>(), vec![(2, 10)]);
    }

    #[test]
    fn scramble_shared_leaves_other_holders_untouched() {
        let mut inj = FaultInjector::new(model(0.5, 0.0), 9);
        let original: std::sync::Arc<[u8]> = vec![0u8; 8].into();
        let mut scrambled = std::sync::Arc::clone(&original);
        inj.scramble_shared(&mut scrambled);
        assert!(
            original.iter().all(|&b| b == 0),
            "CoW preserved the original"
        );
        assert!(scrambled.iter().any(|&b| b != 0));

        // Same seed, same bytes: the shared path draws the identical stream.
        let mut inj2 = FaultInjector::new(model(0.5, 0.0), 9);
        let mut plain = vec![0u8; 8];
        inj2.scramble(&mut plain);
        assert_eq!(&scrambled[..], &plain[..]);
    }

    #[test]
    fn scramble_changes_payload() {
        let mut inj = FaultInjector::new(model(0.5, 0.0), 9);
        let mut p = vec![0u8; 8];
        inj.scramble(&mut p);
        assert!(p.iter().any(|&b| b != 0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn alive_sampling_rate_tracks_p_tiles(
                p in 0.0f64..=1.0,
                seed in 0u64..1000,
            ) {
                let model = FaultModel::builder().p_tiles(p).build().unwrap();
                let mut inj = FaultInjector::new(model, seed);
                let alive = inj.sample_alive_tiles(2000);
                let dead = alive.iter().filter(|&&a| !a).count() as f64 / 2000.0;
                prop_assert!((dead - p).abs() < 0.06, "dead rate {dead} vs p {p}");
            }

            #[test]
            fn exact_dead_tiles_are_a_k_subset(
                n in 1usize..50,
                seed in 0u64..1000,
            ) {
                let mut inj = FaultInjector::new(FaultModel::none(), seed);
                for k in 0..=n {
                    let dead = inj.sample_exact_dead_tiles(n, k);
                    prop_assert_eq!(dead.len(), k);
                    prop_assert!(dead.windows(2).all(|w| w[0] < w[1]));
                    prop_assert!(dead.iter().all(|&t| t < n));
                }
            }

            #[test]
            fn scramble_is_never_a_no_op(
                len in 1usize..64,
                seed in 0u64..1000,
            ) {
                let model = FaultModel::builder().p_upset(0.5).build().unwrap();
                let mut inj = FaultInjector::new(model, seed);
                let original = vec![0xC3u8; len];
                let mut copy = original.clone();
                inj.scramble(&mut copy);
                prop_assert_ne!(copy, original);
            }
        }
    }

    #[test]
    fn skew_scales_with_sigma() {
        let m = FaultModel::builder().sigma_synch(0.25).build().unwrap();
        let mut inj = FaultInjector::new(m, 21);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| inj.round_skew()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.01);
        assert!((std - 0.25).abs() < 0.01);
    }
}
