//! **Figure 4-5** — the latency surface of the Master–Slave case study
//! over (data-upset probability × number of defective tiles).
//!
//! Expected shape from the paper: tile failures have little effect on
//! latency; upsets inflate latency sharply once `p_upset` passes ~0.5,
//! and the algorithm "does not give up", eventually terminating even at
//! very high upset levels (with many more rounds).

use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use noc_faults::{CrashSchedule, FaultInjector, FaultModel};
use stochastic_noc::StochasticConfig;

use crate::stats::mean;
use crate::{Scale, TrialRunner};

/// One cell of the latency surface.
#[derive(Debug, Clone)]
pub struct SurfacePoint {
    /// Data-upset probability.
    pub p_upset: f64,
    /// Defective (fabric) tiles.
    pub dead_tiles: usize,
    /// Mean latency in rounds over completed runs.
    pub latency_rounds: Option<f64>,
    /// Fraction of runs that completed within the budget.
    pub completion_ratio: f64,
}

/// Runs the Figure 4-5 surface sweep (Master–Slave, `p = 0.5`).
pub fn run(scale: Scale) -> Vec<SurfacePoint> {
    let (upsets, tiles): (Vec<f64>, Vec<usize>) = match scale {
        Scale::Quick => (vec![0.0, 0.3, 0.6], vec![0, 3]),
        Scale::Full => (
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            vec![0, 1, 2, 3, 4, 5],
        ),
    };
    let mut points = Vec::new();
    for &p_upset in &upsets {
        for &k in &tiles {
            points.push(run_point(p_upset, k, scale));
        }
    }
    points
}

fn run_point(p_upset: f64, dead_tiles: usize, scale: Scale) -> SurfacePoint {
    let reps = scale.repetitions();
    let label = format!("fig4-5/upset={p_upset:.2}/k={dead_tiles}");
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| {
        let base = MasterSlaveParams {
            config: StochasticConfig::new(0.5, 24)
                .expect("valid")
                .with_max_rounds(400),
            fault_model: FaultModel::builder()
                .p_upset(p_upset)
                .build()
                .expect("valid"),
            seed,
            terms: 10_000,
            ..MasterSlaveParams::default()
        };
        // Kill fabric (non-essential) tiles only, as in Figure 4-4.
        let essential: Vec<usize> = {
            let app = MasterSlaveApp::new(base.clone());
            let mut v: Vec<usize> = app
                .slave_assignments()
                .into_iter()
                .flatten()
                .map(|n| n.index())
                .collect();
            v.push(app.master_tile().index());
            v
        };
        let candidates: Vec<usize> = (0..25).filter(|t| !essential.contains(t)).collect();
        let mut injector = FaultInjector::new(FaultModel::none(), seed.wrapping_mul(31));
        let chosen =
            injector.sample_exact_dead_tiles(candidates.len(), dead_tiles.min(candidates.len()));
        let mut schedule = CrashSchedule::new();
        for idx in chosen {
            schedule.kill_tile(candidates[idx], 0);
        }
        MasterSlaveApp::new(MasterSlaveParams {
            crash_schedule: schedule,
            ..base
        })
        .run()
    });
    let mut latencies = Vec::new();
    let mut completions = 0u64;
    for outcome in outcomes {
        if outcome.completed {
            completions += 1;
            if let Some(r) = outcome.completion_round {
                latencies.push(r as f64);
            }
        }
    }
    SurfacePoint {
        p_upset,
        dead_tiles,
        latency_rounds: mean(&latencies),
        completion_ratio: completions as f64 / reps as f64,
    }
}

/// Prints the surface as a table.
pub fn print(points: &[SurfacePoint]) {
    crate::stats::print_table_header(
        "Figure 4-5: Master-Slave latency vs (data upsets x defective tiles), p=0.5",
        &["p_upset", "dead tiles", "latency [rounds]", "completion"],
    );
    for p in points {
        println!(
            "{:.2}\t{}\t{}\t{:.2}",
            p.p_upset,
            p.dead_tiles,
            p.latency_rounds
                .map_or("-".to_string(), |l| format!("{l:.1}")),
            p.completion_ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsets_raise_latency() {
        let points = run(Scale::Quick);
        let clean = points
            .iter()
            .find(|p| p.p_upset == 0.0 && p.dead_tiles == 0)
            .and_then(|p| p.latency_rounds)
            .expect("clean run completes");
        let noisy = points
            .iter()
            .find(|p| p.p_upset == 0.6 && p.dead_tiles == 0)
            .and_then(|p| p.latency_rounds);
        if let Some(noisy) = noisy {
            assert!(
                noisy >= clean,
                "60% upsets cannot be faster: {noisy} vs {clean}"
            );
        }
    }

    #[test]
    fn moderate_upsets_do_not_prevent_termination() {
        let points = run(Scale::Quick);
        for p in points.iter().filter(|p| p.p_upset <= 0.3) {
            assert!(
                p.completion_ratio > 0.5,
                "upset {} dead {} completed only {:.0}%",
                p.p_upset,
                p.dead_tiles,
                p.completion_ratio * 100.0
            );
        }
    }
}
