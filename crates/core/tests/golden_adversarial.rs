//! Golden-report determinism regression tests for adversarial scenarios.
//!
//! Same contract as `golden_report.rs`, but over the hostile scenario
//! grammar: `(topology, config, fault model, adversarial scenario,
//! seed)` → byte-identical `SimulationReport`, including the five
//! adversarial counters. These digests pin the paper's ch. 5 hostile
//! column inputs; a drift here means partitions, permanent failures,
//! chaos jitter or Byzantine traffic changed observable behaviour.

use noc_fabric::{NodeId, Topology};
use noc_faults::{AdversarialScenario, ByzantineMode, ErrorModel, FaultModel};
use stochastic_noc::events::{CounterSink, EventSink};
use stochastic_noc::{Simulation, SimulationBuilder, SimulationReport};

/// Serializes every observable field — including the adversarial
/// counters absent from the pre-adversary digest format — into a
/// stable string.
fn digest(report: &SimulationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rounds={} completed={} packets={} bits={} upd={} upu={} ovf={} crash={} slips={} ttlx={}\n",
        report.rounds_executed,
        report.completed,
        report.packets_sent,
        report.bits_sent.bits(),
        report.upsets_detected,
        report.upsets_undetected,
        report.overflow_drops,
        report.crash_drops,
        report.clock_slips,
        report.ttl_expirations,
    ));
    out.push_str(&format!(
        "part={} byzf={} byzr={} adel={} areo={}\n",
        report.partition_drops,
        report.byzantine_forges,
        report.byzantine_replays,
        report.adversarial_delays,
        report.adversarial_reorders,
    ));
    let mut records: Vec<_> = report.records().collect();
    records.sort_by_key(|r| r.id);
    for r in records {
        out.push_str(&format!(
            "{}:{}->{} inj={} del={:?} bits={}\n",
            r.id,
            r.source,
            r.destination,
            r.injected_round,
            r.delivered_round,
            r.frame_bits.bits(),
        ));
    }
    out
}

fn check(name: &str, sim: &mut Simulation, expected: &str) {
    let report = sim.run();
    let actual = digest(&report);
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "golden digest drifted for adversarial workload `{name}`:\n--- actual ---\n{actual}"
    );
}

/// A moderately faulty gossip base all hostile scenarios build on.
fn grid6_base() -> SimulationBuilder {
    let model = FaultModel::builder()
        .p_upset(0.05)
        .sigma_synch(0.2)
        .error_model(ErrorModel::RandomErrorVector)
        .build()
        .unwrap();
    SimulationBuilder::new(Topology::grid(6, 6))
        .forward_probability(0.6)
        .ttl(15)
        .max_rounds(60)
        .fault_model(model)
        .seed(13)
}

fn inject_pair<S: EventSink>(sim: &mut Simulation<S>) {
    sim.inject(NodeId(0), NodeId(35), b"hostile column".to_vec());
    sim.inject(NodeId(30), NodeId(5), b"cross".to_vec());
}

/// Every hostile scenario in this file with its pinned digest, freshly
/// built — drives the per-scenario tests and the obs-plane invariance
/// suite below from one definition.
fn adversarial_workloads() -> Vec<(&'static str, AdversarialScenario, &'static str)> {
    vec![
        (
            "partition_with_heal",
            // Cut the four links around the grid centre for rounds 3..9.
            AdversarialScenario::builder()
                .cut_links([24, 25, 26, 27], 3, Some(9))
                .build()
                .unwrap(),
            GOLDEN_PARTITION_HEAL,
        ),
        (
            "permanent_death",
            AdversarialScenario::builder()
                .kill_tile(14, 2)
                .kill_tile(21, 6)
                .kill_link(40, 0)
                .build()
                .unwrap(),
            GOLDEN_PERMANENT_DEATH,
        ),
        (
            "chaos_jitter",
            AdversarialScenario::builder()
                .delay_probability(0.15)
                .reorder_probability(0.2)
                .build()
                .unwrap(),
            GOLDEN_CHAOS_JITTER,
        ),
        (
            "byzantine_forge",
            AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.5)
                .build()
                .unwrap(),
            GOLDEN_BYZANTINE_FORGE,
        ),
        (
            "byzantine_replay",
            AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Replay)
                .byzantine_activation(0.5)
                .byzantine_until(Some(20))
                .build()
                .unwrap(),
            GOLDEN_BYZANTINE_REPLAY,
        ),
        (
            "combined_hostile",
            AdversarialScenario::builder()
                .cut_links([10, 11], 2, Some(7))
                .kill_tile(20, 4)
                .delay_probability(0.1)
                .reorder_probability(0.1)
                .byzantine_tile(13)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.4)
                .build()
                .unwrap(),
            GOLDEN_COMBINED_HOSTILE,
        ),
    ]
}

/// Builds and checks the named scenario through the default path.
fn check_scenario(name: &'static str) {
    let (_, adversary, golden) = adversarial_workloads()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .expect("known scenario");
    let mut sim = grid6_base().adversary(adversary).build();
    inject_pair(&mut sim);
    check(name, &mut sim, golden);
}

#[test]
fn golden_partition_with_heal() {
    check_scenario("partition_with_heal");
}

#[test]
fn golden_permanent_death() {
    check_scenario("permanent_death");
}

#[test]
fn golden_chaos_jitter() {
    check_scenario("chaos_jitter");
}

#[test]
fn golden_byzantine_forge() {
    check_scenario("byzantine_forge");
}

#[test]
fn golden_byzantine_replay() {
    check_scenario("byzantine_replay");
}

#[test]
fn golden_combined_hostile() {
    check_scenario("combined_hostile");
}

/// The two-plane contract over the hostile grammar: every adversarial
/// digest stays byte-identical with the wall-clock plane installed and
/// a CounterSink attached — sequentially and through the sharded loop.
#[test]
fn adversarial_digests_are_identical_with_obs_plane_enabled() {
    for shards in [1usize, 4] {
        let metrics = noc_obs::Metrics::new();
        let obs = stochastic_noc::EngineObs::new(&metrics);
        for (name, adversary, golden) in adversarial_workloads() {
            let mut sim = grid6_base()
                .adversary(adversary)
                .shards(shards)
                .obs(obs.clone())
                .build_with_sink(CounterSink::new());
            inject_pair(&mut sim);
            let report = sim.run();
            assert_eq!(
                digest(&report).trim(),
                golden.trim(),
                "digest for `{name}` drifted with obs plane enabled (shards={shards})"
            );
            sim.into_sink()
                .reconcile(&report)
                .expect("obs-enabled hostile workload reconciles");
        }
        assert!(
            metrics.counter_value("engine_rounds_total").unwrap_or(0) > 0,
            "rounds were counted (shards={shards})"
        );
    }
}

/// Hostile runs must still reconcile event attributions with report
/// globals, and the adversarial counters must actually fire — a golden
/// digest full of zeros would pin nothing.
#[test]
fn golden_combined_reconciles_and_exercises_counters() {
    let adversary = AdversarialScenario::builder()
        .cut_links([10, 11], 2, Some(7))
        .kill_tile(20, 4)
        .delay_probability(0.1)
        .reorder_probability(0.1)
        .byzantine_tile(13)
        .byzantine_mode(ByzantineMode::Forge)
        .byzantine_activation(0.4)
        .build()
        .unwrap();
    let mut sim = grid6_base()
        .adversary(adversary)
        .build_with_sink(CounterSink::new());
    inject_pair(&mut sim);
    let report = sim.run();
    assert!(report.partition_drops > 0, "partition cut never dropped");
    assert!(report.byzantine_forges > 0, "Byzantine tile never forged");
    assert!(report.adversarial_delays > 0, "chaos never delayed");
    assert!(report.adversarial_reorders > 0, "chaos never reordered");
    sim.into_sink()
        .reconcile(&report)
        .expect("hostile workload reconciles");
}

/// The benign scenario consumes zero adversarial draws: building with
/// an explicit `AdversarialScenario::benign()` must reproduce the
/// plain build bit-for-bit.
#[test]
fn benign_scenario_is_a_no_op() {
    let mut plain = grid6_base().build();
    inject_pair(&mut plain);
    let mut benign = grid6_base()
        .adversary(AdversarialScenario::benign())
        .build();
    inject_pair(&mut benign);
    assert_eq!(digest(&plain.run()), digest(&benign.run()));
}

const GOLDEN_PARTITION_HEAL: &str = "\
rounds=16 completed=true packets=1217 bits=258040 upd=56 upu=0 ovf=0 crash=0 slips=49 ttlx=72
part=26 byzf=0 byzr=0 adel=0 areo=0
m0:n0->n35 inj=0 del=Some(11) bits=248
m1:n30->n5 inj=0 del=Some(11) bits=176";

const GOLDEN_PERMANENT_DEATH: &str = "\
rounds=17 completed=true packets=1109 bits=233920 upd=46 upu=0 ovf=0 crash=94 slips=43 ttlx=69
part=0 byzf=0 byzr=0 adel=0 areo=0
m0:n0->n35 inj=0 del=Some(14) bits=248
m1:n30->n5 inj=0 del=Some(10) bits=176";

const GOLDEN_CHAOS_JITTER: &str = "\
rounds=19 completed=true packets=1202 bits=254392 upd=54 upu=0 ovf=0 crash=0 slips=41 ttlx=72
part=0 byzf=0 byzr=0 adel=185 areo=259
m0:n0->n35 inj=0 del=Some(11) bits=248
m1:n30->n5 inj=0 del=Some(12) bits=176";

const GOLDEN_BYZANTINE_FORGE: &str = "\
rounds=17 completed=true packets=1226 bits=262288 upd=55 upu=0 ovf=0 crash=0 slips=48 ttlx=72
part=0 byzf=10 byzr=0 adel=0 areo=0
m0:n0->n35 inj=0 del=Some(12) bits=248
m1:n30->n5 inj=0 del=Some(13) bits=176";

const GOLDEN_BYZANTINE_REPLAY: &str = "\
rounds=17 completed=true packets=1247 bits=266128 upd=55 upu=0 ovf=0 crash=0 slips=31 ttlx=72
part=0 byzf=0 byzr=7 adel=0 areo=0
m0:n0->n35 inj=0 del=Some(10) bits=248
m1:n30->n5 inj=0 del=Some(11) bits=176";

const GOLDEN_COMBINED_HOSTILE: &str = "\
rounds=18 completed=true packets=1148 bits=243160 upd=52 upu=0 ovf=0 crash=51 slips=31 ttlx=70
part=4 byzf=8 byzr=0 adel=113 areo=128
m0:n0->n35 inj=0 del=Some(14) bits=248
m1:n30->n5 inj=0 del=Some(16) bits=176";
