//! Communication-aware IP-to-tile mapping.
//!
//! §4.1.3 of the paper observes that completion times "are dependent on
//! the mapping of IPs to tiles ... the mapping phase of the system-level
//! design has to take into account the communication performance in
//! order to obtain an efficient design" (citing Hu & Mărculescu's
//! energy-aware mapping). This module implements that phase for
//! stochastic NoCs: given the application's traffic graph, it searches a
//! tile assignment minimizing traffic-weighted hop distance — which, for
//! both flooding and gossip, is the first-order driver of latency and of
//! the per-message TTL (and therefore energy) that must be provisioned.

use noc_fabric::{Grid2d, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An application's communication demands: weighted flows between
/// logical roles.
///
/// # Examples
///
/// ```
/// use noc_apps::mapping::TrafficGraph;
///
/// // A 3-stage pipeline: 0 -> 1 heavy, 1 -> 2 light.
/// let mut graph = TrafficGraph::new(3);
/// graph.add_flow(0, 1, 10.0);
/// graph.add_flow(1, 2, 2.0);
/// assert_eq!(graph.roles(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficGraph {
    roles: usize,
    flows: Vec<(usize, usize, f64)>,
}

impl TrafficGraph {
    /// Creates a graph over `roles` logical IPs.
    ///
    /// # Panics
    ///
    /// Panics if `roles` is zero.
    pub fn new(roles: usize) -> Self {
        assert!(roles > 0, "a traffic graph needs at least one role");
        Self {
            roles,
            flows: Vec::new(),
        }
    }

    /// Number of logical roles.
    pub fn roles(&self) -> usize {
        self.roles
    }

    /// Declares `weight` units of traffic from role `a` to role `b`.
    ///
    /// # Panics
    ///
    /// Panics if a role is out of range, the flow is a self-flow, or the
    /// weight is not positive and finite.
    pub fn add_flow(&mut self, a: usize, b: usize, weight: f64) -> &mut Self {
        assert!(a < self.roles && b < self.roles, "role out of range");
        assert_ne!(a, b, "self-flows carry no network traffic");
        assert!(
            weight > 0.0 && weight.is_finite(),
            "flow weight must be positive and finite"
        );
        self.flows.push((a, b, weight));
        self
    }

    /// The flows declared so far.
    pub fn flows(&self) -> &[(usize, usize, f64)] {
        &self.flows
    }

    /// Traffic-weighted total Manhattan distance of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover every role.
    pub fn cost(&self, grid: &Grid2d, assignment: &[NodeId]) -> f64 {
        assert_eq!(assignment.len(), self.roles, "assignment/role mismatch");
        self.flows
            .iter()
            .map(|&(a, b, w)| w * grid.manhattan_distance(assignment[a], assignment[b]) as f64)
            .sum()
    }
}

/// Result of a mapping search.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Tile of each role.
    pub assignment: Vec<NodeId>,
    /// Traffic-weighted hop cost of the assignment.
    pub cost: f64,
    /// Swap proposals evaluated.
    pub iterations: u64,
}

/// A uniformly random (but collision-free) assignment of roles to tiles.
///
/// # Panics
///
/// Panics if the grid has fewer tiles than the graph has roles.
pub fn random_mapping(graph: &TrafficGraph, grid: &Grid2d, seed: u64) -> Mapping {
    let tiles = grid.width() * grid.height();
    assert!(
        graph.roles() <= tiles,
        "{} roles cannot fit {} tiles",
        graph.roles(),
        tiles
    );
    // noc-lint: allow(rng-draw-site, reason = "self-contained mapping shuffle seeded by the caller; runs before any engine is built, no tape interaction")
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates over the tile indices.
    let mut pool: Vec<usize> = (0..tiles).collect();
    for i in 0..graph.roles() {
        // noc-lint: allow(rng-draw-site, reason = "self-contained mapping shuffle seeded by the caller; runs before any engine is built, no tape interaction")
        let j = rng.gen_range(i..tiles);
        pool.swap(i, j);
    }
    let assignment: Vec<NodeId> = pool[..graph.roles()].iter().map(|&t| NodeId(t)).collect();
    let cost = graph.cost(grid, &assignment);
    Mapping {
        assignment,
        cost,
        iterations: 0,
    }
}

/// Greedy pairwise-swap descent with random restarts: starting from
/// random assignments, repeatedly applies the best role/tile swap until
/// no swap improves the cost, and keeps the best local optimum found.
///
/// Deterministic for a given `(graph, grid, restarts, seed)`.
///
/// # Panics
///
/// Panics if the grid has fewer tiles than the graph has roles or
/// `restarts` is zero.
pub fn optimize_mapping(graph: &TrafficGraph, grid: &Grid2d, restarts: u32, seed: u64) -> Mapping {
    assert!(restarts > 0, "at least one restart required");
    let tiles = grid.width() * grid.height();
    let mut best: Option<Mapping> = None;
    let mut total_iterations = 0u64;
    for restart in 0..restarts {
        let mut current = random_mapping(graph, grid, seed.wrapping_add(restart as u64));
        // Candidate tile set: all tiles (roles may move to empty tiles).
        loop {
            let mut improved = false;
            // Try moving each role to every tile (swapping if occupied).
            'search: for role in 0..graph.roles() {
                for tile in 0..tiles {
                    total_iterations += 1;
                    let target = NodeId(tile);
                    let mut candidate = current.assignment.clone();
                    if let Some(other) = candidate.iter().position(|&t| t == target) {
                        candidate.swap(role, other);
                    } else {
                        candidate[role] = target;
                    }
                    let cost = graph.cost(grid, &candidate);
                    if cost + 1e-12 < current.cost {
                        current.assignment = candidate;
                        current.cost = cost;
                        improved = true;
                        continue 'search;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let replace = match &best {
            None => true,
            Some(b) => current.cost < b.cost,
        };
        if replace {
            best = Some(current);
        }
    }
    let mut best = best.expect("at least one restart ran");
    best.iterations = total_iterations;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master_slave::{MasterSlaveApp, MasterSlaveParams};
    use proptest::prelude::*;

    fn pipeline(roles: usize) -> TrafficGraph {
        let mut g = TrafficGraph::new(roles);
        for i in 0..roles - 1 {
            g.add_flow(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn two_roles_end_up_adjacent() {
        let mut g = TrafficGraph::new(2);
        g.add_flow(0, 1, 5.0);
        let grid = Grid2d::new(4, 4);
        let mapping = optimize_mapping(&g, &grid, 2, 1);
        assert_eq!(mapping.cost, 5.0, "optimal distance is one hop");
        assert_eq!(
            grid.manhattan_distance(mapping.assignment[0], mapping.assignment[1]),
            1
        );
    }

    #[test]
    fn pipeline_cost_approaches_the_chain_optimum() {
        // A 6-stage unit-weight pipeline on 4x4 can be laid out as a
        // snake of adjacent tiles (cost 5); greedy descent with restarts
        // must land at or very near that optimum.
        let g = pipeline(6);
        let grid = Grid2d::new(4, 4);
        let mapping = optimize_mapping(&g, &grid, 8, 7);
        assert!(
            mapping.cost <= 6.0,
            "cost {} too far from the snake optimum 5",
            mapping.cost
        );
        let random = random_mapping(&g, &grid, 7);
        assert!(mapping.cost < random.cost);
    }

    #[test]
    fn optimizer_beats_random_on_a_hub_pattern() {
        // A master talking to 8 slaves (the Master-Slave traffic shape).
        let mut g = TrafficGraph::new(9);
        for s in 1..9 {
            g.add_flow(0, s, 1.0);
            g.add_flow(s, 0, 1.0);
        }
        let grid = Grid2d::new(5, 5);
        let random = random_mapping(&g, &grid, 3);
        let tuned = optimize_mapping(&g, &grid, 3, 3);
        assert!(
            tuned.cost < random.cost,
            "tuned {} vs random {}",
            tuned.cost,
            random.cost
        );
        // The hub-and-spokes optimum on a grid: 4 slaves at distance 1,
        // 4 at distance 2 -> cost 2 * (4*1 + 4*2) = 24.
        assert_eq!(tuned.cost, 24.0);
    }

    #[test]
    fn better_mapping_means_faster_application() {
        // Close the loop with the engine: run Master-Slave with the
        // default spread-out assignment and with a deliberately bad
        // corner-heavy one, and compare flooding completion rounds.
        let good = MasterSlaveApp::new(MasterSlaveParams {
            config: stochastic_noc::StochasticConfig::flooding(16).with_max_rounds(100),
            terms: 1_000,
            ..MasterSlaveParams::default()
        })
        .run();
        assert!(good.completed);
        // The default master sits at the grid center: worst-case slave
        // distance 4, so scatter+compute+gather is ~8 rounds. A mapping
        // of everything along the perimeter could double that; verify
        // the default stays at the optimum predicted by hop distances.
        assert!(good.completion_round.unwrap() <= 9);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversubscription_panics() {
        let g = pipeline(10);
        let _ = random_mapping(&g, &Grid2d::new(3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "self-flows")]
    fn self_flow_rejected() {
        let mut g = TrafficGraph::new(2);
        g.add_flow(1, 1, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn assignments_never_collide(
            roles in 2usize..10,
            seed in 0u64..1000,
        ) {
            let g = pipeline(roles);
            let grid = Grid2d::new(4, 4);
            for mapping in [
                random_mapping(&g, &grid, seed),
                optimize_mapping(&g, &grid, 1, seed),
            ] {
                let mut tiles = mapping.assignment.clone();
                tiles.sort();
                tiles.dedup();
                prop_assert_eq!(tiles.len(), roles, "tile collision");
            }
        }

        #[test]
        fn optimizer_never_loses_to_its_own_start(
            roles in 2usize..8,
            seed in 0u64..500,
        ) {
            let g = pipeline(roles);
            let grid = Grid2d::new(4, 4);
            let start = random_mapping(&g, &grid, seed);
            let tuned = optimize_mapping(&g, &grid, 1, seed);
            prop_assert!(tuned.cost <= start.cost);
        }
    }
}
