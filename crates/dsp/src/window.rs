//! Analysis/synthesis windows.

/// The Hann window of length `n`: `w[j] = 0.5 (1 − cos(2πj/(n−1)))`.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use noc_dsp::hann_window;
///
/// let w = hann_window(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0].abs() < 1e-12 && (w[7]).abs() < 1e-12);
/// ```
pub fn hann_window(n: usize) -> Vec<f64> {
    assert!(n >= 2, "window needs at least two points");
    (0..n)
        .map(|j| 0.5 * (1.0 - (2.0 * std::f64::consts::PI * j as f64 / (n - 1) as f64).cos()))
        .collect()
}

/// The MDCT sine window of length `n`:
/// `w[j] = sin(π/n (j + 0.5))`.
///
/// Satisfies the Princen–Bradley condition `w[j]² + w[j + n/2]² = 1`,
/// which makes the windowed MDCT with 50% overlap perfectly
/// reconstructing.
///
/// # Panics
///
/// Panics if `n` is zero or odd.
pub fn sine_window(n: usize) -> Vec<f64> {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "sine window length must be positive and even"
    );
    (0..n)
        .map(|j| (std::f64::consts::PI / n as f64 * (j as f64 + 0.5)).sin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_peaks_at_center() {
        let w = hann_window(33);
        assert!((w[16] - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn hann_is_symmetric() {
        let w = hann_window(16);
        for j in 0..8 {
            assert!((w[j] - w[15 - j]).abs() < 1e-12);
        }
    }

    #[test]
    fn sine_window_satisfies_princen_bradley() {
        let n = 64;
        let w = sine_window(n);
        for j in 0..n / 2 {
            let s = w[j] * w[j] + w[j + n / 2] * w[j + n / 2];
            assert!((s - 1.0).abs() < 1e-12, "PB violated at {j}: {s}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_sine_window_panics() {
        let _ = sine_window(7);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_hann_panics() {
        let _ = hann_window(1);
    }
}
