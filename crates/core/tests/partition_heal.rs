//! Property test: a partition that heals before traffic arrives is
//! unobservable.
//!
//! The partition check is RNG-free — a pure schedule lookup per
//! attempted transmission — so cutting links the flood front cannot
//! reach before the heal round must leave the entire report
//! byte-identical to the unpartitioned run: same counters, same
//! delivery rounds, same per-message records. Gossip moves at most one
//! hop per round (delays, slips and reordering only push arrivals
//! later), so a link whose source tile sits `d` hops from the injection
//! point carries no traffic before round `d`; healing at round `h <= d`
//! makes the cut invisible.

use std::collections::VecDeque;

use noc_fabric::{NodeId, Topology};
use noc_faults::{AdversarialScenario, ErrorModel, FaultModel};
use proptest::prelude::*;
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

/// BFS hop distances from `source` over directed links.
fn hop_distance(topology: &Topology, source: NodeId) -> Vec<Option<u64>> {
    let mut dist = vec![None; topology.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have distances");
        for &link_id in topology.out_links(node) {
            let to = topology.link(link_id).to;
            if dist[to.index()].is_none() {
                dist[to.index()] = Some(d + 1);
                queue.push_back(to);
            }
        }
    }
    dist
}

/// Full observable digest, adversarial counters included.
fn digest(report: &SimulationReport) -> String {
    let mut out = format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        report.rounds_executed,
        report.completed,
        report.packets_sent,
        report.bits_sent.bits(),
        report.upsets_detected,
        report.upsets_undetected,
        report.overflow_drops,
        report.crash_drops,
        report.clock_slips,
        report.ttl_expirations,
        report.partition_drops,
        report.byzantine_forges,
        report.byzantine_replays,
        report.adversarial_delays,
        report.adversarial_reorders,
    );
    for r in report.records() {
        out.push_str(&format!(
            "{}:{}->{} {} {:?} {}\n",
            r.id,
            r.source,
            r.destination,
            r.injected_round,
            r.delivered_round,
            r.frame_bits.bits(),
        ));
    }
    out
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3usize..6, 3usize..6).prop_map(|(w, h)| Topology::grid(w, h)),
        (3usize..6, 3usize..6).prop_map(|(w, h)| Topology::torus(w, h)),
        (5usize..12).prop_map(Topology::fully_connected),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn healed_before_arrival_partition_is_unobservable(
        topology in topology_strategy(),
        p in 0.3f64..=1.0,
        ttl in 4u8..14,
        p_upset in 0.0f64..0.2,
        sigma in 0.0f64..0.3,
        source_raw in 0usize..64,
        link_picks in proptest::collection::vec(0usize..128, 1..4),
        seed in any::<u64>(),
    ) {
        let n = topology.node_count();
        let source = NodeId(source_raw % n);
        let dist = hop_distance(&topology, source);

        // Candidate cuts: links whose source tile is at least one hop
        // out, so the flood cannot touch them at round 0. Unreachable
        // tiles never forward at all; treat them as infinitely far.
        let candidates: Vec<(usize, u64)> = (0..topology.link_count())
            .filter_map(|l| {
                let from = topology.link(noc_fabric::LinkId(l)).from;
                match dist[from.index()] {
                    Some(0) => None,
                    Some(d) => Some((l, d)),
                    None => Some((l, u64::MAX)),
                }
            })
            .collect();
        prop_assume!(!candidates.is_empty());

        let mut links = Vec::new();
        let mut heal = u64::MAX;
        for pick in &link_picks {
            let (link, d) = candidates[pick % candidates.len()];
            links.push(link);
            heal = heal.min(d);
        }
        // Cut from round 0, heal no later than the nearest cut link's
        // hop distance: traffic first reaches that link at round
        // `heal` at the earliest, when the cut is already gone.
        let adversary = AdversarialScenario::builder()
            .cut_links(links, 0, Some(heal.min(1_000)))
            .build()
            .expect("valid scenario");

        let model = FaultModel::builder()
            .p_upset(p_upset)
            .sigma_synch(sigma)
            .error_model(ErrorModel::RandomErrorVector)
            .build()
            .expect("valid model");
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(40);
        let destination = NodeId((source_raw + 1) % n);

        let mut partitioned = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .adversary(adversary)
            .seed(seed)
            .build();
        partitioned.inject(source, destination, b"heal race".to_vec());

        let mut open = SimulationBuilder::new(topology)
            .config(config)
            .fault_model(model)
            .seed(seed)
            .build();
        open.inject(source, destination, b"heal race".to_vec());

        let hostile = partitioned.run();
        prop_assert_eq!(
            hostile.partition_drops, 0,
            "a healed-before-arrival cut must never drop"
        );
        prop_assert_eq!(digest(&hostile), digest(&open.run()));
    }
}
