//! Small statistics and table-formatting helpers shared by the figures.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for fewer than two values.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Bessel-corrected sample standard deviation (divides the squared
/// deviations by `n - 1`); `None` for fewer than two values.
///
/// This is the estimator confidence intervals need: the population
/// formula ([`std_dev`]) is biased low when the mean itself was
/// estimated from the same handful of samples.
pub fn sample_std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Mean and standard deviation together (std 0 for singletons).
pub fn mean_std(values: &[f64]) -> Option<(f64, f64)> {
    let m = mean(values)?;
    Some((m, std_dev(values).unwrap_or(0.0)))
}

/// The `q`-th percentile (0.0 ..= 100.0) by linear interpolation between
/// closest ranks; `None` for an empty slice **or a slice containing a
/// NaN** — a percentile of unordered data is meaningless, and the old
/// behaviour (panicking inside the sort comparator) aborted whole
/// sweeps on one poisoned sample.
///
/// Matches numpy's default (`linear`) interpolation: the rank of the
/// percentile is `q/100 · (n-1)` and fractional ranks interpolate
/// between the two neighbouring order statistics. Infinities are
/// ordered and supported; the result is never NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let (lo_v, hi_v) = (sorted[lo], sorted[hi]);
    if frac == 0.0 || lo_v == hi_v {
        return Some(lo_v);
    }
    // Two-product lerp so a single infinite endpoint dominates cleanly
    // (`lo + (hi - lo) * frac` evaluates `-∞ + ∞` even one-sided).
    let interp = lo_v * (1.0 - frac) + hi_v * frac;
    if interp.is_nan() {
        // Interpolating strictly between -∞ and +∞ has no meaningful
        // midpoint; fall back to the nearest rank so the result stays
        // one of the order statistics instead of NaN.
        Some(if frac < 0.5 { lo_v } else { hi_v })
    } else {
        Some(interp)
    }
}

/// The median (50th percentile); `None` for an empty slice or one
/// containing a NaN (see [`percentile`]).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Smallest and largest value; `None` for an empty slice.
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some((v, v)),
        Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
    })
}

/// The half-width of a normal-approximation 95% confidence interval on
/// the mean (`1.96 · s/√n` with `s` the Bessel-corrected
/// [`sample_std_dev`]); `None` for fewer than two values.
///
/// With the ≤10 repetitions the figures use, the normal approximation is
/// a deliberate simplification — the tables report it as `±x` alongside
/// the mean rather than claiming exact coverage. Using the sample
/// standard deviation keeps the interval from being understated at those
/// small `n` (the population formula shrinks it by a further √((n-1)/n)).
pub fn ci95_half_width(values: &[f64]) -> Option<f64> {
    let sd = sample_std_dev(values)?;
    Some(1.96 * sd / (values.len() as f64).sqrt())
}

/// Full distribution summary of one measured series.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (0 for singletons).
    pub std_dev: f64,
    /// Half-width of the 95% CI on the mean (0 for singletons).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarises a series; `None` for an empty slice or one containing a
/// NaN (the order statistics propagate [`percentile`]'s refusal).
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let (mean, std_dev) = mean_std(values)?;
    let (min, max) = min_max(values)?;
    Some(Summary {
        n: values.len(),
        mean,
        std_dev,
        ci95: ci95_half_width(values).unwrap_or(0.0),
        min,
        median: median(values)?,
        p95: percentile(values, 95.0)?,
        max,
    })
}

/// Prints a header row followed by a separator, for the table output the
/// harness emits.
pub fn print_table_header(title: &str, columns: &[&str]) {
    println!();
    println!("== {title} ==");
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(mean_std(&[]), None);
    }

    #[test]
    fn mean_and_std_of_known_data() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (m, s) = mean_std(&data).unwrap();
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_has_zero_std() {
        assert_eq!(mean_std(&[3.0]), Some((3.0, 0.0)));
        assert_eq!(std_dev(&[3.0]), None);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
        assert_eq!(min_max(&[]), None);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn percentile_of_singleton_is_the_value() {
        for q in [0.0, 37.5, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&[7.5], q), Some(7.5));
        }
    }

    #[test]
    fn percentile_interpolates_even_length() {
        let data = [4.0, 1.0, 3.0, 2.0];
        // Median of 1,2,3,4 interpolates between the middle pair.
        assert_eq!(median(&data), Some(2.5));
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(4.0));
        // rank = 0.25 * 3 = 0.75 -> 1 + 0.75 * (2 - 1)
        assert_eq!(percentile(&data, 25.0), Some(1.75));
    }

    #[test]
    fn percentile_hits_exact_ranks_odd_length() {
        let data = [5.0, 1.0, 3.0];
        assert_eq!(median(&data), Some(3.0));
        assert_eq!(percentile(&data, 50.0), Some(3.0));
        // rank = 0.95 * 2 = 1.9 -> 3 + 0.9 * (5 - 3)
        let p95 = percentile(&data, 95.0).unwrap();
        assert!((p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range_q() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&data, -10.0), Some(1.0));
        assert_eq!(percentile(&data, 250.0), Some(3.0));
    }

    #[test]
    fn ci95_shrinks_with_sample_count() {
        let small = ci95_half_width(&[1.0, 3.0]).unwrap();
        let large = ci95_half_width(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]).unwrap();
        assert!(large < small);
        assert_eq!(ci95_half_width(&[3.0]), None);
    }

    #[test]
    fn summary_is_internally_consistent() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&data).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 9.0));
        assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.max);
        // CI uses the Bessel-corrected sample std dev: population sd 2.0
        // scaled by sqrt(n / (n - 1)) = sqrt(8 / 7).
        let sample_sd = 2.0 * (8.0f64 / 7.0).sqrt();
        assert!((s.ci95 - 1.96 * sample_sd / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nan_inputs_yield_none_instead_of_panicking() {
        let poisoned = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&poisoned, 50.0), None);
        assert_eq!(median(&poisoned), None);
        assert_eq!(summarize(&poisoned), None);
        assert_eq!(percentile(&[f64::NAN], 95.0), None);
        // Infinities are ordered and stay supported.
        assert_eq!(
            percentile(&[f64::NEG_INFINITY, 0.0], 0.0),
            Some(f64::NEG_INFINITY)
        );
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        /// Values including NaN, infinities and ordinary floats. The
        /// finite arm is repeated so poisoned values stay a minority
        /// and both branches of the NaN guard get exercised.
        fn any_sample() -> impl Strategy<Value = f64> {
            prop_oneof![
                -1e9f64..1e9,
                -1e9f64..1e9,
                -1e9f64..1e9,
                -1e9f64..1e9,
                -1e9f64..1e9,
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ]
        }

        proptest! {
            /// The order statistics never panic; they return `None`
            /// exactly when the input is empty or NaN-poisoned.
            #[test]
            fn percentile_is_total(
                values in proptest::collection::vec(any_sample(), 0..40),
                q in -50.0f64..150.0,
            ) {
                let has_nan = values.iter().any(|v| v.is_nan());
                let p = percentile(&values, q);
                prop_assert_eq!(p.is_none(), values.is_empty() || has_nan);
                if let Some(p) = p {
                    prop_assert!(!p.is_nan());
                }
                prop_assert_eq!(median(&values).is_none(), values.is_empty() || has_nan);
                prop_assert_eq!(summarize(&values).is_none(), values.is_empty() || has_nan);
            }

            /// On clean input the percentile is bracketed by the extremes.
            #[test]
            fn percentile_lies_within_min_max(
                values in proptest::collection::vec(-1e9f64..1e9, 1..40),
                q in 0.0f64..=100.0,
            ) {
                let (lo, hi) = min_max(&values).unwrap();
                let p = percentile(&values, q).unwrap();
                prop_assert!(p >= lo && p <= hi);
            }
        }
    }

    #[test]
    fn sample_std_dev_applies_bessel_correction() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let pop = std_dev(&data).unwrap();
        let sample = sample_std_dev(&data).unwrap();
        assert!((pop - 2.0).abs() < 1e-12);
        assert!((sample - 2.0 * (8.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(sample > pop, "Bessel correction widens the estimate");
        assert_eq!(sample_std_dev(&[1.0]), None);
    }
}
