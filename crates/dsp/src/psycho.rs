//! A simplified FFT-based psychoacoustic masking model — the
//! "Psychoacoustic Model" module of the encoder pipeline (Figure 4-7).
//!
//! Real MP3 encoders compute a masking threshold per scale-factor band
//! from the short-term spectrum; bands with a high signal-to-mask ratio
//! (SMR) get more bits. This model keeps that structure with simplified
//! numbers: band energies from the FFT magnitude spectrum, a two-sided
//! exponential spreading function, and a constant masking offset. What
//! the NoC experiments need from it is realistic *data flow* (spectra in,
//! per-band allocations out), which this preserves.

use crate::complex::Complex64;
use crate::fft::fft;

/// Per-band analysis output.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskingAnalysis {
    /// Energy per band.
    pub band_energy: Vec<f64>,
    /// Masking threshold per band (energies below this are inaudible).
    pub threshold: Vec<f64>,
    /// Signal-to-mask ratio per band (`energy / threshold`).
    pub smr: Vec<f64>,
}

impl MaskingAnalysis {
    /// Suggested bit weighting per band: proportional to `log2(1 + SMR)`,
    /// normalized to sum to 1. Bands that need fidelity get more bits.
    pub fn allocation_weights(&self) -> Vec<f64> {
        let raw: Vec<f64> = self.smr.iter().map(|&s| (1.0 + s).log2()).collect();
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            vec![1.0 / raw.len() as f64; raw.len()]
        } else {
            raw.iter().map(|&r| r / total).collect()
        }
    }
}

/// The psychoacoustic analyzer.
///
/// # Examples
///
/// ```
/// use noc_dsp::psycho::PsychoModel;
///
/// let model = PsychoModel::new(512, 16);
/// let tone: Vec<f64> = (0..512).map(|n| (n as f64 * 0.35).sin()).collect();
/// let analysis = model.analyze(&tone);
/// assert_eq!(analysis.band_energy.len(), 16);
/// // A pure tone concentrates energy (and masking) in one band:
/// let loudest = analysis
///     .band_energy
///     .iter()
///     .cloned()
///     .fold(f64::MIN, f64::max);
/// assert!(loudest > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PsychoModel {
    frame_len: usize,
    bands: usize,
    /// Masking offset: threshold = spread energy × this factor.
    masking_offset: f64,
    /// Absolute threshold floor (threshold in quiet).
    quiet_floor: f64,
}

impl PsychoModel {
    /// Creates a model for `frame_len`-sample frames (power of two) and
    /// `bands` analysis bands.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is not a power of two, or `bands` is zero or
    /// exceeds `frame_len / 2`.
    pub fn new(frame_len: usize, bands: usize) -> Self {
        assert!(
            frame_len.is_power_of_two() && frame_len >= 4,
            "frame length must be a power of two >= 4"
        );
        assert!(
            bands > 0 && bands <= frame_len / 2,
            "bands must be in 1..=frame_len/2"
        );
        Self {
            frame_len,
            bands,
            masking_offset: 10f64.powf(-13.0 / 10.0), // −13 dB offset
            quiet_floor: 1e-9,
        }
    }

    /// Number of analysis bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Analyzes one frame of PCM samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != frame_len`.
    pub fn analyze(&self, samples: &[f64]) -> MaskingAnalysis {
        assert_eq!(samples.len(), self.frame_len, "wrong frame length");
        // Magnitude spectrum of the (un-windowed — simplified) frame.
        let mut spectrum: Vec<Complex64> = samples.iter().map(|&x| Complex64::from_re(x)).collect();
        fft(&mut spectrum);
        let half = self.frame_len / 2;
        let bins_per_band = half / self.bands;
        // Band energies.
        let mut band_energy = vec![0.0; self.bands];
        for (bin, z) in spectrum.iter().take(half).enumerate() {
            let b = (bin / bins_per_band).min(self.bands - 1);
            band_energy[b] += z.norm_sqr() / self.frame_len as f64;
        }
        // Two-sided exponential spreading: each band's energy leaks into
        // its neighbours at −15 dB/band upward, −25 dB/band downward.
        let up = 10f64.powf(-15.0 / 10.0);
        let down = 10f64.powf(-25.0 / 10.0);
        let mut spread = vec![0.0; self.bands];
        for b in 0..self.bands {
            let e = band_energy[b];
            spread[b] += e;
            let mut gain = 1.0;
            for slot in spread.iter_mut().skip(b + 1) {
                gain *= up;
                *slot += e * gain;
            }
            gain = 1.0;
            for s in (0..b).rev() {
                gain *= down;
                spread[s] += e * gain;
            }
        }
        let threshold: Vec<f64> = spread
            .iter()
            .map(|&e| (e * self.masking_offset).max(self.quiet_floor))
            .collect();
        let smr: Vec<f64> = band_energy
            .iter()
            .zip(&threshold)
            .map(|(&e, &t)| e / t)
            .collect();
        MaskingAnalysis {
            band_energy,
            threshold,
            smr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(frame: usize, bin: usize) -> Vec<f64> {
        (0..frame)
            .map(|n| (2.0 * std::f64::consts::PI * bin as f64 * n as f64 / frame as f64).sin())
            .collect()
    }

    #[test]
    fn tone_energy_lands_in_the_right_band() {
        let model = PsychoModel::new(256, 16);
        // bin 40 of 128 half-bins, 8 bins/band -> band 5.
        let analysis = model.analyze(&tone(256, 40));
        let max_band = analysis
            .band_energy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_band, 5);
    }

    #[test]
    fn silence_hits_the_quiet_floor() {
        let model = PsychoModel::new(128, 8);
        let analysis = model.analyze(&vec![0.0; 128]);
        assert!(analysis.threshold.iter().all(|&t| t == 1e-9));
        assert!(analysis.smr.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn masking_raises_thresholds_near_a_loud_tone() {
        let model = PsychoModel::new(256, 16);
        let analysis = model.analyze(&tone(256, 40));
        // The band above the tone is masked harder than a distant band.
        assert!(
            analysis.threshold[6] > analysis.threshold[12] * 10.0,
            "neighbour {} vs distant {}",
            analysis.threshold[6],
            analysis.threshold[12]
        );
    }

    #[test]
    fn allocation_weights_sum_to_one() {
        let model = PsychoModel::new(256, 16);
        let mixed: Vec<f64> = (0..256)
            .map(|n| (n as f64 * 0.3).sin() + 0.2 * (n as f64 * 1.1).cos())
            .collect();
        let w = model.analyze(&mixed).allocation_weights();
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn silence_gets_uniform_allocation() {
        let model = PsychoModel::new(128, 8);
        let w = model.analyze(&vec![0.0; 128]).allocation_weights();
        assert!(w.iter().all(|&x| (x - 1.0 / 8.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "wrong frame length")]
    fn frame_length_is_checked() {
        let model = PsychoModel::new(128, 8);
        let _ = model.analyze(&[0.0; 64]);
    }

    #[test]
    #[should_panic(expected = "bands must be")]
    fn too_many_bands_rejected() {
        let _ = PsychoModel::new(64, 64);
    }
}
