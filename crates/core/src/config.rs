//! Protocol parameters of the stochastic communication scheme.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Tunable parameters of the gossip protocol.
///
/// The two knobs the paper exposes to designers are
///
/// * `forward_probability` (`p`) — the probability that a buffered message
///   is transmitted over each output link in a round. `p = 1` degenerates
///   into deterministic flooding (latency-optimal, energy-worst); lowering
///   `p` trades latency for energy.
/// * `default_ttl` — the time-to-live assigned to messages at creation,
///   bounding the number of retransmission rounds and hence the bandwidth
///   and energy spent per message.
///
/// `max_rounds` is a simulation-side budget: the engine gives up after
/// that many rounds if the application has not completed (the paper's
/// "encoding cannot finish" outcomes).
///
/// # Examples
///
/// ```
/// use stochastic_noc::StochasticConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = StochasticConfig::new(0.5, 12)?;
/// assert_eq!(config.forward_probability, 0.5);
/// let flooding = StochasticConfig::flooding(12);
/// assert_eq!(flooding.forward_probability, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticConfig {
    /// Probability `p` of forwarding a buffered message over a link.
    pub forward_probability: f64,
    /// TTL assigned to messages at creation (rounds the message survives).
    pub default_ttl: u8,
    /// Simulation round budget.
    pub max_rounds: u64,
    /// Early spread termination: once a message reaches its destination,
    /// every buffered copy is garbage-collected at the next round.
    ///
    /// §3.2.2 of the paper notes that "the spread could be terminated
    /// even earlier in order to reduce the number of messages transmitted
    /// in the network"; this flag implements that idea as an idealized
    /// oracle (the simulator knows the instant of delivery). Defaults to
    /// `false` — plain TTL-bounded gossip.
    pub terminate_on_delivery: bool,
}

/// Error returned for out-of-range protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidConfig {
    /// Description of the violated constraint.
    pub reason: String,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid protocol config: {}", self.reason)
    }
}

impl Error for InvalidConfig {}

impl StochasticConfig {
    /// Default round budget.
    pub const DEFAULT_MAX_ROUNDS: u64 = 1_000;

    /// Creates a configuration with the given forwarding probability and
    /// TTL.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if `p` is outside `[0, 1]` or the TTL is
    /// zero.
    pub fn new(forward_probability: f64, default_ttl: u8) -> Result<Self, InvalidConfig> {
        let config = Self {
            forward_probability,
            default_ttl,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            terminate_on_delivery: false,
        };
        config.validate()?;
        Ok(config)
    }

    /// The deterministic flooding configuration (`p = 1`): every tile
    /// always sends to all its neighbours. Latency-optimal — the hop count
    /// equals the Manhattan distance — but maximally expensive in
    /// bandwidth and energy.
    pub fn flooding(default_ttl: u8) -> Self {
        Self {
            forward_probability: 1.0,
            default_ttl: default_ttl.max(1),
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            terminate_on_delivery: false,
        }
    }

    /// Returns a copy with a different round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns a copy with early spread termination switched on or off.
    pub fn with_termination(mut self, terminate_on_delivery: bool) -> Self {
        self.terminate_on_delivery = terminate_on_delivery;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] describing the violation.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if !(0.0..=1.0).contains(&self.forward_probability) || self.forward_probability.is_nan() {
            return Err(InvalidConfig {
                reason: format!(
                    "forward probability {} not in [0, 1]",
                    self.forward_probability
                ),
            });
        }
        if self.default_ttl == 0 {
            return Err(InvalidConfig {
                reason: "ttl must be at least 1 (a 0-ttl message dies at creation)".to_string(),
            });
        }
        if self.max_rounds == 0 {
            return Err(InvalidConfig {
                reason: "round budget must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for StochasticConfig {
    /// `p = 0.5`, TTL 16: the mid-point configuration the paper's case
    /// studies recommend as near-latency-optimal at roughly half the
    /// flooding energy.
    fn default() -> Self {
        Self {
            forward_probability: 0.5,
            default_ttl: 16,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            terminate_on_delivery: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs_pass() {
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            StochasticConfig::new(p, 10).unwrap();
        }
    }

    #[test]
    fn out_of_range_probability_fails() {
        assert!(StochasticConfig::new(1.01, 10).is_err());
        assert!(StochasticConfig::new(-0.1, 10).is_err());
        assert!(StochasticConfig::new(f64::NAN, 10).is_err());
    }

    #[test]
    fn zero_ttl_fails() {
        let err = StochasticConfig::new(0.5, 0).unwrap_err();
        assert!(err.to_string().contains("ttl"));
    }

    #[test]
    fn zero_round_budget_fails() {
        let c = StochasticConfig::default().with_max_rounds(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn flooding_is_p_one() {
        let c = StochasticConfig::flooding(8);
        assert_eq!(c.forward_probability, 1.0);
        assert_eq!(c.default_ttl, 8);
        c.validate().unwrap();
        // Degenerate ttl input is clamped:
        assert_eq!(StochasticConfig::flooding(0).default_ttl, 1);
    }

    #[test]
    fn default_is_the_paper_midpoint() {
        let c = StochasticConfig::default();
        assert_eq!(c.forward_probability, 0.5);
        c.validate().unwrap();
    }
}
