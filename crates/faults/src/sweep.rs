//! Parameter-space sweeps over the fault model.
//!
//! The paper explores the whole parameter space of the fault model
//! exhaustively ("as realistic data about failure patterns in regular SoCs
//! are currently unavailable"); this module provides the sweep iterators
//! the experiment harness uses for every figure axis.

use crate::model::{FaultModel, FaultModelBuilder};

/// Evenly spaced values over `[start, end]` inclusive.
///
/// # Examples
///
/// ```
/// use noc_faults::linspace;
///
/// let v = linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
///
/// # Panics
///
/// Panics if `points` is zero.
pub fn linspace(start: f64, end: f64, points: usize) -> Vec<f64> {
    assert!(points > 0, "linspace needs at least one point");
    if points == 1 {
        return vec![start];
    }
    let step = (end - start) / (points - 1) as f64;
    (0..points).map(|i| start + step * i as f64).collect()
}

/// A one- or two-dimensional sweep over fault-model parameters.
///
/// Produces every combination of the configured axes applied on top of a
/// base model.
///
/// # Examples
///
/// ```
/// use noc_faults::{FaultModel, FaultSweep};
/// use noc_faults::linspace;
///
/// let sweep = FaultSweep::new(FaultModel::none())
///     .upset(linspace(0.0, 0.9, 4))
///     .overflow(linspace(0.0, 0.5, 3));
/// let points: Vec<FaultModel> = sweep.models().collect();
/// assert_eq!(points.len(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSweep {
    base: FaultModel,
    tiles: Vec<f64>,
    links: Vec<f64>,
    upset: Vec<f64>,
    overflow: Vec<f64>,
    sigma: Vec<f64>,
}

impl FaultSweep {
    /// Starts a sweep anchored at `base` (unswept parameters keep the base
    /// values).
    pub fn new(base: FaultModel) -> Self {
        Self {
            base,
            tiles: vec![],
            links: vec![],
            upset: vec![],
            overflow: vec![],
            sigma: vec![],
        }
    }

    /// Values for `p_tiles`.
    pub fn tiles(mut self, values: Vec<f64>) -> Self {
        self.tiles = values;
        self
    }

    /// Values for `p_links`.
    pub fn links(mut self, values: Vec<f64>) -> Self {
        self.links = values;
        self
    }

    /// Values for `p_upset`.
    pub fn upset(mut self, values: Vec<f64>) -> Self {
        self.upset = values;
        self
    }

    /// Values for `p_overflow`.
    pub fn overflow(mut self, values: Vec<f64>) -> Self {
        self.overflow = values;
        self
    }

    /// Values for `sigma_synch`.
    pub fn sigma_synch(mut self, values: Vec<f64>) -> Self {
        self.sigma = values;
        self
    }

    /// Iterates over every combination of the configured axes.
    ///
    /// Axes that were not configured contribute a single point: the base
    /// model's value. Models that fail validation (e.g. a probability
    /// above 1 slipped into an axis) are skipped.
    pub fn models(&self) -> impl Iterator<Item = FaultModel> + '_ {
        let one = |v: &Vec<f64>, base: f64| -> Vec<f64> {
            if v.is_empty() {
                vec![base]
            } else {
                v.clone()
            }
        };
        let tiles = one(&self.tiles, self.base.p_tiles);
        let links = one(&self.links, self.base.p_links);
        let upset = one(&self.upset, self.base.p_upset);
        let overflow = one(&self.overflow, self.base.p_overflow);
        let sigma = one(&self.sigma, self.base.sigma_synch);
        let base = self.base;

        tiles.into_iter().flat_map(move |pt| {
            let links = links.clone();
            let upset = upset.clone();
            let overflow = overflow.clone();
            let sigma = sigma.clone();
            links.into_iter().flat_map(move |pl| {
                let upset = upset.clone();
                let overflow = overflow.clone();
                let sigma = sigma.clone();
                upset.into_iter().flat_map(move |pu| {
                    let overflow = overflow.clone();
                    let sigma = sigma.clone();
                    overflow.into_iter().flat_map(move |po| {
                        let sigma = sigma.clone();
                        sigma.into_iter().filter_map(move |sg| {
                            FaultModelBuilder::new()
                                .p_tiles(pt)
                                .p_links(pl)
                                .p_upset(pu)
                                .p_overflow(po)
                                .sigma_synch(sg)
                                .error_model(base.error_model)
                                .overflow_mode(base.overflow_mode)
                                .build()
                                .ok()
                        })
                    })
                })
            })
        })
    }

    /// Number of grid points the sweep will produce (before validation
    /// filtering).
    pub fn len(&self) -> usize {
        let d = |v: &Vec<f64>| v.len().max(1);
        d(&self.tiles) * d(&self.links) * d(&self.upset) * d(&self.overflow) * d(&self.sigma)
    }

    /// True if the sweep contains no grid points (never happens via the
    /// builder API, which always has the base point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 0.9, 10);
        assert_eq!(v.len(), 10);
        assert!((v[0] - 0.0).abs() < 1e-12);
        assert!((v[9] - 0.9).abs() < 1e-12);
        assert!((v[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(0.3, 0.9, 1), vec![0.3]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_points_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn unconfigured_sweep_yields_base() {
        let base = FaultModel::builder().p_upset(0.2).build().unwrap();
        let models: Vec<_> = FaultSweep::new(base).models().collect();
        assert_eq!(models, vec![base]);
    }

    #[test]
    fn two_axis_sweep_is_a_cross_product() {
        let sweep = FaultSweep::new(FaultModel::none())
            .upset(vec![0.0, 0.5])
            .tiles(vec![0.0, 0.1, 0.2]);
        assert_eq!(sweep.len(), 6);
        let models: Vec<_> = sweep.models().collect();
        assert_eq!(models.len(), 6);
        // Every combination present:
        for pu in [0.0, 0.5] {
            for pt in [0.0, 0.1, 0.2] {
                assert!(models.iter().any(|m| m.p_upset == pu && m.p_tiles == pt));
            }
        }
    }

    #[test]
    fn invalid_points_are_filtered() {
        let sweep = FaultSweep::new(FaultModel::none()).upset(vec![0.5, 1.5]);
        let models: Vec<_> = sweep.models().collect();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].p_upset, 0.5);
    }

    #[test]
    fn base_settings_propagate() {
        use crate::model::OverflowMode;
        use crate::ErrorModel;
        let base = FaultModel::builder()
            .error_model(ErrorModel::RandomBitError)
            .overflow_mode(OverflowMode::Structural { capacity: 4 })
            .build()
            .unwrap();
        let models: Vec<_> = FaultSweep::new(base).upset(vec![0.1]).models().collect();
        assert_eq!(models[0].error_model, ErrorModel::RandomBitError);
        assert_eq!(
            models[0].overflow_mode,
            OverflowMode::Structural { capacity: 4 }
        );
    }
}
