//! The three candidate fabrics of Figure 5-2, as topology constructors
//! with a uniform logical-placement interface.

use noc_fabric::{NodeId, Topology};
use serde::Serialize;

/// Which fabric an [`Architecture`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ArchitectureKind {
    /// One flat `2s × 2s` grid.
    Flat,
    /// Four `s × s` quadrants joined through a central router node (the
    /// "central router" option of Figure 5-2; the paper's Figure 5-3
    /// measurements use this as their hierarchical NoC).
    Hierarchical,
    /// Four `s × s` quadrants whose gateways are directly interconnected
    /// as an upper-level ring — a deeper hierarchy with no single bridge
    /// node.
    GatewayMesh,
    /// Four `s × s` quadrants joined by a shared-bus bridge node with a
    /// per-round forwarding limit.
    BusConnected,
}

impl ArchitectureKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ArchitectureKind::Flat => "flat NoC",
            ArchitectureKind::Hierarchical => "hierarchical NoC",
            ArchitectureKind::GatewayMesh => "gateway-mesh NoC",
            ArchitectureKind::BusConnected => "bus-connected NoCs",
        }
    }
}

/// A four-quadrant system fabric with a uniform logical addressing
/// scheme: `(quadrant, x, y)` with `quadrant ∈ 0..4` and `x, y ∈ 0..s`.
///
/// The same logical placement maps onto all three architectures, so a
/// workload can be replayed unchanged across them.
///
/// # Examples
///
/// ```
/// use noc_diversity::Architecture;
///
/// let flat = Architecture::flat(4);
/// let hier = Architecture::hierarchical(4);
/// // Same logical tile, different physical fabrics:
/// let a = flat.tile(2, 1, 3);
/// let b = hier.tile(2, 1, 3);
/// assert!(a.index() < flat.topology().node_count());
/// assert!(b.index() < hier.topology().node_count());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Architecture {
    kind: ArchitectureKind,
    quadrant_side: usize,
    topology: Topology,
    /// The bridge node (router or bus), if any.
    bridge: Option<NodeId>,
    /// Bus service rate (messages per round); meaningful for
    /// [`ArchitectureKind::BusConnected`] only.
    bus_rate: usize,
}

impl Architecture {
    /// One flat `2s × 2s` grid; quadrant `q` is the corresponding
    /// `s × s` sub-block.
    ///
    /// # Panics
    ///
    /// Panics if `quadrant_side` is zero.
    pub fn flat(quadrant_side: usize) -> Self {
        assert!(quadrant_side > 0, "quadrant side must be positive");
        Self {
            kind: ArchitectureKind::Flat,
            quadrant_side,
            topology: Topology::grid(2 * quadrant_side, 2 * quadrant_side),
            bridge: None,
            bus_rate: 1,
        }
    }

    /// Four `s × s` quadrant grids, each with a gateway tile at its local
    /// center, all gateways linked to one central router node (the
    /// left-most option of Figure 5-2).
    ///
    /// # Panics
    ///
    /// Panics if `quadrant_side` is zero.
    pub fn hierarchical(quadrant_side: usize) -> Self {
        let (topology, bridge) = Self::quadrants_with_bridge(quadrant_side, "hierarchical NoC");
        Self {
            kind: ArchitectureKind::Hierarchical,
            quadrant_side,
            topology,
            bridge: Some(bridge),
            bus_rate: 1,
        }
    }

    /// Four `s × s` quadrant grids joined by a shared bus, modelled as a
    /// bridge node identical to the hierarchical router — the difference
    /// is imposed at simulation time by limiting the bridge's egress
    /// ([`Architecture::bridge_egress_limit`]) to one message per round.
    ///
    /// # Panics
    ///
    /// Panics if `quadrant_side` is zero.
    pub fn bus_connected(quadrant_side: usize) -> Self {
        Self::bus_connected_with_rate(quadrant_side, 1)
    }

    /// Four `s × s` quadrant grids whose gateway tiles are joined
    /// directly in an upper-level ring (0-1-3-2-0 in quadrant order), so
    /// no extra router node exists and no single node bridges the
    /// quadrants.
    ///
    /// # Panics
    ///
    /// Panics if `quadrant_side` is zero.
    pub fn gateway_mesh(quadrant_side: usize) -> Self {
        assert!(quadrant_side > 0, "quadrant side must be positive");
        let side = quadrant_side;
        let per = side * side;
        let local = |q: usize, x: usize, y: usize| NodeId(q * per + y * side + x);
        let mut edges = Vec::new();
        for q in 0..4 {
            for y in 0..side {
                for x in 0..side {
                    if x + 1 < side {
                        edges.push((local(q, x, y), local(q, x + 1, y)));
                        edges.push((local(q, x + 1, y), local(q, x, y)));
                    }
                    if y + 1 < side {
                        edges.push((local(q, x, y), local(q, x, y + 1)));
                        edges.push((local(q, x, y + 1), local(q, x, y)));
                    }
                }
            }
        }
        // Upper-level ring over the gateways, in planar quadrant order.
        let gw = |q: usize| local(q, side / 2, side / 2);
        for (a, b) in [(0, 1), (1, 3), (3, 2), (2, 0)] {
            edges.push((gw(a), gw(b)));
            edges.push((gw(b), gw(a)));
        }
        Self {
            kind: ArchitectureKind::GatewayMesh,
            quadrant_side,
            topology: Topology::from_links("gateway-mesh NoC".to_string(), 4 * per, edges),
            bridge: None,
            bus_rate: 1,
        }
    }

    /// Like [`Architecture::bus_connected`] with an explicit bus service
    /// rate: the number of messages the shared bus can move per gossip
    /// round (a gossip round spans several bus cycles, so rates above 1
    /// model faster buses).
    ///
    /// # Panics
    ///
    /// Panics if `quadrant_side` or `messages_per_round` is zero.
    pub fn bus_connected_with_rate(quadrant_side: usize, messages_per_round: usize) -> Self {
        assert!(messages_per_round > 0, "bus service rate must be positive");
        let (topology, bridge) = Self::quadrants_with_bridge(quadrant_side, "bus-connected NoCs");
        Self {
            kind: ArchitectureKind::BusConnected,
            quadrant_side,
            topology,
            bridge: Some(bridge),
            bus_rate: messages_per_round,
        }
    }

    fn quadrants_with_bridge(side: usize, name: &str) -> (Topology, NodeId) {
        assert!(side > 0, "quadrant side must be positive");
        let per = side * side;
        let bridge = NodeId(4 * per);
        let local = |q: usize, x: usize, y: usize| NodeId(q * per + y * side + x);
        let mut edges = Vec::new();
        for q in 0..4 {
            for y in 0..side {
                for x in 0..side {
                    if x + 1 < side {
                        edges.push((local(q, x, y), local(q, x + 1, y)));
                        edges.push((local(q, x + 1, y), local(q, x, y)));
                    }
                    if y + 1 < side {
                        edges.push((local(q, x, y), local(q, x, y + 1)));
                        edges.push((local(q, x, y + 1), local(q, x, y)));
                    }
                }
            }
            // Gateway at the local center.
            let gw = local(q, side / 2, side / 2);
            edges.push((gw, bridge));
            edges.push((bridge, gw));
        }
        (
            Topology::from_links(name.to_string(), 4 * per + 1, edges),
            bridge,
        )
    }

    /// The fabric kind.
    pub fn kind(&self) -> ArchitectureKind {
        self.kind
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Quadrant side `s`.
    pub fn quadrant_side(&self) -> usize {
        self.quadrant_side
    }

    /// The bridge node (router/bus), if this architecture has one.
    pub fn bridge(&self) -> Option<NodeId> {
        self.bridge
    }

    /// Per-round forwarding limit to impose on the bridge: the bus
    /// service rate for the shared bus, none otherwise.
    pub fn bridge_egress_limit(&self) -> Option<(NodeId, usize)> {
        match self.kind {
            ArchitectureKind::BusConnected => self.bridge.map(|b| (b, self.bus_rate)),
            _ => None,
        }
    }

    /// Physical tile of logical position `(quadrant, x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `quadrant >= 4` or `x`/`y` are outside the quadrant.
    pub fn tile(&self, quadrant: usize, x: usize, y: usize) -> NodeId {
        let s = self.quadrant_side;
        assert!(quadrant < 4, "quadrant {quadrant} out of range");
        assert!(x < s && y < s, "({x},{y}) outside quadrant of side {s}");
        match self.kind {
            ArchitectureKind::Flat => {
                let (qx, qy) = (quadrant % 2, quadrant / 2);
                let (gx, gy) = (qx * s + x, qy * s + y);
                NodeId(gy * 2 * s + gx)
            }
            ArchitectureKind::Hierarchical
            | ArchitectureKind::BusConnected
            | ArchitectureKind::GatewayMesh => NodeId(quadrant * s * s + y * s + x),
        }
    }

    /// Gateway tile of a quadrant (the local center; defined for all
    /// architectures so placements stay comparable).
    ///
    /// # Panics
    ///
    /// Panics if `quadrant >= 4`.
    pub fn gateway(&self, quadrant: usize) -> NodeId {
        self.tile(quadrant, self.quadrant_side / 2, self.quadrant_side / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_big_grid() {
        let a = Architecture::flat(4);
        assert_eq!(a.topology().node_count(), 64);
        assert_eq!(a.bridge(), None);
        assert_eq!(a.bridge_egress_limit(), None);
        assert!(a.topology().is_connected_with(|_| true, |_| true));
    }

    #[test]
    fn hierarchical_has_a_router_hub() {
        let a = Architecture::hierarchical(4);
        assert_eq!(a.topology().node_count(), 65);
        let bridge = a.bridge().unwrap();
        assert_eq!(a.topology().out_links(bridge).len(), 4);
        assert!(a.topology().is_connected_with(|_| true, |_| true));
        assert_eq!(a.bridge_egress_limit(), None);
    }

    #[test]
    fn bus_connected_limits_the_bridge() {
        let a = Architecture::bus_connected(4);
        let (node, limit) = a.bridge_egress_limit().unwrap();
        assert_eq!(Some(node), a.bridge());
        assert_eq!(limit, 1);
    }

    #[test]
    fn quadrants_only_communicate_through_the_bridge() {
        let a = Architecture::hierarchical(3);
        let bridge = a.bridge().unwrap();
        // Removing the bridge disconnects the quadrants.
        let connected = a.topology().is_connected_with(|n| n != bridge, |_| true);
        assert!(!connected);
    }

    #[test]
    fn logical_tiles_are_distinct_within_an_architecture() {
        for arch in [
            Architecture::flat(3),
            Architecture::hierarchical(3),
            Architecture::bus_connected(3),
        ] {
            let mut tiles: Vec<NodeId> = (0..4)
                .flat_map(|q| (0..3).flat_map(move |y| (0..3).map(move |x| (q, x, y))))
                .map(|(q, x, y)| arch.tile(q, x, y))
                .collect();
            let n = tiles.len();
            tiles.sort();
            tiles.dedup();
            assert_eq!(tiles.len(), n, "collision in {:?}", arch.kind());
        }
    }

    #[test]
    fn flat_quadrant_blocks_tile_the_big_grid() {
        let a = Architecture::flat(2);
        // Quadrant 0 occupies the top-left 2x2 of the 4x4 grid.
        assert_eq!(a.tile(0, 0, 0), NodeId(0));
        assert_eq!(a.tile(0, 1, 1), NodeId(5));
        // Quadrant 1 is top-right:
        assert_eq!(a.tile(1, 0, 0), NodeId(2));
        // Quadrant 2 is bottom-left:
        assert_eq!(a.tile(2, 0, 0), NodeId(8));
        // Quadrant 3 is bottom-right:
        assert_eq!(a.tile(3, 1, 1), NodeId(15));
    }

    #[test]
    fn gateways_are_quadrant_centers() {
        let a = Architecture::hierarchical(5);
        for q in 0..4 {
            assert_eq!(a.gateway(q), a.tile(q, 2, 2));
        }
    }

    #[test]
    fn gateway_mesh_has_no_bridge_node() {
        let a = Architecture::gateway_mesh(4);
        assert_eq!(a.topology().node_count(), 64);
        assert_eq!(a.bridge(), None);
        assert!(a.topology().is_connected_with(|_| true, |_| true));
        // Each gateway carries its 4 grid ports plus 2 ring ports.
        for q in 0..4 {
            assert_eq!(a.topology().out_links(a.gateway(q)).len(), 6);
        }
    }

    #[test]
    fn gateway_mesh_survives_any_single_gateway_crash() {
        // Unlike the central-router fabric, the ring keeps the other
        // three quadrants connected when one gateway dies.
        let a = Architecture::gateway_mesh(3);
        for q in 0..4 {
            let dead = a.gateway(q);
            let still_connected = a.topology().is_connected_with(|n| n != dead, |_| true);
            // Killing gateway q isolates only quadrant q's remaining
            // tiles; check the other quadrants still reach each other.
            let others: Vec<_> = (0..4).filter(|&o| o != q).collect();
            let from = a.tile(others[0], 0, 0);
            let to = a.tile(others[2], 0, 0);
            assert!(
                path_exists(&a, from, to, dead),
                "quadrants {} and {} separated by killing gateway {q}",
                others[0],
                others[2]
            );
            let _ = still_connected; // quadrant q itself is cut off, which is fine
        }
    }

    fn path_exists(a: &Architecture, from: NodeId, to: NodeId, dead: NodeId) -> bool {
        // BFS avoiding the dead node.
        let t = a.topology();
        let mut seen = vec![false; t.node_count()];
        let mut queue = std::collections::VecDeque::from([from]);
        seen[from.index()] = true;
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            for &l in t.out_links(n) {
                let next = t.link(l).to;
                if next != dead && !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        false
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quadrant_bounds_checked() {
        let _ = Architecture::flat(2).tile(4, 0, 0);
    }

    #[test]
    fn hierarchical_cross_quadrant_distance_goes_through_bridge() {
        let a = Architecture::hierarchical(4);
        let from = a.tile(0, 0, 0);
        let to = a.tile(3, 3, 3);
        // local center is 4 hops from corner (2+2); corner->gw 4, gw->bridge 1,
        // bridge->gw 1, gw->far-corner: (3-2)+(3-2)=2 -> total 8.
        assert_eq!(a.topology().hop_distance(from, to), Some(8));
    }
}
