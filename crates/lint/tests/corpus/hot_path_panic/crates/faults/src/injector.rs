//! Allowlisted negative: constructor-time validation panic.

pub fn checked(model: Result<u32, String>) -> u32 {
    // noc-lint: allow(hot-path-panic, reason = "constructor-time validation; runs once, outside the per-round loop")
    model.unwrap_or_else(|e| panic!("invalid model: {e}"))
}
