//! Bit-level I/O, Elias-gamma entropy coding and the bit reservoir — the
//! "Bit Reservoir" and "Output" modules of the encoder pipeline
//! (Figure 4-7).
//!
//! MP3 smooths its instantaneous bit-rate with a *bit reservoir*: frames
//! that need fewer bits than the nominal budget donate the surplus to a
//! bounded reservoir that hard frames may draw from. [`BitReservoir`]
//! implements exactly that accounting; [`BitWriter`]/[`BitReader`] with
//! the signed Elias-gamma code are the entropy-coding layer.

/// Number of bits the signed Elias-gamma code spends on `value`.
///
/// Zigzag maps the signed value to unsigned (`0, -1, 1, -2, …` →
/// `0, 1, 2, 3, …`), then gamma-codes `zigzag + 1`.
///
/// # Examples
///
/// ```
/// use noc_dsp::bitstream::coded_bits;
///
/// assert_eq!(coded_bits(0), 1);  // "1"
/// assert_eq!(coded_bits(-1), 3); // "010"
/// assert_eq!(coded_bits(1), 3);  // "011"
/// ```
pub fn coded_bits(value: i32) -> usize {
    let z = zigzag(value) + 1;
    let n = 64 - z.leading_zeros() as usize; // bit length of z
    2 * n - 1
}

#[inline]
fn zigzag(value: i32) -> u64 {
    let v = value as i64;
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i32 {
    (((z >> 1) as i64) ^ -((z & 1) as i64)) as i32
}

/// An append-only bit buffer.
///
/// # Examples
///
/// ```
/// use noc_dsp::bitstream::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_signed_gamma(-7);
/// let bytes = w.into_bytes();
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3), Some(0b101));
/// assert_eq!(r.read_signed_gamma(), Some(-7));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let pos = self.bit_len % 8;
        if pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("just pushed") |= 0x80 >> pos;
        }
        self.bit_len += 1;
    }

    /// Appends the low `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit(value >> i & 1 == 1);
        }
    }

    /// Appends a signed value with the zigzag Elias-gamma code.
    pub fn write_signed_gamma(&mut self, value: i32) {
        let z = zigzag(value) + 1;
        let n = 64 - z.leading_zeros(); // bit length
        for _ in 0..n - 1 {
            self.write_bit(false);
        }
        self.write_bits(z, n);
    }

    /// Finishes the stream, returning the bytes (zero-padded to a byte
    /// boundary).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// A bit-level reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, cursor: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.cursor
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.cursor >= self.bytes.len() * 8 {
            return None;
        }
        let byte = self.bytes[self.cursor / 8];
        let bit = byte & (0x80 >> (self.cursor % 8)) != 0;
        self.cursor += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first; `None` if fewer remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < count as usize {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..count {
            out = out << 1 | self.read_bit()? as u64;
        }
        Some(out)
    }

    /// Reads one signed Elias-gamma value; `None` on a truncated stream.
    pub fn read_signed_gamma(&mut self) -> Option<i32> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 63 {
                return None; // corrupt stream
            }
        }
        let rest = if zeros == 0 {
            0
        } else {
            self.read_bits(zeros)?
        };
        let z = (1u64 << zeros | rest) - 1;
        Some(unzigzag(z))
    }
}

/// The MP3-style bit reservoir: a bounded pool of unused bits carried
/// between frames to smooth the output bit-rate.
///
/// # Examples
///
/// ```
/// use noc_dsp::bitstream::BitReservoir;
///
/// let mut reservoir = BitReservoir::new(1000);
/// // An easy frame used 300 of its 400-bit budget:
/// reservoir.deposit(100);
/// // A hard frame can now spend up to budget + reservoir:
/// assert_eq!(reservoir.available(), 100);
/// assert_eq!(reservoir.withdraw(60), 60);
/// assert_eq!(reservoir.available(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitReservoir {
    capacity: usize,
    level: usize,
    overflowed: usize,
}

impl BitReservoir {
    /// Creates an empty reservoir with the given capacity (bits).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            level: 0,
            overflowed: 0,
        }
    }

    /// Bits currently available to withdraw.
    pub fn available(&self) -> usize {
        self.level
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bits lost because the reservoir was full (stuffing bits in a real
    /// encoder).
    pub fn overflowed(&self) -> usize {
        self.overflowed
    }

    /// Deposits surplus bits; anything beyond capacity is lost (and
    /// counted).
    pub fn deposit(&mut self, bits: usize) {
        let space = self.capacity - self.level;
        let stored = bits.min(space);
        self.level += stored;
        self.overflowed += bits - stored;
    }

    /// Withdraws up to `bits`, returning how many were actually granted.
    pub fn withdraw(&mut self, bits: usize) -> usize {
        let granted = bits.min(self.level);
        self.level -= granted;
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [-1000, -2, -1, 0, 1, 2, 1000, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn gamma_code_lengths() {
        assert_eq!(coded_bits(0), 1);
        assert_eq!(coded_bits(-1), 3);
        assert_eq!(coded_bits(1), 3);
        assert_eq!(coded_bits(2), 5);
        // Lengths are monotone in |value|:
        for v in 1..100 {
            assert!(coded_bits(v) >= coded_bits(v - 1));
        }
    }

    #[test]
    fn writer_reader_round_trip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD, 16);
        w.write_bit(true);
        w.write_bits(0x3, 2);
        assert_eq!(w.bit_len(), 19);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(16), Some(0xDEAD));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(2), Some(0x3));
    }

    #[test]
    fn reading_past_the_end_returns_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn gamma_stream_round_trips() {
        let values = [0, 1, -1, 5, -5, 100, -100, 32767, -32768];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_signed_gamma(v);
        }
        let expected_bits: usize = values.iter().map(|&v| coded_bits(v)).sum();
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_signed_gamma(), Some(v));
        }
    }

    #[test]
    fn truncated_gamma_returns_none() {
        let mut w = BitWriter::new();
        w.write_signed_gamma(1000);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..1]);
        assert_eq!(r.read_signed_gamma(), None);
    }

    #[test]
    fn reservoir_caps_at_capacity() {
        let mut res = BitReservoir::new(100);
        res.deposit(150);
        assert_eq!(res.available(), 100);
        assert_eq!(res.overflowed(), 50);
        assert_eq!(res.withdraw(500), 100);
        assert_eq!(res.available(), 0);
    }

    #[test]
    fn reservoir_accounting_is_exact() {
        let mut res = BitReservoir::new(1000);
        res.deposit(300);
        assert_eq!(res.withdraw(100), 100);
        res.deposit(50);
        assert_eq!(res.available(), 250);
        assert_eq!(res.overflowed(), 0);
        assert_eq!(res.capacity(), 1000);
    }

    proptest! {
        #[test]
        fn arbitrary_gamma_sequences_round_trip(
            values in proptest::collection::vec(any::<i32>(), 0..200)
        ) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.write_signed_gamma(v);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.read_signed_gamma(), Some(v));
            }
        }

        #[test]
        fn bit_len_matches_coded_bits(
            values in proptest::collection::vec(-10000i32..10000, 0..100)
        ) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.write_signed_gamma(v);
            }
            let expect: usize = values.iter().map(|&v| coded_bits(v)).sum();
            prop_assert_eq!(w.bit_len(), expect);
        }

        #[test]
        fn reservoir_never_exceeds_capacity(
            ops in proptest::collection::vec((any::<bool>(), 0usize..500), 0..100),
            cap in 1usize..1000,
        ) {
            let mut res = BitReservoir::new(cap);
            for (is_deposit, amount) in ops {
                if is_deposit {
                    res.deposit(amount);
                } else {
                    let granted = res.withdraw(amount);
                    prop_assert!(granted <= amount);
                }
                prop_assert!(res.available() <= cap);
            }
        }
    }
}
