// Corpus fixture: the serialized snapshot captures `round` only.

/// Serialized state snapshot.
pub struct Checkpoint {
    /// Mirrors `Simulation::round`.
    pub round: u64,
}

impl Checkpoint {
    /// Captures the serializable state of a simulation.
    pub fn capture(sim: &Simulation) -> Self {
        Self { round: sim.round }
    }
}
