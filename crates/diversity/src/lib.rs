//! On-chip diversity: hybrid communication architectures (Chapter 5).
//!
//! The paper's closing chapter argues that heterogeneous SoCs will mix
//! architectural styles, and sketches three candidate interconnects for a
//! four-quadrant system (Figure 5-2), compared on an acoustic
//! beamforming workload (Figure 5-3):
//!
//! * **flat NoC** — one large tile grid ([`Architecture::flat`]);
//! * **hierarchical NoC** — four stochastic quadrants joined through a
//!   central router node ([`Architecture::hierarchical`]);
//! * **bus-connected NoCs** — four quadrants joined by a shared bus,
//!   modelled as a bridge node that can forward only a limited number of
//!   messages per round ([`Architecture::bus_connected`]).
//!
//! All three run the *same* stochastic communication protocol and the
//! same workload; only the fabric changes, which is exactly the
//! comparison of Figure 5-3.
//!
//! # Examples
//!
//! ```
//! use noc_diversity::{compare_architectures, ComparisonParams};
//!
//! let results = compare_architectures(&ComparisonParams::quick());
//! assert_eq!(results.len(), 3);
//! // Every architecture moves the beamforming traffic:
//! assert!(results.iter().all(|r| r.transmissions > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod architecture;
mod comparison;

pub use architecture::{Architecture, ArchitectureKind};
pub use comparison::{compare_architectures, ArchitectureResult, ComparisonParams};
