//! CRC parameter sets (Rocksoft^tm model).

use std::fmt;

/// A complete description of a CRC variant in the classic Rocksoft model.
///
/// `width` must be in `1..=64`. The polynomial is given in normal (MSB-first)
/// notation with the implicit leading `x^width` term omitted, e.g. the
/// CCITT polynomial `x^16 + x^12 + x^5 + 1` is `0x1021`.
///
/// # Examples
///
/// ```
/// use noc_crc::CrcParams;
///
/// let p = CrcParams::CRC16_CCITT;
/// assert_eq!(p.width, 16);
/// assert_eq!(p.poly, 0x1021);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrcParams {
    /// Human-readable catalogue name.
    pub name: &'static str,
    /// CRC width in bits (1..=64).
    pub width: u32,
    /// Generator polynomial, normal representation.
    pub poly: u64,
    /// Initial shift-register contents.
    pub init: u64,
    /// Whether input bytes are processed LSB-first.
    pub reflect_in: bool,
    /// Whether the final register is bit-reflected before the XOR-out.
    pub reflect_out: bool,
    /// Value XORed onto the register to produce the final checksum.
    pub xor_out: u64,
}

impl CrcParams {
    /// CRC-5/USB: tiny CRC used in USB token packets; exercises `width < 8`.
    pub const CRC5_USB: CrcParams = CrcParams {
        name: "CRC-5/USB",
        width: 5,
        poly: 0x05,
        init: 0x1F,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0x1F,
    };

    /// CRC-8/ATM HEC (catalogue name CRC-8/I-432-1), used in ATM cell
    /// headers — the paper explicitly cites the ATM layer as prior art.
    pub const CRC8_ATM: CrcParams = CrcParams {
        name: "CRC-8/ATM",
        width: 8,
        poly: 0x07,
        init: 0x00,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x55,
    };

    /// CRC-16/CCITT-FALSE: the default on-chip packet CRC in this library.
    pub const CRC16_CCITT: CrcParams = CrcParams {
        name: "CRC-16/CCITT-FALSE",
        width: 16,
        poly: 0x1021,
        init: 0xFFFF,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x0000,
    };

    /// CRC-16/ARC (the classic "IBM" CRC-16).
    pub const CRC16_IBM: CrcParams = CrcParams {
        name: "CRC-16/ARC",
        width: 16,
        poly: 0x8005,
        init: 0x0000,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0x0000,
    };

    /// CRC-32 (IEEE 802.3), as used by Ethernet.
    pub const CRC32: CrcParams = CrcParams {
        name: "CRC-32",
        width: 32,
        poly: 0x04C1_1DB7,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// All built-in parameter sets, handy for sweeping tests.
    pub const ALL: &'static [CrcParams] = &[
        Self::CRC5_USB,
        Self::CRC8_ATM,
        Self::CRC16_CCITT,
        Self::CRC16_IBM,
        Self::CRC32,
    ];

    /// Bit mask covering exactly `width` bits.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Number of whole bytes needed to store the checksum on the wire.
    #[inline]
    pub fn tag_bytes(&self) -> usize {
        self.width.div_ceil(8) as usize
    }

    /// Validates the invariants of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant: a zero or too-large
    /// `width`, or `poly`/`init`/`xor_out` with bits above `width`.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.width > 64 {
            return Err(format!("width {} outside 1..=64", self.width));
        }
        let m = self.mask();
        for (label, v) in [
            ("poly", self.poly),
            ("init", self.init),
            ("xor_out", self.xor_out),
        ] {
            if v & !m != 0 {
                return Err(format!("{label} {v:#x} exceeds width {}", self.width));
            }
        }
        if self.poly & 1 == 0 {
            return Err("polynomial must have its x^0 term set".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for CrcParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (poly {:#x}, width {})",
            self.name, self.poly, self.width
        )
    }
}

/// Reflects the low `width` bits of `value` (bit 0 swaps with bit width-1).
#[inline]
pub(crate) fn reflect(value: u64, width: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..width {
        if value >> i & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_correct() {
        assert_eq!(CrcParams::CRC5_USB.mask(), 0b1_1111);
        assert_eq!(CrcParams::CRC16_CCITT.mask(), 0xFFFF);
        assert_eq!(CrcParams::CRC32.mask(), 0xFFFF_FFFF);
    }

    #[test]
    fn tag_bytes_round_up() {
        assert_eq!(CrcParams::CRC5_USB.tag_bytes(), 1);
        assert_eq!(CrcParams::CRC16_CCITT.tag_bytes(), 2);
        assert_eq!(CrcParams::CRC32.tag_bytes(), 4);
    }

    #[test]
    fn builtin_params_validate() {
        for p in CrcParams::ALL {
            p.validate().expect("builtin parameter set must be valid");
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = CrcParams::CRC8_ATM;
        p.width = 0;
        assert!(p.validate().is_err());

        let mut p = CrcParams::CRC8_ATM;
        p.poly = 0x1FF;
        assert!(p.validate().is_err());

        let mut p = CrcParams::CRC8_ATM;
        p.poly = 0x06; // even polynomial
        assert!(p.validate().is_err());
    }

    #[test]
    fn reflect_is_an_involution() {
        for v in [0u64, 1, 0xAB, 0x1234, 0xDEAD_BEEF] {
            for w in [5u32, 8, 16, 32] {
                let masked = v & ((1 << w) - 1);
                assert_eq!(reflect(reflect(masked, w), w), masked);
            }
        }
    }

    #[test]
    fn reflect_known_values() {
        assert_eq!(reflect(0b0000_0001, 8), 0b1000_0000);
        assert_eq!(reflect(0b1100_0000, 8), 0b0000_0011);
        assert_eq!(reflect(0x1, 16), 0x8000);
    }

    #[test]
    fn display_mentions_name_and_width() {
        let s = CrcParams::CRC32.to_string();
        assert!(s.contains("CRC-32"));
        assert!(s.contains("32"));
    }
}
