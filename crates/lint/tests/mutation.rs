//! Mutation checks: prove the structural rules detect real drift, not
//! just their fixtures. Each test reads the *live* workspace sources,
//! applies one representative mutation in memory (a field the
//! checkpoint misses, a serialization line deleted, an event variant
//! stub, a draw smuggled into a worker closure), and asserts the lint
//! report turns red — alongside an unmutated control proving the green
//! baseline is real.

use std::fs;
use std::path::{Path, PathBuf};

use noc_lint::lint_files;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Reads the given workspace-relative files into `lint_files` inputs.
fn read_set(rel_paths: &[&str]) -> Vec<(String, String)> {
    let root = workspace_root();
    rel_paths
        .iter()
        .map(|rel| {
            let source =
                fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
            (rel.to_string(), source)
        })
        .collect()
}

/// The files the checkpoint-coverage rule consults: every tracked
/// struct declaration plus every serialization corpus source
/// (checkpoint.rs and the files hosting checkpoint()/snapshot()/
/// config_digest_value() bodies).
const CHECKPOINT_SET: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/send_buffer.rs",
    "crates/core/src/trace.rs",
    "crates/fabric/src/clock.rs",
    "crates/faults/src/adversary.rs",
    "crates/faults/src/injector.rs",
];

fn unallowed_of<'r>(report: &'r noc_lint::Report, rule: &str) -> Vec<&'r noc_lint::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && !f.allowed)
        .collect()
}

fn assert_control_clean(inputs: &[(String, String)]) {
    let control = lint_files(inputs);
    assert_eq!(
        control.unallowed(),
        0,
        "unmutated control set must lint clean, got {:?}",
        control
            .findings
            .iter()
            .filter(|f| !f.allowed)
            .map(|f| (f.rule, f.file.as_str(), f.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn workspace_dogfood_is_clean() {
    let report = noc_lint::lint_root(&workspace_root()).expect("workspace lints");
    assert_eq!(
        report.unallowed(),
        0,
        "the workspace must dogfood clean: {:?}",
        report
            .findings
            .iter()
            .filter(|f| !f.allowed)
            .map(|f| (f.rule, f.file.as_str(), f.line))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.suppression_debt(),
        0,
        "no stale allows in the workspace"
    );
}

#[test]
fn adding_a_simulation_field_without_serialization_turns_red() {
    let mut inputs = read_set(CHECKPOINT_SET);
    assert_control_clean(&inputs);
    let engine = &mut inputs[0].1;
    let anchor = "pub struct Simulation<S: EventSink = NullSink> {";
    assert!(engine.contains(anchor), "engine struct anchor moved");
    *engine = engine.replacen(
        anchor,
        "pub struct Simulation<S: EventSink = NullSink> {\n    mutation_probe_field: u64,",
        1,
    );
    let report = lint_files(&inputs);
    let hits = unallowed_of(&report, "checkpoint-coverage");
    assert_eq!(
        hits.len(),
        1,
        "an unserialized new field must raise exactly one finding"
    );
    assert!(
        hits[0].message.contains("`mutation_probe_field`"),
        "finding names the drifted field: {}",
        hits[0].message
    );
}

#[test]
fn deleting_a_fields_serialization_turns_red() {
    let mut inputs = read_set(CHECKPOINT_SET);
    assert_control_clean(&inputs);
    // Retire the ident `informed` from every serialization site while
    // keeping the field declaration itself: the checkpoint no longer
    // mentions the field, exactly the drift a careless refactor leaves.
    for (rel, source) in inputs.iter_mut() {
        if rel == "crates/core/src/checkpoint.rs" || rel == "crates/core/src/trace.rs" {
            *source = source.replace("informed", "retired");
        }
        if rel == "crates/core/src/engine.rs" {
            *source = source
                .lines()
                .map(|l| {
                    if l.contains("informed: BTreeMap<MessageId, usize>") {
                        l.to_string()
                    } else {
                        l.replace("informed", "retired")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
        }
    }
    let report = lint_files(&inputs);
    let hits = unallowed_of(&report, "checkpoint-coverage");
    assert!(
        hits.iter().any(|f| f.message.contains("`informed`")),
        "dropping the checkpoint's `informed` serialization must raise a finding, got {:?}",
        hits.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
}

#[test]
fn adding_an_event_variant_without_consumers_turns_red() {
    let mut inputs = read_set(&["crates/core/src/events.rs"]);
    assert_control_clean(&inputs);
    let events = &mut inputs[0].1;
    let anchor = "pub enum SimEvent {";
    assert!(events.contains(anchor), "event enum anchor moved");
    *events = events.replacen(
        anchor,
        "pub enum SimEvent {\n    MutationProbe { round: u64 },",
        1,
    );
    let report = lint_files(&inputs);
    let hits = unallowed_of(&report, "event-coverage");
    assert_eq!(
        hits.len(),
        2,
        "a stub variant must be flagged once per mandatory consumer, got {:?}",
        hits.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
    for f in &hits {
        assert!(f.message.contains("`SimEvent::MutationProbe`"));
    }
}

#[test]
fn drawing_inside_a_worker_closure_turns_red() {
    let mut inputs = read_set(&["crates/core/src/engine.rs", "crates/core/src/checkpoint.rs"]);
    // The engine alone is a sanctioned draw site, so the control is
    // clean even though it draws on the main thread.
    assert_control_clean(&inputs);
    inputs[0].1.push_str(
        "\npub fn mutation_probe_fan_out(work: Vec<u64>, tape: TapeCursor) -> Vec<u64> {\n    \
         run_shards(work, move |frame| frame ^ tape.next_u64())\n}\n",
    );
    let report = lint_files(&inputs);
    let hits = unallowed_of(&report, "rng-draw-site");
    assert_eq!(
        hits.len(),
        1,
        "a draw inside the fan-out closure must be flagged even in engine.rs"
    );
    assert!(
        hits[0].message.contains("run_shards"),
        "finding names the fan-out callee: {}",
        hits[0].message
    );
}
