//! True positive: panicking call on the per-round hot path.

pub fn pop_frame(queue: &mut Vec<u8>) -> u8 {
    queue.pop().unwrap()
}
