//! True positive: printing from a library crate.

pub fn debug_dump(x: u32) {
    println!("x = {x}");
}
