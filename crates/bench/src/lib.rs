//! Benchmark-only crate: all content lives in `benches/`, one Criterion
//! target per figure/table of the paper (see DESIGN.md's experiment
//! index).

#![forbid(unsafe_code)]
