//! A cosine-modulated pseudo-QMF polyphase filterbank — the 32-band
//! analysis/synthesis front-end of a real MP3 encoder (layer filterbank
//! preceding the MDCT in Figure 4-7's signal chain).
//!
//! Analysis splits each block of `M` input samples into `M` critically
//! sampled subband samples; synthesis reassembles them. With the
//! prototype used here (a sine-derived lowpass of length `2M`), the
//! cascade reconstructs the input up to a one-block delay and small
//! aliasing leakage, which the tests bound. A production encoder would
//! use the 512-tap ISO prototype; the structure (polyphase decomposition
//! + cosine modulation) is identical.

use std::f64::consts::PI;

/// A critically sampled `M`-band cosine-modulated filterbank.
///
/// # Examples
///
/// ```
/// use noc_dsp::filterbank::PolyphaseFilterbank;
///
/// let mut analysis = PolyphaseFilterbank::new(32);
/// let block: Vec<f64> = (0..32).map(|n| (n as f64 * 0.2).sin()).collect();
/// let subbands = analysis.analyze(&block);
/// assert_eq!(subbands.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct PolyphaseFilterbank {
    bands: usize,
    /// Prototype lowpass, length `2 * bands`.
    prototype: Vec<f64>,
    /// Input history for analysis / output overlap for synthesis,
    /// length `2 * bands`.
    state: Vec<f64>,
}

impl PolyphaseFilterbank {
    /// Creates an `bands`-band filterbank (e.g. 32 for MP3).
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero or odd.
    pub fn new(bands: usize) -> Self {
        assert!(
            bands > 0 && bands.is_multiple_of(2),
            "band count must be positive and even"
        );
        let len = 2 * bands;
        // Sine prototype: satisfies the power-complementarity condition
        // for near-perfect reconstruction of the 2M-tap pseudo-QMF.
        let prototype: Vec<f64> = (0..len)
            .map(|n| (PI / len as f64 * (n as f64 + 0.5)).sin())
            .collect();
        Self {
            bands,
            prototype,
            state: vec![0.0; len],
        }
    }

    /// Number of subbands `M`.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Consumes `M` new samples, producing `M` subband samples.
    ///
    /// Band `k`'s output is
    /// `s[k] = Σ_n h[n]·x[n]·cos(π/M (k + 0.5)(n − M/2 + 0.5))`
    /// over the `2M`-sample sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != bands`.
    pub fn analyze(&mut self, samples: &[f64]) -> Vec<f64> {
        let m = self.bands;
        assert_eq!(samples.len(), m, "analyze expects exactly M samples");
        // Slide the window: newest M samples at the end.
        self.state.copy_within(m.., 0);
        self.state[m..].copy_from_slice(samples);
        let len = 2 * m;
        (0..m)
            .map(|k| {
                let mut acc = 0.0;
                for n in 0..len {
                    let phase =
                        PI / m as f64 * (k as f64 + 0.5) * (n as f64 - m as f64 / 2.0 + 0.5);
                    acc += self.prototype[n] * self.state[n] * phase.cos();
                }
                acc
            })
            .collect()
    }

    /// Consumes `M` subband samples, producing `M` time-domain samples
    /// (delayed by one block relative to the matching analysis input).
    ///
    /// # Panics
    ///
    /// Panics if `subbands.len() != bands`.
    pub fn synthesize(&mut self, subbands: &[f64]) -> Vec<f64> {
        let m = self.bands;
        assert_eq!(subbands.len(), m, "synthesize expects exactly M subbands");
        let len = 2 * m;
        // Inverse modulation into a 2M frame, windowed by the prototype.
        let mut frame = vec![0.0; len];
        for (n, f) in frame.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &s) in subbands.iter().enumerate() {
                let phase = PI / m as f64 * (k as f64 + 0.5) * (n as f64 - m as f64 / 2.0 + 0.5);
                acc += s * phase.cos();
            }
            *f = acc * self.prototype[n] * 2.0 / m as f64;
        }
        // Overlap-add with the previous block's tail (kept in state).
        let out: Vec<f64> = (0..m).map(|n| self.state[n] + frame[n]).collect();
        self.state[..m].copy_from_slice(&frame[m..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a signal through analysis + synthesis and returns
    /// (input, output) aligned for the one-block cascade delay.
    fn cascade(bands: usize, signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut analysis = PolyphaseFilterbank::new(bands);
        let mut synthesis = PolyphaseFilterbank::new(bands);
        let mut out = Vec::new();
        for block in signal.chunks(bands) {
            let sub = analysis.analyze(block);
            out.extend(synthesize_block(&mut synthesis, &sub));
        }
        (signal.to_vec(), out)
    }

    fn synthesize_block(bank: &mut PolyphaseFilterbank, sub: &[f64]) -> Vec<f64> {
        bank.synthesize(sub)
    }

    #[test]
    fn near_perfect_reconstruction() {
        let bands = 32;
        let blocks = 24;
        let signal: Vec<f64> = (0..bands * blocks)
            .map(|n| (n as f64 * 0.11).sin() + 0.4 * (n as f64 * 0.031).cos())
            .collect();
        let (input, output) = cascade(bands, &signal);
        // Cascade delay is one block (M samples): output[n + M] ~ input[n].
        let m = bands;
        let mut err_energy = 0.0;
        let mut sig_energy = 0.0;
        for n in m..input.len() - m {
            let e = output[n + m] - input[n];
            err_energy += e * e;
            sig_energy += input[n] * input[n];
        }
        let snr_db = 10.0 * (sig_energy / err_energy.max(1e-300)).log10();
        assert!(
            snr_db > 40.0,
            "reconstruction SNR {snr_db:.1} dB below 40 dB"
        );
    }

    #[test]
    fn pure_tone_concentrates_in_one_band() {
        let bands = 32;
        let mut bank = PolyphaseFilterbank::new(bands);
        // Tone centred in band 5: frequency (5 + 0.5) * pi / 32.
        let omega = (5.0 + 0.5) * PI / bands as f64;
        let mut energies = vec![0.0; bands];
        for block_idx in 0..16 {
            let block: Vec<f64> = (0..bands)
                .map(|n| (omega * (block_idx * bands + n) as f64).cos())
                .collect();
            let sub = bank.analyze(&block);
            for (e, s) in energies.iter_mut().zip(&sub) {
                *e += s * s;
            }
        }
        let peak = energies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 5, "tone landed in band {peak}");
        // Selectivity: the peak band dominates the total.
        let total: f64 = energies.iter().sum();
        assert!(
            energies[5] / total > 0.5,
            "band 5 holds only {:.0}% of the energy",
            100.0 * energies[5] / total
        );
    }

    #[test]
    fn silence_in_silence_out() {
        let bands = 8;
        let mut analysis = PolyphaseFilterbank::new(bands);
        let mut synthesis = PolyphaseFilterbank::new(bands);
        for _ in 0..4 {
            let sub = analysis.analyze(&vec![0.0; bands]);
            assert!(sub.iter().all(|&s| s == 0.0));
            let out = synthesis.synthesize(&sub);
            assert!(out.iter().all(|&s| s == 0.0));
        }
    }

    #[test]
    fn prototype_is_power_complementary() {
        let bank = PolyphaseFilterbank::new(16);
        let m = 16;
        for n in 0..m {
            let s = bank.prototype[n].powi(2) + bank.prototype[n + m].powi(2);
            assert!((s - 1.0).abs() < 1e-12, "PB violated at {n}: {s}");
        }
    }

    #[test]
    #[should_panic(expected = "positive and even")]
    fn odd_band_count_rejected() {
        let _ = PolyphaseFilterbank::new(7);
    }

    #[test]
    #[should_panic(expected = "exactly M samples")]
    fn wrong_block_size_rejected() {
        let mut bank = PolyphaseFilterbank::new(8);
        let _ = bank.analyze(&[0.0; 4]);
    }
}
