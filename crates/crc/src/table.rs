//! Table-driven (byte-at-a-time) CRC computation.

use crate::params::{reflect, CrcParams};
use crate::CrcAlgorithm;

/// A byte-at-a-time CRC engine with a precomputed 256-entry table.
///
/// Functionally identical to [`crate::BitwiseCrc`] (this equivalence is
/// enforced by property tests) but roughly 8x faster, so simulation inner
/// loops use this type.
///
/// # Examples
///
/// ```
/// use noc_crc::{CrcAlgorithm, CrcParams, TableCrc};
///
/// let crc = TableCrc::new(CrcParams::CRC32);
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF43926);
/// ```
#[derive(Debug, Clone)]
pub struct TableCrc {
    params: CrcParams,
    table: Box<[u64; 256]>,
}

impl TableCrc {
    /// Creates an engine for the given parameter set, precomputing the
    /// byte table.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`CrcParams::validate`].
    pub fn new(params: CrcParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid CRC parameters: {e}"));
        let mut table = Box::new([0u64; 256]);
        let width = params.width;
        let mask = params.mask();
        // For widths below 8 the table operates on a register shifted up to
        // at least 8 bits so byte-wise processing stays uniform.
        let shift_width = width.max(8);
        let top = 1u64 << (shift_width - 1);
        let poly_shifted = params.poly << (shift_width - width);
        for (i, slot) in table.iter_mut().enumerate() {
            let byte = if params.reflect_in {
                reflect(i as u64, 8)
            } else {
                i as u64
            };
            let mut reg = byte << (shift_width - 8);
            for _ in 0..8 {
                if reg & top != 0 {
                    reg = (reg << 1) ^ poly_shifted;
                } else {
                    reg <<= 1;
                }
                reg &= (top << 1).wrapping_sub(1);
            }
            if params.reflect_in {
                reg = reflect(reg, shift_width);
            }
            *slot = reg
                & if shift_width == 64 {
                    u64::MAX
                } else {
                    (1 << shift_width) - 1
                };
        }
        // Keep mask around implicitly via params.
        let _ = mask;
        Self { params, table }
    }

    /// Read-only access to the precomputed table (for hardware-generation
    /// style use cases such as emitting a ROM image).
    pub fn table(&self) -> &[u64; 256] {
        &self.table
    }
}

impl CrcAlgorithm for TableCrc {
    fn params(&self) -> &CrcParams {
        &self.params
    }

    fn checksum(&self, data: &[u8]) -> u64 {
        let p = &self.params;
        let width = p.width;
        let shift_width = width.max(8);
        let shift_mask = if shift_width == 64 {
            u64::MAX
        } else {
            (1u64 << shift_width) - 1
        };
        // Work in the shifted register domain.
        let mut reg = (p.init & p.mask()) << (shift_width - width);
        if p.reflect_in {
            reg = reflect(reg, shift_width);
            for &b in data {
                let idx = ((reg ^ b as u64) & 0xFF) as usize;
                reg = (reg >> 8) ^ self.table[idx];
            }
            reg = reflect(reg, shift_width);
        } else {
            for &b in data {
                let idx = (((reg >> (shift_width - 8)) ^ b as u64) & 0xFF) as usize;
                reg = ((reg << 8) & shift_mask) ^ self.table[idx];
            }
        }
        let mut out = reg >> (shift_width - width);
        if p.reflect_out {
            out = reflect(out, width);
        }
        (out ^ p.xor_out) & p.mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitwiseCrc;
    use proptest::prelude::*;

    #[test]
    fn table_has_identity_entry() {
        let crc = TableCrc::new(CrcParams::CRC16_CCITT);
        assert_eq!(
            crc.table()[0],
            0,
            "processing a zero byte from a zero register stays zero"
        );
    }

    proptest! {
        #[test]
        fn table_equals_bitwise(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            for &params in CrcParams::ALL {
                let t = TableCrc::new(params);
                let b = BitwiseCrc::new(params);
                prop_assert_eq!(
                    t.checksum(&data),
                    b.checksum(&data),
                    "mismatch for {}", params.name
                );
            }
        }

        #[test]
        fn checksum_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let t = TableCrc::new(CrcParams::CRC32);
            prop_assert_eq!(t.checksum(&data), t.checksum(&data));
        }

        #[test]
        fn appending_own_crc_yields_constant_residue(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // For non-reflected CRCs with xor_out == 0, re-checksumming
            // message||crc gives 0 (the classic receiver-side check).
            let params = CrcParams::CRC16_CCITT;
            let t = TableCrc::new(params);
            let tag = t.checksum(&data);
            let mut framed = data.clone();
            framed.extend_from_slice(&tag.to_be_bytes()[6..]);
            prop_assert_eq!(t.checksum(&framed), 0);
        }
    }
}
