//! The §4.2 MP3-style encoder pipeline on a 4×4 stochastic NoC, with
//! fault levels configurable from the command line.
//!
//! ```text
//! cargo run --example mp3_encoder -- [p_upset] [p_overflow] [sigma_synch]
//! cargo run --example mp3_encoder -- 0.4 0.2 0.3
//! ```

use ocsc::noc_apps::mp3::{Mp3App, Mp3Params};
use ocsc::noc_faults::FaultModel;
use ocsc::stochastic_noc::StochasticConfig;

fn arg(n: usize) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let (p_upset, p_overflow, sigma) = (arg(1), arg(2), arg(3));
    let model = FaultModel::builder()
        .p_upset(p_upset)
        .p_overflow(p_overflow)
        .sigma_synch(sigma)
        .build()
        .expect("fault probabilities must be in [0, 1]");

    let params = Mp3Params {
        frames: 24,
        fault_model: model,
        config: StochasticConfig::new(0.6, 20)
            .expect("valid config")
            .with_max_rounds(800),
        ..Mp3Params::default()
    };
    let app = Mp3App::new(params);
    let mapping = *app.mapping();

    println!("MP3-style encoder pipeline on a 4x4 stochastic NoC");
    println!(
        "stages           : acq={} psy={} mdct={} enc={} res={} out={}",
        mapping.acquisition,
        mapping.psycho,
        mapping.mdct,
        mapping.encoder,
        mapping.reservoir,
        mapping.output
    );
    println!("faults           : upset={p_upset} overflow={p_overflow} sigma={sigma}");

    let outcome = app.run();
    println!(
        "frames delivered : {}/{}",
        outcome.frames_delivered, outcome.frames_requested
    );
    println!("completed        : {}", outcome.completed);
    println!("output bits      : {}", outcome.output_bits);
    if let Some(rate) = outcome.bitrate_per_round() {
        println!("bit-rate         : {rate:.1} bits/round");
    }
    if let Some(jitter) = outcome.jitter() {
        println!("arrival jitter   : {jitter:.2} rounds");
    }
    println!("upsets detected  : {}", outcome.report.upsets_detected);
    println!("overflow drops   : {}", outcome.report.overflow_drops);
    println!("clock slips      : {}", outcome.report.clock_slips);
    println!("energy           : {}", outcome.report.total_energy());
}
