//! Workspace walking, test-code filtering, the two-tier rule pipeline,
//! suppression accounting, and rendering.
//!
//! The pipeline runs in phases over the whole scanned set:
//!
//! 1. lex + test-strip + annotation-parse + item-model every file;
//! 2. lexical rules per file ([`crate::rules`]);
//! 3. structural rules across the set ([`crate::structural`]);
//! 4. suppression: allows cover matching findings, then every allow
//!    that covered *nothing* becomes a `suppression-debt` finding
//!    (itself coverable only by an `allow(suppression-debt, …)`);
//! 5. the full suppression inventory — rule, file, line, reason, used —
//!    is kept on the [`Report`] and shipped in the JSON artifact so CI
//!    can trend the debt.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::annotations::{self, Allow, BadAnnotation};
use crate::items;
use crate::lexer::{self, Token};
use crate::rules::{self, Finding};
use crate::structural::{self, SourceUnit};

/// Directory names never descended into: generated output, third-party
/// stand-ins, test code (exempt from the shipped-code invariants), and
/// the lint corpus (which contains violations on purpose).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "corpus", ".git", ".github",
];

/// One allow annotation in the inventory, with whether it earned its
/// keep this run.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
    /// True when the allow covered at least one finding.
    pub used: bool,
}

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, allowed and not, sorted by (file, line, column,
    /// rule) so output is deterministic for any traversal order.
    pub findings: Vec<Finding>,
    /// Every allow annotation seen, sorted by (file, line, rule).
    pub suppressions: Vec<Suppression>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a reasoned allow — the gate condition.
    pub fn unallowed(&self) -> usize {
        self.findings.iter().filter(|f| !f.allowed).count()
    }

    /// Findings suppressed by a reasoned allow.
    pub fn allowed(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed).count()
    }

    /// Allows that covered nothing — the trending number for CI.
    pub fn suppression_debt(&self) -> usize {
        self.suppressions.iter().filter(|s| !s.used).count()
    }
}

/// Lints every `.rs` file under `root`.
///
/// # Errors
///
/// Returns an error string when `root` does not exist or a file cannot
/// be read.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for file in &files {
        let source = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        inputs.push((relative_path(root, file), source));
    }
    Ok(lint_files(&inputs))
}

/// Lints one file's source text under its workspace-relative path.
/// Structural rules see a one-file set, so anchored cross-file rules
/// fire only when the file itself carries the anchor items.
/// Exposed for unit tests and callers with in-memory sources.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_files(&[(rel_path.to_string(), source.to_string())]).findings
}

/// Lints a set of (workspace-relative path, source) pairs as one
/// workspace — the core entry point for the walker, the corpus
/// harness, and mutation tests that inject drift into scratch copies.
pub fn lint_files(inputs: &[(String, String)]) -> Report {
    // Phase 1: per-file analysis inputs.
    let mut units: Vec<SourceUnit> = Vec::with_capacity(inputs.len());
    let mut all_tokens: Vec<Vec<Token>> = Vec::with_capacity(inputs.len());
    let mut notes: Vec<(Vec<Allow>, Vec<BadAnnotation>)> = Vec::with_capacity(inputs.len());
    for (rel_path, source) in inputs {
        let lexed = lexer::lex(source);
        let filtered = strip_test_items(&lexed.tokens);
        notes.push(annotations::parse(&lexed.comments));
        let items = items::extract(&filtered);
        units.push(SourceUnit {
            rel_path: rel_path.clone(),
            tokens: filtered,
            items,
        });
        all_tokens.push(lexed.tokens);
    }

    // Phase 2 + 3: lexical rules per file, structural rules per set.
    let mut findings = Vec::new();
    for (u, all) in units.iter().zip(&all_tokens) {
        findings.extend(rules::check_file(&u.rel_path, &u.tokens, all));
    }
    findings.extend(structural::check_workspace(&units));

    // Phase 4: suppression accounting.
    let index: BTreeMap<&str, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.rel_path.as_str(), i))
        .collect();
    let mut used: Vec<Vec<bool>> = notes.iter().map(|(a, _)| vec![false; a.len()]).collect();
    for f in &mut findings {
        let Some(&fi) = index.get(f.file.as_str()) else {
            continue;
        };
        if let Some(ai) = notes[fi].0.iter().position(|a| a.covers(f.rule, f.line)) {
            f.allowed = true;
            f.reason = Some(notes[fi].0[ai].reason.clone());
            used[fi][ai] = true;
        }
    }
    // Allows that covered nothing become findings; an adjacent
    // allow(suppression-debt, …) can cover those (e.g. a platform-
    // gated violation), but an unused allow(suppression-debt) is
    // itself debt and cannot be suppressed further — no regress.
    let mut debt: Vec<Finding> = Vec::new();
    for (fi, (allows, _)) in notes.iter().enumerate() {
        for (ai, a) in allows.iter().enumerate() {
            if used[fi][ai] || a.rule == "suppression-debt" {
                continue;
            }
            let known = rules::RULES.iter().any(|r| r.name == a.rule) || a.rule == "bad-annotation";
            let message = if known {
                format!(
                    "allow({}) suppresses no finding; the code it guarded was fixed or \
                     moved — delete the stale annotation or re-anchor it",
                    a.rule
                )
            } else {
                format!(
                    "allow({}) names a rule the registry does not know; fix the rule name",
                    a.rule
                )
            };
            debt.push(Finding {
                rule: "suppression-debt",
                file: units[fi].rel_path.clone(),
                line: a.line,
                column: 1,
                message,
                allowed: false,
                reason: None,
            });
        }
    }
    for f in &mut debt {
        let fi = index[f.file.as_str()];
        if let Some(ai) = notes[fi]
            .0
            .iter()
            .position(|a| a.rule == "suppression-debt" && a.covers("suppression-debt", f.line))
        {
            f.allowed = true;
            f.reason = Some(notes[fi].0[ai].reason.clone());
            used[fi][ai] = true;
        }
    }
    findings.append(&mut debt);
    for (fi, (allows, _)) in notes.iter().enumerate() {
        for (ai, a) in allows.iter().enumerate() {
            if !used[fi][ai] && a.rule == "suppression-debt" {
                findings.push(Finding {
                    rule: "suppression-debt",
                    file: units[fi].rel_path.clone(),
                    line: a.line,
                    column: 1,
                    message: "allow(suppression-debt) suppresses no stale allow; delete it"
                        .to_string(),
                    allowed: false,
                    reason: None,
                });
            }
        }
    }

    // Malformed annotations are findings themselves and cannot be
    // annotated away.
    for (fi, (_, bad)) in notes.iter().enumerate() {
        for b in bad {
            findings.push(Finding {
                rule: "bad-annotation",
                file: units[fi].rel_path.clone(),
                line: b.line,
                column: 1,
                message: b.message.clone(),
                allowed: false,
                reason: None,
            });
        }
    }

    // Phase 5: the inventory.
    let mut suppressions: Vec<Suppression> = Vec::new();
    for (fi, (allows, _)) in notes.iter().enumerate() {
        for (ai, a) in allows.iter().enumerate() {
            suppressions.push(Suppression {
                rule: a.rule.clone(),
                file: units[fi].rel_path.clone(),
                line: a.line,
                reason: a.reason.clone(),
                used: used[fi][ai],
            });
        }
    }
    suppressions.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    Report {
        findings,
        suppressions,
        files_scanned: inputs.len(),
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Removes items gated behind a test attribute (`#[test]`, `#[cfg(test)]`
/// and `#[cfg(all(test, …))]`) from the token stream: test code is exempt
/// from the shipped-code invariants.
///
/// An attribute mentioning `not` (as in `#[cfg(not(test))]`) is treated
/// as non-test, so the guarded code stays linted.
fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let close = matching_bracket(tokens, i + 1);
            let body = &tokens[i + 2..close.min(tokens.len())];
            let is_test =
                body.iter().any(|t| t.text == "test") && !body.iter().any(|t| t.text == "not");
            if is_test {
                i = skip_attributes_and_item(tokens, close + 1);
                continue;
            }
            out.extend_from_slice(&tokens[i..=close.min(tokens.len() - 1)]);
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Skips any further attributes, then one item (to its closing `}` or a
/// top-level `;`), returning the index just past it.
fn skip_attributes_and_item(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len()
        && tokens[i].text == "#"
        && tokens.get(i + 1).is_some_and(|t| t.text == "[")
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Renders the unallowed findings and a summary for terminals.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in report.findings.iter().filter(|f| !f.allowed) {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.column, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "noc-lint: {} files scanned, {} findings ({} allowed, {} unallowed), \
         {} suppressions ({} stale)\n",
        report.files_scanned,
        report.findings.len(),
        report.allowed(),
        report.unallowed(),
        report.suppressions.len(),
        report.suppression_debt(),
    ));
    out
}

/// Renders the full report (allowed findings included, with reasons,
/// plus the suppression inventory) as JSON with a stable field order —
/// the CI artifact format.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"column\": {}, ", f.column));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        out.push_str(&format!("\"allowed\": {}, ", f.allowed));
        match &f.reason {
            Some(r) => out.push_str(&format!("\"reason\": {}", json_str(r))),
            None => out.push_str("\"reason\": null"),
        }
        out.push('}');
        if i + 1 < report.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"suppressions\": [\n");
    for (i, s) in report.suppressions.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(&s.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&s.file)));
        out.push_str(&format!("\"line\": {}, ", s.line));
        out.push_str(&format!("\"reason\": {}, ", json_str(&s.reason)));
        out.push_str(&format!("\"used\": {}", s.used));
        out.push('}');
        if i + 1 < report.suppressions.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"total\": {},\n", report.findings.len()));
    out.push_str(&format!("  \"allowed\": {},\n", report.allowed()));
    out.push_str(&format!("  \"unallowed\": {},\n", report.unallowed()));
    out.push_str(&format!(
        "  \"suppression_debt\": {}\n",
        report.suppression_debt()
    ));
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_in_test_modules_are_skipped() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_not_test_code_stays_linted() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn trailing_allow_suppresses_with_reason() {
        let src = "fn f() { x.unwrap(); } // noc-lint: allow(hot-path-panic, reason = \"startup only\")\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].allowed);
        assert_eq!(findings[0].reason.as_deref(), Some("startup only"));
    }

    #[test]
    fn own_line_allow_covers_next_line() {
        let src = "// noc-lint: allow(hot-path-panic, reason = \"boot\")\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert!(findings[0].allowed);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() { x.unwrap(); } // noc-lint: allow(hot-path-panic)\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hot-path-panic"));
        assert!(rules.contains(&"bad-annotation"));
        assert!(findings.iter().all(|f| !f.allowed));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress_and_is_debt() {
        let src =
            "fn f() { x.unwrap(); } // noc-lint: allow(ambient-rng, reason = \"wrong rule\")\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        // The violation stays unallowed AND the useless allow is debt
        // (debt sorts first: same line, column 1).
        assert_eq!(rules, ["suppression-debt", "hot-path-panic"]);
        assert!(findings.iter().all(|f| !f.allowed));
    }

    #[test]
    fn stale_allow_is_suppression_debt() {
        let src = "// noc-lint: allow(hot-path-panic, reason = \"outlived the panic\")\nfn quiet() -> u64 { 7 }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "suppression-debt");
        assert!(!findings[0].allowed);
        assert!(findings[0].message.contains("hot-path-panic"));
    }

    #[test]
    fn misspelled_rule_name_is_called_out() {
        let src = "// noc-lint: allow(hot-path-panics, reason = \"typo\")\nfn f() {}\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("registry does not know"));
    }

    #[test]
    fn debt_finding_is_coverable_by_suppression_debt_allow() {
        let src = "// noc-lint: allow(suppression-debt, reason = \"guards a windows-only panic compiled out here\")\n// noc-lint: allow(hot-path-panic, reason = \"windows-only path\")\nfn quiet() -> u64 { 7 }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "suppression-debt");
        assert!(findings[0].allowed, "{findings:?}");
    }

    #[test]
    fn unused_suppression_debt_allow_is_itself_debt() {
        let src = "// noc-lint: allow(suppression-debt, reason = \"nothing here\")\nfn f() {}\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].allowed);
        assert!(findings[0].message.contains("suppresses no stale allow"));
    }

    #[test]
    fn suppression_inventory_reports_used_flags() {
        let inputs = vec![(
            "crates/core/src/engine.rs".to_string(),
            "fn f() { x.unwrap(); } // noc-lint: allow(hot-path-panic, reason = \"boot\")\n// noc-lint: allow(map-iteration-order, reason = \"stale\")\nfn g() {}\n"
                .to_string(),
        )];
        let report = lint_files(&inputs);
        assert_eq!(report.suppressions.len(), 2);
        assert!(report.suppressions[0].used);
        assert!(!report.suppressions[1].used);
        assert_eq!(report.suppression_debt(), 1);
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: lint_source(
                "crates/core/src/engine.rs",
                "fn f() { x.expect(\"why\"); }\n",
            ),
            files_scanned: 1,
            ..Default::default()
        };
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"hot-path-panic\""));
        assert!(json.contains("\"unallowed\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"suppressions\": ["));
        assert!(json.contains("\"suppression_debt\": 0"));
    }
}
