//! Finite receive buffers with drop-oldest overflow semantics.

use std::collections::VecDeque;

/// A tile's receive buffer.
///
/// §4.2 of the paper: "The tiles have finite message buffers, which leads
/// to a certain probability of overflow; if such an overflow happens, the
/// respective tile will lose some of the messages (the oldest ones are
/// dropped first)." An unbounded buffer (`capacity = None`) never drops.
///
/// # Examples
///
/// ```
/// use noc_fabric::ReceiveBuffer;
///
/// let mut buf = ReceiveBuffer::bounded(2);
/// assert_eq!(buf.push('a'), None);
/// assert_eq!(buf.push('b'), None);
/// assert_eq!(buf.push('c'), Some('a')); // oldest dropped
/// assert_eq!(buf.dropped(), 1);
/// assert_eq!(buf.drain().collect::<Vec<_>>(), vec!['b', 'c']);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveBuffer<T> {
    capacity: Option<usize>,
    queue: VecDeque<T>,
    dropped: u64,
}

impl<T> ReceiveBuffer<T> {
    /// Creates an unbounded buffer (never overflows).
    pub fn unbounded() -> Self {
        Self {
            capacity: None,
            queue: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be at least 1");
        Self {
            capacity: Some(capacity),
            queue: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Enqueues an item; on overflow drops and returns the *oldest* item.
    pub fn push(&mut self, item: T) -> Option<T> {
        self.queue.push_back(item);
        if let Some(cap) = self.capacity {
            if self.queue.len() > cap {
                self.dropped += 1;
                return self.queue.pop_front();
            }
        }
        None
    }

    /// Removes and returns all buffered items in FIFO order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.queue.drain(..)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The configured capacity, or `None` for unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Total items dropped by overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }
}

impl<T> Default for ReceiveBuffer<T> {
    /// An unbounded buffer.
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<T> Extend<T> for ReceiveBuffer<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            let _ = self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unbounded_never_drops() {
        let mut buf = ReceiveBuffer::unbounded();
        for i in 0..10_000 {
            assert_eq!(buf.push(i), None);
        }
        assert_eq!(buf.dropped(), 0);
        assert_eq!(buf.len(), 10_000);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = ReceiveBuffer::unbounded();
        buf.extend([1, 2, 3]);
        assert_eq!(buf.drain().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(buf.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut buf = ReceiveBuffer::bounded(3);
        buf.extend([1, 2, 3]);
        assert_eq!(buf.push(4), Some(1));
        assert_eq!(buf.push(5), Some(2));
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.drain().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = ReceiveBuffer::<u8>::bounded(0);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut buf = ReceiveBuffer::bounded(4);
        buf.extend(["x", "y"]);
        assert_eq!(buf.iter().count(), 2);
        assert_eq!(buf.len(), 2);
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            cap in 1usize..16,
            items in proptest::collection::vec(any::<u32>(), 0..100),
        ) {
            let mut buf = ReceiveBuffer::bounded(cap);
            for &it in &items {
                let _ = buf.push(it);
                prop_assert!(buf.len() <= cap);
            }
            let kept: Vec<u32> = buf.drain().collect();
            // What remains is exactly the newest min(cap, n) items, in order.
            let n = items.len();
            let expect: Vec<u32> = items[n.saturating_sub(cap)..].to_vec();
            prop_assert_eq!(kept, expect);
        }

        #[test]
        fn dropped_count_is_exact(
            cap in 1usize..8,
            n in 0usize..50,
        ) {
            let mut buf = ReceiveBuffer::bounded(cap);
            for i in 0..n {
                let _ = buf.push(i);
            }
            prop_assert_eq!(buf.dropped(), n.saturating_sub(cap) as u64);
        }
    }
}
