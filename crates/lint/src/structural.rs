//! Structural (item-model) rules: cross-file contracts the lexical
//! tier cannot see.
//!
//! Where the lexical rules match token patterns inside one file, these
//! rules consume the [`crate::items`] model of the *whole scanned set*
//! and enforce three contracts the simulator's validity rests on:
//!
//! * **checkpoint-coverage** — every named field of the engine state
//!   structs is referenced by checkpoint serialization code, so a new
//!   field cannot silently escape `Checkpoint` round-trips;
//! * **rng-draw-site** — RNG draws happen only in the sanctioned
//!   modules, and never inside a closure handed to the shard fan-out
//!   (workers replay pre-drawn tapes, the core of PR 6's determinism
//!   proof);
//! * **event-coverage** — every `SimEvent` variant is reconciled by
//!   `CounterSink` and serialized by `JsonlSink`, so observability
//!   never under-counts a decision point.
//!
//! Each rule is *anchored*: it stays silent unless the scanned set
//! contains its anchor item (a tracked struct, the event enum), so
//! linting an unrelated tree reports nothing.

use std::collections::BTreeSet;

use crate::items::{EnumItem, StructItem};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;

/// One file's worth of structural-analysis input: the workspace-relative
/// path, the test-stripped token stream, and its item model.
#[derive(Debug)]
pub struct SourceUnit {
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub items: crate::items::ItemModel,
}

/// State structs whose every named field must be checkpoint-covered,
/// keyed by the exact workspace-relative path that declares them.
const TRACKED_STRUCTS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "Simulation"),
    ("crates/core/src/send_buffer.rs", "SendBuffer"),
    ("crates/fabric/src/clock.rs", "ClockDomain"),
    ("crates/faults/src/adversary.rs", "AdversarialScenario"),
    ("crates/faults/src/injector.rs", "FaultInjector"),
];

/// Fns whose bodies count as checkpoint serialization sites, wherever
/// they live. `restore_from` is deliberately absent: rebuilding derived
/// state on restore does not make the field serialized, and flagging it
/// is the point of the rule.
const CAPTURE_FNS: &[&str] = &["checkpoint", "config_digest_value", "snapshot"];

/// Identifiers that draw from (or construct) an RNG stream.
const DRAW_CALLS: &[&str] = &[
    "next_u64",
    "next_u32",
    "next_f64",
    "gen",
    "gen_range",
    "gen_bool",
    "fill_bytes",
    "seed_from_u64",
    "from_seed",
    "from_state",
];

/// The sanctioned draw sites: seed derivation, the engine's main-thread
/// tape construction (and checkpoint restore), the reference oracle
/// that mirrors the engine's draw order, the fault injector, and the
/// Gaussian sampler it owns.
const DRAW_ALLOWED_FILES: &[&str] = &[
    "crates/core/src/seed.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/reference.rs",
    "crates/faults/src/injector.rs",
    "crates/faults/src/rng.rs",
];

/// Path prefixes the rng-draw-site rule applies to. Scoping by real
/// workspace prefixes keeps fixture trees for *other* rules from
/// cross-firing this one.
const DRAW_SCOPED_PREFIXES: &[&str] = &[
    "crates/core/",
    "crates/faults/",
    "crates/fabric/",
    "crates/crc/",
    "crates/energy/",
    "crates/bus/",
    "crates/dsp/",
    "crates/apps/",
    "crates/diversity/",
    "crates/obs/",
    "crates/experiments/",
    "crates/bench/",
    "src/",
    "examples/",
];

/// Callees whose closure arguments are worker fan-out bodies and must
/// stay RNG-free everywhere — allowlisted files included.
const FAN_OUT_CALLEES: &[&str] = &["run_shards", "spawn"];

/// The event enum and its two mandatory consumers.
const EVENT_ENUM: &str = "SimEvent";
const EVENT_CONSUMERS: &[(&str, &str)] = &[
    ("CounterSink", "reconciled into counters by"),
    ("JsonlSink", "serialized to JSONL by"),
];

/// Runs every structural rule over the scanned set.
pub fn check_workspace(files: &[SourceUnit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    checkpoint_coverage(files, &mut findings);
    rng_draw_site(files, &mut findings);
    event_coverage(files, &mut findings);
    findings
}

fn finding(
    rule: &'static str,
    rel_path: &str,
    line: usize,
    column: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: rel_path.to_string(),
        line,
        column,
        message,
        allowed: false,
        reason: None,
    }
}

fn idents_of(tokens: &[Token]) -> impl Iterator<Item = &str> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// checkpoint-coverage: every named field of a tracked state struct
/// must appear (as an identifier) in checkpoint serialization code —
/// `checkpoint.rs` itself or the body of a capture fn — or carry a
/// reasoned allow explaining why it is derived/rebuildable state.
fn checkpoint_coverage(files: &[SourceUnit], findings: &mut Vec<Finding>) {
    let tracked: Vec<(&SourceUnit, &StructItem)> = files
        .iter()
        .flat_map(|u| u.items.structs.iter().map(move |s| (u, s)))
        .filter(|(u, s)| {
            TRACKED_STRUCTS
                .iter()
                .any(|(path, name)| u.rel_path == *path && s.name == *name)
        })
        .collect();
    if tracked.is_empty() {
        return;
    }
    let mut corpus: BTreeSet<&str> = BTreeSet::new();
    for u in files {
        if u.rel_path.ends_with("checkpoint.rs") {
            corpus.extend(idents_of(&u.tokens));
        }
        for f in &u.items.fns {
            if !CAPTURE_FNS.contains(&f.name.as_str()) {
                continue;
            }
            if let Some((a, b)) = f.body {
                corpus.extend(idents_of(&u.tokens[a..=b.min(u.tokens.len() - 1)]));
            }
        }
    }
    for (u, s) in tracked {
        for field in &s.fields {
            if !corpus.contains(field.name.as_str()) {
                findings.push(finding(
                    "checkpoint-coverage",
                    &u.rel_path,
                    field.line,
                    field.column,
                    format!(
                        "field `{}` of `{}` is not referenced by any checkpoint \
                         serialization site (checkpoint.rs or a checkpoint()/\
                         config_digest_value()/snapshot() body); a resumed run will \
                         silently diverge — serialize it or annotate derived state",
                        field.name, s.name
                    ),
                ));
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// rng-draw-site: draw calls only in the allowlisted modules, and never
/// inside a closure passed to the shard/thread fan-out.
fn rng_draw_site(files: &[SourceUnit], findings: &mut Vec<Finding>) {
    for u in files {
        if !DRAW_SCOPED_PREFIXES
            .iter()
            .any(|p| u.rel_path.starts_with(p))
        {
            continue;
        }
        let toks = &u.tokens;
        // Closure bodies handed to a fan-out callee, with the callee name.
        let mut worker_bodies: Vec<(usize, usize, &str)> = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || !FAN_OUT_CALLEES.contains(&tok.text.as_str()) {
                continue;
            }
            if toks.get(i + 1).is_none_or(|t| t.text != "(") {
                continue;
            }
            let close = matching_paren(toks, i + 1);
            for c in &u.items.closures {
                if c.body.0 > i && c.body.1 <= close {
                    worker_bodies.push((c.body.0, c.body.1, tok.text.as_str()));
                }
            }
        }
        let allowed_file = DRAW_ALLOWED_FILES.contains(&u.rel_path.as_str());
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || !DRAW_CALLS.contains(&tok.text.as_str()) {
                continue;
            }
            // A draw is a *call* reached through `.` or `::` — method
            // or constructor — never a bare definition or field.
            let callish = toks
                .get(i + 1)
                .is_some_and(|t| t.text == "(" || t.text == "::");
            let reached = i
                .checked_sub(1)
                .is_some_and(|p| toks[p].text == "." || toks[p].text == "::");
            if !callish || !reached {
                continue;
            }
            if let Some((_, _, callee)) = worker_bodies.iter().find(|(a, b, _)| i >= *a && i <= *b)
            {
                findings.push(finding(
                    "rng-draw-site",
                    &u.rel_path,
                    tok.line,
                    tok.column,
                    format!(
                        "RNG draw `{}` inside a closure passed to `{}`: shard workers \
                         replay pre-drawn tapes and must stay RNG-free, or reports stop \
                         being byte-identical across shard counts",
                        tok.text, callee
                    ),
                ));
            } else if !allowed_file {
                findings.push(finding(
                    "rng-draw-site",
                    &u.rel_path,
                    tok.line,
                    tok.column,
                    format!(
                        "RNG draw `{}` outside the sanctioned draw sites (seed.rs, \
                         engine.rs tape construction, reference.rs oracle, injector.rs, \
                         rng.rs); derive the stream via stochastic_noc::seed and draw it \
                         at a sanctioned site, or annotate a self-contained generator",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// event-coverage: every variant of the event enum must be matched
/// (as `SimEvent::Variant`) inside each mandatory consumer's
/// `impl EventSink for <Consumer>` block.
fn event_coverage(files: &[SourceUnit], findings: &mut Vec<Finding>) {
    let defs: Vec<(&SourceUnit, &EnumItem)> = files
        .iter()
        .flat_map(|u| u.items.enums.iter().map(move |e| (u, e)))
        .filter(|(_, e)| e.name == EVENT_ENUM)
        .collect();
    if defs.is_empty() {
        return;
    }
    for (consumer, verb) in EVENT_CONSUMERS {
        let mut handled: BTreeSet<&str> = BTreeSet::new();
        for u in files {
            for im in &u.items.impls {
                let is_sink_impl = im.header.iter().any(|h| h == "EventSink")
                    && im.header.iter().any(|h| h == consumer);
                if !is_sink_impl {
                    continue;
                }
                let (a, b) = im.body;
                let toks = &u.tokens;
                for j in a..=b.min(toks.len().saturating_sub(1)) {
                    if toks[j].kind == TokenKind::Ident
                        && toks[j].text == EVENT_ENUM
                        && toks.get(j + 1).is_some_and(|t| t.text == "::")
                    {
                        if let Some(v) = toks.get(j + 2).filter(|t| t.kind == TokenKind::Ident) {
                            handled.insert(v.text.as_str());
                        }
                    }
                }
            }
        }
        for (u, e) in &defs {
            for v in &e.variants {
                if !handled.contains(v.name.as_str()) {
                    findings.push(finding(
                        "event-coverage",
                        &u.rel_path,
                        v.line,
                        v.column,
                        format!(
                            "`SimEvent::{}` is not {} `{}`; every event variant must \
                             reconcile into both consumers or carry an allow naming it \
                             diagnostic-only",
                            v.name, verb, consumer
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    fn unit(rel_path: &str, src: &str) -> SourceUnit {
        let tokens = lex(src).tokens;
        let items = items::extract(&tokens);
        SourceUnit {
            rel_path: rel_path.to_string(),
            tokens,
            items,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn uncheckpointed_field_is_flagged() {
        let engine = unit(
            "crates/core/src/engine.rs",
            "pub struct Simulation { round: u64, scratch: Vec<u64> }\n\
             impl Simulation { fn checkpoint(&self) -> u64 { self.round } }\n",
        );
        let findings = check_workspace(&[engine]);
        assert_eq!(rules_of(&findings), ["checkpoint-coverage"]);
        assert!(findings[0].message.contains("`scratch`"));
    }

    #[test]
    fn checkpoint_rs_idents_count_as_coverage() {
        let engine = unit(
            "crates/core/src/engine.rs",
            "pub struct Simulation { round: u64 }\n",
        );
        let ckpt = unit(
            "crates/core/src/checkpoint.rs",
            "pub struct Checkpoint { pub round: u64 }\n",
        );
        assert!(check_workspace(&[engine, ckpt]).is_empty());
    }

    #[test]
    fn untracked_structs_are_ignored_and_rule_is_anchored() {
        let other = unit(
            "crates/core/src/metrics.rs",
            "pub struct Simulation { uncovered: u64 }\npub struct Other { x: u64 }\n",
        );
        // `Simulation` outside engine.rs is not the tracked struct, and
        // with no tracked struct in the set the rule stays silent.
        assert!(check_workspace(&[other]).is_empty());
    }

    #[test]
    fn draw_outside_allowlist_is_flagged() {
        let f = unit(
            "crates/experiments/src/traffic.rs",
            "fn t(seed: u64) -> u64 { let mut r = StdRng::seed_from_u64(seed); r.next_u64() }\n",
        );
        let findings = check_workspace(&[f]);
        assert_eq!(rules_of(&findings), ["rng-draw-site", "rng-draw-site"]);
    }

    #[test]
    fn draw_in_allowlisted_file_is_clean() {
        let f = unit(
            "crates/core/src/engine.rs",
            "fn tape(seed: u64) -> u64 { let mut r = StdRng::seed_from_u64(seed); r.next_u64() }\n",
        );
        assert!(check_workspace(&[f]).is_empty());
    }

    #[test]
    fn draw_inside_fan_out_closure_is_flagged_even_in_engine() {
        let f = unit(
            "crates/core/src/engine.rs",
            "fn fan(w: Vec<u64>) { run_shards(w, move |x| { rng.next_u64() }); }\n",
        );
        let findings = check_workspace(&[f]);
        assert_eq!(rules_of(&findings), ["rng-draw-site"]);
        assert!(findings[0].message.contains("run_shards"));
    }

    #[test]
    fn draw_definitions_and_bare_idents_are_not_calls() {
        let f = unit(
            "crates/experiments/src/traffic.rs",
            "fn next_u64() -> u64 { 7 }\nfn f(gen_range: u64) -> u64 { gen_range }\n",
        );
        assert!(check_workspace(&[f]).is_empty());
    }

    #[test]
    fn fixture_paths_outside_scope_are_exempt() {
        let f = unit("crates/sim/src/x.rs", "fn t() -> u64 { rng.next_u64() }\n");
        assert!(check_workspace(&[f]).is_empty());
    }

    #[test]
    fn unhandled_event_variant_is_flagged_per_consumer() {
        let src = "pub enum SimEvent { A { r: u64 }, B { r: u64 } }\n\
                   pub struct CounterSink;\n\
                   impl EventSink for CounterSink {\n\
                       fn emit(&mut self, e: SimEvent) { if let SimEvent::A { .. } = e {} }\n\
                   }\n\
                   pub struct JsonlSink;\n\
                   impl EventSink for JsonlSink {\n\
                       fn emit(&mut self, e: SimEvent) { match e { SimEvent::A { .. } => {}, SimEvent::B { .. } => {} } }\n\
                   }\n";
        let findings = check_workspace(&[unit("crates/core/src/events.rs", src)]);
        assert_eq!(rules_of(&findings), ["event-coverage"]);
        assert!(findings[0].message.contains("CounterSink"));
        assert!(findings[0].message.contains("`SimEvent::B`"));
    }

    #[test]
    fn fully_reconciled_enum_is_clean() {
        let src = "pub enum SimEvent { A }\n\
                   impl EventSink for CounterSink { fn f(&self) { let _ = SimEvent::A; } }\n\
                   impl EventSink for JsonlSink { fn f(&self) { let _ = SimEvent::A; } }\n";
        assert!(check_workspace(&[unit("crates/core/src/events.rs", src)]).is_empty());
    }
}
