//! Core-engine microbenches: per-round cost of the gossip protocol at
//! several grid sizes and forwarding probabilities, plus the spread
//! termination ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_fabric::{Grid2d, NodeId};
use std::hint::black_box;
use stochastic_noc::{SimulationBuilder, StochasticConfig};

fn broadcast(side: usize, p: f64, terminate: bool, seed: u64) -> u64 {
    let mut sim = SimulationBuilder::new(Grid2d::new(side, side))
        .config(
            StochasticConfig::new(p, 16)
                .unwrap()
                .with_max_rounds(60)
                .with_termination(terminate),
        )
        .seed(seed)
        .build();
    sim.inject(NodeId(0), NodeId(side * side - 1), b"bench".to_vec());
    sim.run().packets_sent
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine broadcast");
    group.sample_size(20);
    for side in [4usize, 8] {
        for p in [1.0, 0.5] {
            group.bench_function(format!("{side}x{side} p={p}"), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(broadcast(side, p, false, seed))
                })
            });
        }
    }
    // Ablation: spread termination cuts traffic.
    group.bench_function("4x4 p=0.5 terminated", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(broadcast(4, 0.5, true, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
