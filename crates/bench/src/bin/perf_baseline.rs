//! Step-throughput baseline for the zero-copy hot path.
//!
//! Times representative gossip workloads (4×4/8×8/16×16 grids, flooding
//! and p = 0.5, faulty and fault-free) on both engines:
//!
//! * **before** — [`stochastic_noc::reference::ReferenceSimulation`], the
//!   retained naive implementation (per-round allocations, one encode per
//!   tile, byte-cloned fan-out);
//! * **after** — the optimized [`stochastic_noc::Simulation`] (shared
//!   `Arc` frames, per-round CRC memo, persistent arenas).
//!
//! Both engines are seed-for-seed byte-identical (see the golden-report
//! and engine-equivalence tests), so the comparison is pure speed. The
//! results are written as JSON (hand-rolled — the vendored serde is a
//! no-op shim) to `BENCH_PR2.json`, establishing the repo's perf
//! trajectory; see EXPERIMENTS.md for methodology.
//!
//! Since the event-tracing layer landed, the optimized engine routes
//! every decision point through an [`stochastic_noc::EventSink`]. A
//! second measurement section times the 8×8 workloads with the default
//! build, an explicit `NullSink`, and a `CounterSink`, and gates the
//! NullSink path at ≤ 2% overhead: the monomorphized no-op sink must
//! not cost throughput (the `CounterSink` number is informational).
//!
//! Usage: `cargo run --release -p noc-bench --bin perf_baseline --
//! [--scale quick|full] [--out PATH]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use noc_faults::{CrashSchedule, ErrorModel, FaultModel};
use stochastic_noc::reference::ReferenceSimulation;
use stochastic_noc::{CounterSink, EventSink, NullSink, SimulationBuilder, StochasticConfig};

use noc_fabric::{NodeId, Topology};

/// One benchmark workload: a topology/config/fault-model point.
struct Workload {
    name: &'static str,
    side: usize,
    config: StochasticConfig,
    faulty: bool,
    injections: usize,
}

/// Measured numbers for one engine on one workload.
struct Measurement {
    rounds: u64,
    packets: u64,
    seconds: f64,
    steps_per_sec: f64,
}

const SEED: u64 = 2003;

fn fault_model(faulty: bool) -> FaultModel {
    if faulty {
        FaultModel::builder()
            .p_upset(0.1)
            .p_overflow(0.05)
            .sigma_synch(0.2)
            .error_model(ErrorModel::RandomErrorVector)
            .build()
            .expect("valid fault model")
    } else {
        FaultModel::none()
    }
}

fn workloads() -> Vec<Workload> {
    let flooding = |ttl: u8| StochasticConfig::flooding(ttl).with_max_rounds(60);
    let gossip = |ttl: u8| {
        let mut c = StochasticConfig::flooding(ttl).with_max_rounds(60);
        c.forward_probability = 0.5;
        c
    };
    vec![
        Workload {
            name: "grid4_flooding_fault_free",
            side: 4,
            config: flooding(12),
            faulty: false,
            injections: 2,
        },
        Workload {
            name: "grid4_gossip_faulty",
            side: 4,
            config: gossip(16),
            faulty: true,
            injections: 2,
        },
        Workload {
            name: "grid8_flooding_fault_free",
            side: 8,
            config: flooding(20),
            faulty: false,
            injections: 3,
        },
        Workload {
            name: "grid8_flooding_faulty",
            side: 8,
            config: flooding(20),
            faulty: true,
            injections: 3,
        },
        Workload {
            name: "grid8_gossip_faulty",
            side: 8,
            config: gossip(24),
            faulty: true,
            injections: 3,
        },
        Workload {
            name: "grid16_flooding_fault_free",
            side: 16,
            config: flooding(28),
            faulty: false,
            injections: 4,
        },
        Workload {
            name: "grid16_gossip_faulty",
            side: 16,
            config: gossip(32),
            faulty: true,
            injections: 4,
        },
    ]
}

/// Deterministic corner-ish source/destination pairs for `k` injections.
fn pairs(side: usize, k: usize) -> Vec<(NodeId, NodeId)> {
    let n = side * side;
    (0..k)
        .map(|i| (NodeId((i * 7) % n), NodeId(n - 1 - (i * 3) % n)))
        .collect()
}

fn run_reference(w: &Workload, reps: usize) -> Measurement {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Instant::now();
    for rep in 0..reps {
        let mut sim = ReferenceSimulation::new(
            Topology::grid(w.side, w.side),
            w.config,
            fault_model(w.faulty),
            CrashSchedule::new(),
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            SEED + rep as u64,
        );
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        rounds,
        packets,
        seconds,
        steps_per_sec: rounds as f64 / seconds.max(1e-9),
    }
}

fn run_optimized(w: &Workload, reps: usize) -> Measurement {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Instant::now();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build();
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        rounds,
        packets,
        seconds,
        steps_per_sec: rounds as f64 / seconds.max(1e-9),
    }
}

/// One timed batch of `reps` full runs of a workload built with `sink`.
///
/// Returns `(seconds, rounds, packets)`; the totals double as a
/// determinism check across sink variants — sinks observe, they never
/// steer the schedule.
fn sink_batch<S: EventSink, F: Fn() -> S>(w: &Workload, reps: usize, sink: F) -> (f64, u64, u64) {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Instant::now();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build_with_sink(sink());
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    (start.elapsed().as_secs_f64(), rounds, packets)
}

/// Like [`sink_batch`] but through the default `build()` path.
fn default_batch(w: &Workload, reps: usize) -> (f64, u64, u64) {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Instant::now();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build();
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    (start.elapsed().as_secs_f64(), rounds, packets)
}

/// Best-of interleaved timings for one workload across sink variants.
struct SinkOverhead {
    default_secs: f64,
    null_secs: f64,
    counter_secs: f64,
}

impl SinkOverhead {
    /// NullSink overhead over the default build, as a fraction (0.02 = 2%).
    fn null_overhead(&self) -> f64 {
        self.null_secs / self.default_secs.max(1e-12) - 1.0
    }

    /// CounterSink overhead over the default build (informational).
    fn counter_overhead(&self) -> f64 {
        self.counter_secs / self.default_secs.max(1e-12) - 1.0
    }
}

/// Interleaves `samples` batches of each variant and keeps the best
/// (minimum) time per variant, so slow outliers (scheduler noise,
/// frequency ramps) hit every variant equally and drop out of the
/// comparison.
fn measure_sink_overhead(w: &Workload, reps: usize, samples: usize) -> SinkOverhead {
    let baseline = default_batch(w, reps); // warm-up + reference totals
    let mut best = SinkOverhead {
        default_secs: f64::INFINITY,
        null_secs: f64::INFINITY,
        counter_secs: f64::INFINITY,
    };
    for _ in 0..samples {
        let (t, r, p) = default_batch(w, reps);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: default drifted",
            w.name
        );
        best.default_secs = best.default_secs.min(t);
        let (t, r, p) = sink_batch(w, reps, || NullSink);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: NullSink perturbed",
            w.name
        );
        best.null_secs = best.null_secs.min(t);
        let (t, r, p) = sink_batch(w, reps, CounterSink::new);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: CounterSink perturbed",
            w.name
        );
        best.counter_secs = best.counter_secs.min(t);
    }
    best
}

fn main() {
    let mut scale = "full".to_string();
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().expect("--scale needs quick|full"),
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_baseline [--scale quick|full] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let reps = match scale.as_str() {
        "quick" => 3,
        "full" => 25,
        other => {
            eprintln!("unknown scale `{other}` (expected quick|full)");
            std::process::exit(2);
        }
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_baseline\",");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"reps_per_workload\": {reps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"before_engine\": \"ReferenceSimulation (naive pre-optimization data flow)\","
    );
    let _ = writeln!(
        json,
        "  \"after_engine\": \"Simulation (Arc frames + CRC memo + reusable arenas)\","
    );
    json.push_str("  \"workloads\": [\n");

    let all = workloads();
    let mut failures = Vec::new();
    for (i, w) in all.iter().enumerate() {
        // Warm-up once so neither engine pays first-touch costs.
        run_optimized(w, 1);
        run_reference(w, 1);
        let before = run_reference(w, reps);
        let after = run_optimized(w, reps);
        assert_eq!(
            (before.rounds, before.packets),
            (after.rounds, after.packets),
            "{}: engines diverged — determinism contract broken",
            w.name
        );
        let speedup = after.steps_per_sec / before.steps_per_sec.max(1e-9);
        eprintln!(
            "{:<28} before {:>9.0} steps/s   after {:>9.0} steps/s   speedup {:>5.2}x",
            w.name, before.steps_per_sec, after.steps_per_sec, speedup
        );
        let gate = w.name == "grid8_flooding_faulty" || w.name == "grid8_flooding_fault_free";
        if gate && speedup < 2.0 {
            failures.push(format!("{} speedup {speedup:.2}x < 2x", w.name));
        }
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"grid\": \"{0}x{0}\",", w.side);
        let _ = writeln!(
            json,
            "      \"forward_probability\": {},",
            w.config.forward_probability
        );
        let _ = writeln!(json, "      \"ttl\": {},", w.config.default_ttl);
        let _ = writeln!(json, "      \"faulty\": {},", w.faulty);
        let _ = writeln!(json, "      \"rounds_total\": {},", after.rounds);
        let _ = writeln!(json, "      \"packets_total\": {},", after.packets);
        let _ = writeln!(
            json,
            "      \"before_steps_per_sec\": {:.1},",
            before.steps_per_sec
        );
        let _ = writeln!(
            json,
            "      \"after_steps_per_sec\": {:.1},",
            after.steps_per_sec
        );
        let _ = writeln!(json, "      \"before_seconds\": {:.6},", before.seconds);
        let _ = writeln!(json, "      \"after_seconds\": {:.6},", after.seconds);
        let _ = writeln!(json, "      \"speedup\": {speedup:.3}");
        json.push_str(if i + 1 == all.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");

    // Event-sink overhead on the 8x8 matrix: the default build, an
    // explicit NullSink and a CounterSink must execute the identical
    // schedule; the NullSink path is gated at <= 2% overhead.
    let samples = if reps >= 25 { 7 } else { 5 };
    json.push_str("  \"sink_overhead\": [\n");
    let grid8: Vec<&Workload> = all.iter().filter(|w| w.side == 8).collect();
    for (i, w) in grid8.iter().enumerate() {
        let m = measure_sink_overhead(w, reps, samples);
        let null_pct = 100.0 * m.null_overhead();
        let counter_pct = 100.0 * m.counter_overhead();
        eprintln!(
            "{:<28} NullSink overhead {:>+6.2}%   CounterSink overhead {:>+6.2}%   (best of {samples})",
            w.name, null_pct, counter_pct
        );
        if m.null_overhead() > 0.02 {
            failures.push(format!("{}: NullSink overhead {null_pct:.2}% > 2%", w.name));
        }
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"runs_per_sample\": {reps},");
        let _ = writeln!(json, "      \"best_of_samples\": {samples},");
        let _ = writeln!(json, "      \"default_seconds\": {:.6},", m.default_secs);
        let _ = writeln!(json, "      \"null_sink_seconds\": {:.6},", m.null_secs);
        let _ = writeln!(
            json,
            "      \"counter_sink_seconds\": {:.6},",
            m.counter_secs
        );
        let _ = writeln!(json, "      \"null_overhead_pct\": {null_pct:.3},");
        let _ = writeln!(json, "      \"counter_overhead_pct\": {counter_pct:.3}");
        json.push_str(if i + 1 == grid8.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    if !failures.is_empty() {
        eprintln!("PERF REGRESSION: {}", failures.join("; "));
        std::process::exit(1);
    }
}
