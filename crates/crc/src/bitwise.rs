//! Bit-serial CRC computation, modelling the hardware shift register.

use crate::params::{reflect, CrcParams};
use crate::CrcAlgorithm;

/// A bit-at-a-time CRC engine.
///
/// This is a cycle-faithful software model of the single linear-feedback
/// shift register the paper proposes for each tile's receive path: each call
/// to [`CrcState::shift_bit`] corresponds to one clock of the hardware
/// register. The one-shot [`CrcAlgorithm::checksum`] simply clocks all bits
/// of the message through.
///
/// # Examples
///
/// ```
/// use noc_crc::{BitwiseCrc, CrcAlgorithm, CrcParams};
///
/// let crc = BitwiseCrc::new(CrcParams::CRC8_ATM);
/// assert_eq!(crc.checksum(b"123456789"), 0xA1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitwiseCrc {
    params: CrcParams,
}

/// Streaming state for a bitwise CRC computation.
///
/// Obtained from [`BitwiseCrc::start`]; feed bits/bytes, then call
/// [`CrcState::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcState {
    params: CrcParams,
    register: u64,
}

impl BitwiseCrc {
    /// Creates an engine for the given parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`CrcParams::validate`]; the built-in
    /// constants are always valid.
    pub fn new(params: CrcParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid CRC parameters: {e}"));
        Self { params }
    }

    /// Begins a streaming computation (register preloaded with `init`).
    pub fn start(&self) -> CrcState {
        CrcState {
            params: self.params,
            register: self.params.init & self.params.mask(),
        }
    }
}

impl CrcState {
    /// Clocks a single message bit into the shift register.
    ///
    /// This is the operation the on-tile hardware performs once per received
    /// bit: the incoming bit is XORed against the register MSB; if the
    /// result is 1 the register shifts left and the generator polynomial is
    /// XORed in, otherwise it just shifts.
    #[inline]
    pub fn shift_bit(&mut self, bit: bool) {
        let width = self.params.width;
        let top = 1u64 << (width - 1);
        let feedback = ((self.register & top) != 0) ^ bit;
        self.register = (self.register << 1) & self.params.mask();
        if feedback {
            self.register ^= self.params.poly;
        }
    }

    /// Feeds one byte (respecting the parameter set's input reflection).
    #[inline]
    pub fn update_byte(&mut self, byte: u8) {
        if self.params.reflect_in {
            for i in 0..8 {
                self.shift_bit(byte >> i & 1 == 1);
            }
        } else {
            for i in (0..8).rev() {
                self.shift_bit(byte >> i & 1 == 1);
            }
        }
    }

    /// Feeds a slice of bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.update_byte(b);
        }
    }

    /// Finalizes and returns the checksum (applying output reflection and
    /// the XOR-out constant).
    pub fn finish(self) -> u64 {
        let mut r = self.register;
        if self.params.reflect_out {
            r = reflect(r, self.params.width);
        }
        (r ^ self.params.xor_out) & self.params.mask()
    }
}

impl CrcAlgorithm for BitwiseCrc {
    fn params(&self) -> &CrcParams {
        &self.params
    }

    fn checksum(&self, data: &[u8]) -> u64 {
        let mut state = self.start();
        state.update(data);
        state.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_equals_one_shot() {
        let crc = BitwiseCrc::new(CrcParams::CRC16_CCITT);
        let data = b"stochastic communication";
        let mut st = crc.start();
        for chunk in data.chunks(3) {
            st.update(chunk);
        }
        assert_eq!(st.finish(), crc.checksum(data));
    }

    #[test]
    fn single_bit_flip_always_detected() {
        // CRC detects every single-bit error by construction.
        let crc = BitwiseCrc::new(CrcParams::CRC8_ATM);
        let data = b"abcd";
        let clean = crc.checksum(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.to_vec();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc.checksum(&corrupt), clean, "bit {bit} of byte {byte}");
            }
        }
    }

    #[test]
    fn narrow_width_works() {
        let crc = BitwiseCrc::new(CrcParams::CRC5_USB);
        let v = crc.checksum(b"123456789");
        assert_eq!(v, 0x19);
        assert!(v <= CrcParams::CRC5_USB.mask());
    }

    #[test]
    #[should_panic(expected = "invalid CRC parameters")]
    fn invalid_params_panic() {
        let mut p = CrcParams::CRC8_ATM;
        p.width = 99;
        let _ = BitwiseCrc::new(p);
    }

    #[test]
    fn shift_bit_matches_polynomial_division_for_zero_init() {
        // For init = 0, no reflection and xor_out = 0, the CRC of a message
        // is the remainder of M(x)·x^w mod G(x). Check a tiny case by hand:
        // message 0x80 (single 1 bit then zeros), CRC-8 poly 0x07.
        let p = CrcParams {
            name: "test",
            width: 8,
            poly: 0x07,
            init: 0,
            reflect_in: false,
            reflect_out: false,
            xor_out: 0,
        };
        let crc = BitwiseCrc::new(p);
        // x^15 mod (x^8 + x^2 + x + 1): computed by long division = 0x89.
        assert_eq!(crc.checksum(&[0x80]), 0x89);
    }
}
