//! The on-wire packet format: header + payload + CRC tag.
//!
//! A [`Message`] is the logical unit the gossip protocol spreads; the
//! [`WireCodec`] frames it into bytes protected by a CRC tag, exactly the
//! encode/check path of the tile hardware in Figure 3-5. Upsets scramble
//! the framed bytes; the receive path really recomputes the CRC, so
//! undetected-error leakage is faithfully possible (at the CRC's residual
//! error rate) rather than assumed away.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use noc_crc::{CrcParams, DecodeError, PacketCodec};
use noc_energy::Bits;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Globally unique identity of a logical message.
///
/// The send-buffer deduplication of the gossip algorithm ("if a message is
/// already present, a duplicate message will not be inserted") keys on this
/// id, as does exactly-once delivery to the destination IP.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A logical message travelling through the NoC.
///
/// # Examples
///
/// ```
/// use noc_fabric::{Message, MessageId, NodeId};
///
/// let m = Message::new(MessageId(1), NodeId(5), NodeId(11), 12, vec![1, 2, 3]);
/// assert_eq!(m.ttl, 12);
/// assert!(!m.expired());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Unique message identity (assigned at injection).
    pub id: MessageId,
    /// Originating tile.
    pub source: NodeId,
    /// Destination tile ("every IP selects only those messages whose
    /// destination field equals the ID of the tile").
    pub destination: NodeId,
    /// Remaining time-to-live in hops; decremented once per round, the
    /// message is garbage-collected at zero.
    pub ttl: u8,
    /// Application payload bytes, shared by reference between the copies a
    /// simulation holds (send-buffer entries, deliveries, encode memos), so
    /// gossip fan-out never duplicates the bytes.
    pub payload: Arc<[u8]>,
}

impl Message {
    /// Creates a message. Accepts anything convertible into shared bytes
    /// (`Vec<u8>`, `&[u8]`, `Arc<[u8]>`, …).
    pub fn new(
        id: MessageId,
        source: NodeId,
        destination: NodeId,
        ttl: u8,
        payload: impl Into<Arc<[u8]>>,
    ) -> Self {
        Self {
            id,
            source,
            destination,
            ttl,
            payload: payload.into(),
        }
    }

    /// True once the TTL has reached zero.
    pub fn expired(&self) -> bool {
        self.ttl == 0
    }

    /// Decrements the TTL, saturating at zero.
    pub fn age(&mut self) {
        self.ttl = self.ttl.saturating_sub(1);
    }
}

/// Fixed header size on the wire: id (8) + source (2) + destination (2) +
/// ttl (1) + payload length (2).
pub const HEADER_BYTES: usize = 8 + 2 + 2 + 1 + 2;

/// A parsed packet borrowing its payload from the frame it was decoded
/// from — the zero-copy result of [`WireCodec::decode_view`].
///
/// Receive paths that only inspect the header (duplicate suppression,
/// destination match) never touch the payload bytes; call
/// [`MessageView::to_message`] only when the message is actually retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageView<'a> {
    /// Unique message identity.
    pub id: MessageId,
    /// Originating tile.
    pub source: NodeId,
    /// Destination tile.
    pub destination: NodeId,
    /// Remaining time-to-live carried on the wire.
    pub ttl: u8,
    /// Payload bytes, borrowed from the decoded frame.
    pub payload: &'a [u8],
}

impl MessageView<'_> {
    /// Materializes an owned [`Message`], allocating shared payload bytes.
    pub fn to_message(&self) -> Message {
        Message {
            id: self.id,
            source: self.source,
            destination: self.destination,
            ttl: self.ttl,
            payload: Arc::from(self.payload),
        }
    }
}

/// Error returned when a received frame cannot be parsed back into a
/// [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePacketError {
    /// CRC verification failed — the packet suffered a data upset and must
    /// be discarded (the common case under fault injection).
    Crc(DecodeError),
    /// The frame's CRC was consistent but the header is malformed (an
    /// undetected upset produced garbage, or the frame was truncated).
    MalformedHeader {
        /// Length of the decoded (tag-stripped) frame.
        len: usize,
    },
    /// The header's payload length disagrees with the frame length.
    LengthMismatch {
        /// Payload length the header claims.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePacketError::Crc(e) => write!(f, "crc check failed: {e}"),
            ParsePacketError::MalformedHeader { len } => {
                write!(f, "frame of {len} bytes cannot hold a packet header")
            }
            ParsePacketError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "header declares {declared} payload bytes, frame has {actual}"
                )
            }
        }
    }
}

impl Error for ParsePacketError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParsePacketError::Crc(e) => Some(e),
            _ => None,
        }
    }
}

/// Frames [`Message`]s into CRC-protected wire packets and back.
///
/// # Examples
///
/// ```
/// use noc_fabric::{Message, MessageId, NodeId, WireCodec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let codec = WireCodec::default();
/// let m = Message::new(MessageId(9), NodeId(0), NodeId(3), 8, b"fft row".to_vec());
/// let frame = codec.encode(&m);
/// let back = codec.decode(&frame)?;
/// assert_eq!(back, m);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WireCodec {
    codec: PacketCodec,
}

impl Default for WireCodec {
    /// CRC-16/CCITT protection, the library default.
    fn default() -> Self {
        Self::new(CrcParams::CRC16_CCITT)
    }
}

impl WireCodec {
    /// Creates a codec with the given CRC parameter set.
    pub fn new(params: CrcParams) -> Self {
        Self {
            codec: PacketCodec::new(params),
        }
    }

    /// Size on the wire of a message with `payload_len` payload bytes.
    pub fn frame_bytes(&self, payload_len: usize) -> usize {
        HEADER_BYTES + payload_len + self.codec.overhead_bytes()
    }

    /// Size on the wire, in bits (the `S` of Equations 2 and 3).
    pub fn frame_bits(&self, payload_len: usize) -> Bits {
        Bits::from_bytes(self.frame_bytes(payload_len) as u64)
    }

    /// Frames a message.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes or either node index
    /// exceeds `u16::MAX` (the wire format's field widths).
    pub fn encode(&self, message: &Message) -> Vec<u8> {
        let mut frame = Vec::with_capacity(self.frame_bytes(message.payload.len()));
        self.encode_into(message, &mut frame);
        frame
    }

    /// Frames a message by appending the wire bytes to `out`, so callers
    /// encoding every round can reuse one scratch buffer instead of
    /// allocating per packet. Same panics as [`WireCodec::encode`].
    pub fn encode_into(&self, message: &Message, out: &mut Vec<u8>) {
        assert!(
            message.payload.len() <= u16::MAX as usize,
            "payload too large for wire format"
        );
        assert!(
            message.source.index() <= u16::MAX as usize
                && message.destination.index() <= u16::MAX as usize,
            "node index too large for wire format"
        );
        let body_start = out.len();
        out.extend_from_slice(&message.id.0.to_be_bytes());
        out.extend_from_slice(&(message.source.index() as u16).to_be_bytes());
        out.extend_from_slice(&(message.destination.index() as u16).to_be_bytes());
        out.push(message.ttl);
        out.extend_from_slice(&(message.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&message.payload);
        self.codec.append_tag(out, body_start);
    }

    /// Verifies the CRC and parses the frame back into a message.
    ///
    /// # Errors
    ///
    /// [`ParsePacketError::Crc`] if the tag check fails (a detected upset);
    /// [`ParsePacketError::MalformedHeader`] or
    /// [`ParsePacketError::LengthMismatch`] if a frame with a consistent
    /// tag does not carry a well-formed packet.
    pub fn decode(&self, frame: &[u8]) -> Result<Message, ParsePacketError> {
        self.decode_view(frame).map(|view| view.to_message())
    }

    /// Verifies the CRC and parses the frame into a borrowed
    /// [`MessageView`] without copying the payload. Same errors as
    /// [`WireCodec::decode`].
    ///
    /// # Errors
    ///
    /// See [`WireCodec::decode`].
    pub fn decode_view<'a>(&self, frame: &'a [u8]) -> Result<MessageView<'a>, ParsePacketError> {
        let body = self.codec.decode(frame).map_err(ParsePacketError::Crc)?;
        parse_body(body)
    }

    /// Parses a frame *known to be exactly as this codec encoded it* —
    /// e.g. one that never left the simulator's control unscrambled —
    /// without recomputing the CRC: the tag is correct by construction.
    /// Debug builds still verify it. Frames that may have been corrupted
    /// must take [`WireCodec::decode_view`] instead.
    ///
    /// # Errors
    ///
    /// Same header errors as [`WireCodec::decode_view`]; unreachable for
    /// genuinely self-encoded frames.
    pub fn decode_view_trusted<'a>(
        &self,
        frame: &'a [u8],
    ) -> Result<MessageView<'a>, ParsePacketError> {
        let tag = self.codec.overhead_bytes();
        if frame.len() < tag {
            return Err(ParsePacketError::MalformedHeader { len: frame.len() });
        }
        debug_assert!(
            self.codec.verify(frame),
            "decode_view_trusted on a frame with an inconsistent crc"
        );
        parse_body(&frame[..frame.len() - tag])
    }

    /// Reads the message id at its fixed header offset without verifying
    /// the CRC or parsing the rest of the frame. Returns `None` for
    /// frames too short to be a packet.
    ///
    /// Duplicate suppression on trusted (never-scrambled) frames needs
    /// only this: most arrivals in a flood are copies of an
    /// already-buffered message, and they can be rejected on the id alone.
    pub fn peek_id(&self, frame: &[u8]) -> Option<MessageId> {
        if frame.len() < HEADER_BYTES + self.codec.overhead_bytes() {
            return None;
        }
        Some(MessageId(u64::from_be_bytes(
            frame[0..8].try_into().expect("8 bytes"),
        )))
    }
}

/// Parses a tag-stripped packet body into a borrowed view.
fn parse_body(body: &[u8]) -> Result<MessageView<'_>, ParsePacketError> {
    if body.len() < HEADER_BYTES {
        return Err(ParsePacketError::MalformedHeader { len: body.len() });
    }
    let id = MessageId(u64::from_be_bytes(body[0..8].try_into().expect("8 bytes")));
    let source = NodeId(u16::from_be_bytes(body[8..10].try_into().expect("2 bytes")) as usize);
    let destination =
        NodeId(u16::from_be_bytes(body[10..12].try_into().expect("2 bytes")) as usize);
    let ttl = body[12];
    let declared = u16::from_be_bytes(body[13..15].try_into().expect("2 bytes")) as usize;
    let payload = &body[HEADER_BYTES..];
    if declared != payload.len() {
        return Err(ParsePacketError::LengthMismatch {
            declared,
            actual: payload.len(),
        });
    }
    Ok(MessageView {
        id,
        source,
        destination,
        ttl,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn msg(payload: Vec<u8>) -> Message {
        Message::new(MessageId(77), NodeId(3), NodeId(14), 10, payload)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let codec = WireCodec::default();
        let m = msg(vec![9, 8, 7, 6]);
        assert_eq!(codec.decode(&codec.encode(&m)).unwrap(), m);
    }

    #[test]
    fn empty_payload_round_trips() {
        let codec = WireCodec::default();
        let m = msg(vec![]);
        assert_eq!(codec.decode(&codec.encode(&m)).unwrap(), m);
    }

    #[test]
    fn frame_size_accounting() {
        let codec = WireCodec::default();
        let m = msg(vec![0; 32]);
        let frame = codec.encode(&m);
        assert_eq!(frame.len(), codec.frame_bytes(32));
        assert_eq!(codec.frame_bits(32).bits(), (frame.len() * 8) as u64);
    }

    #[test]
    fn encode_into_matches_encode() {
        let codec = WireCodec::default();
        let mut scratch = Vec::new();
        for m in [msg(vec![]), msg(vec![1]), msg(vec![0xAA; 50])] {
            scratch.clear();
            codec.encode_into(&m, &mut scratch);
            assert_eq!(scratch, codec.encode(&m));
        }
    }

    #[test]
    fn decode_view_borrows_the_frame_payload() {
        let codec = WireCodec::default();
        let m = msg(b"zero copy".to_vec());
        let frame = codec.encode(&m);
        let view = codec.decode_view(&frame).unwrap();
        assert_eq!(view.id, m.id);
        assert_eq!(view.source, m.source);
        assert_eq!(view.destination, m.destination);
        assert_eq!(view.ttl, m.ttl);
        assert_eq!(view.payload, &m.payload[..]);
        // The view's payload is a sub-slice of the frame, not a copy.
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(frame_range.contains(&(view.payload.as_ptr() as usize)));
        assert_eq!(view.to_message(), m);
    }

    #[test]
    fn trusted_decode_and_peek_match_full_decode() {
        let codec = WireCodec::default();
        let m = msg(b"fast path".to_vec());
        let frame = codec.encode(&m);
        assert_eq!(codec.peek_id(&frame), Some(m.id));
        assert_eq!(
            codec.decode_view_trusted(&frame).unwrap(),
            codec.decode_view(&frame).unwrap()
        );
        assert_eq!(codec.peek_id(&[0u8; 4]), None, "too short to peek");
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let codec = WireCodec::default();
        let mut frame = codec.encode(&msg(vec![1, 2, 3]));
        frame[5] ^= 0x10;
        match codec.decode(&frame) {
            Err(ParsePacketError::Crc(_)) => {}
            other => panic!("expected crc failure, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let codec = WireCodec::default();
        let frame = codec.encode(&msg(vec![1, 2, 3]));
        // Any truncation must fail (either CRC or header checks).
        for cut in 0..frame.len() {
            assert!(codec.decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn ttl_aging_saturates() {
        let mut m = msg(vec![]);
        m.ttl = 1;
        m.age();
        assert!(m.expired());
        m.age();
        assert_eq!(m.ttl, 0, "age saturates at zero");
    }

    #[test]
    fn error_display_and_source() {
        let codec = WireCodec::default();
        let mut frame = codec.encode(&msg(vec![1]));
        frame[0] ^= 0xFF;
        let err = codec.decode(&frame).unwrap_err();
        assert!(err.to_string().contains("crc"));
        assert!(std::error::Error::source(&err).is_some());
    }

    proptest! {
        #[test]
        fn arbitrary_messages_round_trip(
            id in any::<u64>(),
            src in 0usize..1000,
            dst in 0usize..1000,
            ttl in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let codec = WireCodec::default();
            let m = Message::new(MessageId(id), NodeId(src), NodeId(dst), ttl, payload);
            prop_assert_eq!(codec.decode(&codec.encode(&m)).unwrap(), m);
        }

        #[test]
        fn random_corruption_never_panics(
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            corrupt in proptest::collection::vec(any::<u8>(), 1..128),
        ) {
            // decode() must be total: any byte soup either parses or errors.
            let codec = WireCodec::default();
            let _ = codec.decode(&corrupt);
            let mut frame = codec.encode(&msg(payload));
            for (i, c) in corrupt.iter().enumerate() {
                if i < frame.len() {
                    frame[i] ^= c;
                }
            }
            let _ = codec.decode(&frame);
        }
    }
}
