//! Corpus fixture: a stream constructed and drawn outside the
//! sanctioned modules.

pub fn ad_hoc_stream(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
