//! Parallel, deterministic Monte-Carlo trial runner.
//!
//! Every figure of the paper is the average of many independent seeded
//! simulations. [`TrialRunner`] fans those trials out across scoped
//! worker threads while keeping the output **bit-identical for any
//! thread count, including 1**:
//!
//! * each trial's seed is derived purely from `(base_seed, trial_index)`
//!   via [`stochastic_noc::seed::derive_trial_seed`] (SplitMix64), never
//!   from scheduling order;
//! * results are collected **in trial-index order**, so downstream
//!   aggregation sees the same sequence regardless of which worker
//!   finished first.
//!
//! The worker count defaults to the process-wide setting installed by
//! the `experiments` binary's `--threads` flag ([`set_default_threads`])
//! or, absent that, to [`std::thread::available_parallelism`].
//!
//! Each completed run deposits a [`RunnerReport`] (trials, worker count,
//! wall-clock) in a process-wide queue the binary drains via
//! [`take_reports`] to surface runner observability next to each table.
//!
//! # Examples
//!
//! ```
//! use noc_experiments::runner::TrialRunner;
//!
//! let squares: Vec<u64> = TrialRunner::new(42, 8)
//!     .threads(2)
//!     .run(|seed| seed.wrapping_mul(seed));
//! let serial: Vec<u64> = TrialRunner::new(42, 8)
//!     .threads(1)
//!     .run(|seed| seed.wrapping_mul(seed));
//! assert_eq!(squares, serial, "output is thread-count independent");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use noc_obs::{Counter, Gauge, Histogram, Metrics, Stopwatch};
use stochastic_noc::seed::{derive_labeled_seed, derive_trial_seed};
use stochastic_noc::EngineObs;

/// Process-wide default worker count; 0 means "auto-detect".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide intra-trial shard count (`--shards N`); 0 means
/// "auto-detect". Unlike `--threads` (which fans out whole trials),
/// shards split the tiles of a single simulation across scoped worker
/// threads; reports are byte-identical for every value.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Process-wide base seed every figure derives its sweep seed from.
static BASE_SEED: AtomicU64 = AtomicU64::new(0);

/// Completed-run observability records awaiting [`take_reports`].
static REPORTS: Mutex<Vec<RunnerReport>> = Mutex::new(Vec::new());

/// Process-wide event-trace destination (`--trace-events PATH`); empty
/// when tracing is off.
static TRACE_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Sets (or, with `None`, clears) the process-wide event-trace path.
/// Figures that support tracing write a JSONL event stream of one
/// representative trial there.
pub fn set_trace_path(path: Option<String>) {
    *TRACE_PATH.lock().expect("trace path lock") = path;
}

/// The event-trace destination installed by `--trace-events`, if any.
pub fn trace_path() -> Option<String> {
    TRACE_PATH.lock().expect("trace path lock").clone()
}

/// Process-wide wall-clock metrics registry (`--metrics-out PATH`);
/// `None` when the observability plane is off, which is the default.
static METRICS: Mutex<Option<Arc<Metrics>>> = Mutex::new(None);

/// Serialises tests (across this crate) that mutate process-wide runner
/// state — the metrics registry, shard default, trace path — so
/// parallel test execution can't interleave installs and reads.
#[cfg(test)]
pub(crate) static GLOBAL_STATE_TEST_LOCK: Mutex<()> = Mutex::new(());

/// Whether `--progress` heartbeats are on.
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Installs (or, with `None`, removes) the process-wide wall-clock
/// metrics registry. While installed, every [`TrialRunner::run`] records
/// per-trial wall time, queue wait, and throughput into it, and figures
/// wire [`engine_obs`] into their simulation builders so engine phases
/// are timed too. Nothing on the deterministic plane (tables, reports,
/// digests) can observe the registry — see DESIGN.md §13.
pub fn install_metrics(metrics: Option<Arc<Metrics>>) {
    *METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = metrics;
}

/// The installed wall-clock metrics registry, if any.
pub fn metrics() -> Option<Arc<Metrics>> {
    METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Engine-phase instruments bound to the installed registry, for
/// figures to pass to `SimulationBuilder::obs`. `None` when the
/// wall-clock plane is off, so the default path builds uninstrumented
/// engines.
pub fn engine_obs() -> Option<EngineObs> {
    metrics().map(|m| EngineObs::new(&m))
}

/// Turns `--progress` heartbeats on or off.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Whether `--progress` heartbeats are enabled.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Process-wide reconciliation-report destination (`--reconcile-json
/// PATH`); empty when reporting is off.
static RECONCILE_JSON_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Sets (or, with `None`, clears) the process-wide reconciliation-report
/// path. Figures that support it write a JSON summary of their
/// `CounterSink`-vs-report reconciliation there.
pub fn set_reconcile_json_path(path: Option<String>) {
    *RECONCILE_JSON_PATH.lock().expect("reconcile path lock") = path;
}

/// The reconciliation-report destination installed by
/// `--reconcile-json`, if any.
pub fn reconcile_json_path() -> Option<String> {
    RECONCILE_JSON_PATH
        .lock()
        .expect("reconcile path lock")
        .clone()
}

/// Process-wide checkpoint cadence in rounds (`--checkpoint-every N`);
/// 0 means checkpointing is off, which is the default.
static CHECKPOINT_EVERY: AtomicU64 = AtomicU64::new(0);

/// Process-wide checkpoint destination directory (`--checkpoint-dir
/// PATH`); `None` falls back to the current directory.
static CHECKPOINT_DIR: Mutex<Option<String>> = Mutex::new(None);

/// Process-wide resume source (`--resume PATH`); when set, figures
/// that support checkpointing restore the matching simulation from the
/// file instead of starting it from round 0.
static RESUME_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Sets the checkpoint cadence (`--checkpoint-every N`). `0` turns
/// checkpointing off.
pub fn set_checkpoint_every(rounds: u64) {
    CHECKPOINT_EVERY.store(rounds, Ordering::Relaxed);
}

/// The checkpoint cadence in rounds; `None` when checkpointing is off.
pub fn checkpoint_every() -> Option<u64> {
    match CHECKPOINT_EVERY.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Sets (or, with `None`, clears) the checkpoint destination directory.
pub fn set_checkpoint_dir(path: Option<String>) {
    *CHECKPOINT_DIR.lock().expect("checkpoint dir lock") = path;
}

/// The checkpoint destination directory installed by
/// `--checkpoint-dir`, if any.
pub fn checkpoint_dir() -> Option<String> {
    CHECKPOINT_DIR.lock().expect("checkpoint dir lock").clone()
}

/// Sets (or, with `None`, clears) the resume source path.
pub fn set_resume_path(path: Option<String>) {
    *RESUME_PATH.lock().expect("resume path lock") = path;
}

/// The resume source installed by `--resume`, if any.
pub fn resume_path() -> Option<String> {
    RESUME_PATH.lock().expect("resume path lock").clone()
}

/// Sets the process-wide default worker count (`--threads N`).
///
/// `0` restores auto-detection. Runs already in flight are unaffected.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide default worker count; `0` means auto-detect.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Sets the process-wide intra-trial shard count (`--shards N`).
///
/// `0` requests auto-detection inside the engine
/// ([`stochastic_noc::SimulationBuilder::shards`]); the default is 1
/// (fully sequential rounds). Runs already in flight are unaffected.
pub fn set_default_shards(shards: usize) {
    DEFAULT_SHARDS.store(shards, Ordering::Relaxed);
}

/// The process-wide intra-trial shard count figures pass to
/// [`stochastic_noc::SimulationBuilder::shards`]; `0` means auto-detect.
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// Sets the process-wide base seed (`--seed N`). Defaults to 0.
pub fn set_base_seed(seed: u64) {
    BASE_SEED.store(seed, Ordering::Relaxed);
}

/// The process-wide base seed figures derive their sweeps from.
pub fn base_seed() -> u64 {
    BASE_SEED.load(Ordering::Relaxed)
}

/// Drains and returns the observability reports accumulated since the
/// previous call, oldest first.
pub fn take_reports() -> Vec<RunnerReport> {
    std::mem::take(&mut REPORTS.lock().expect("runner report lock"))
}

/// Observability record of one completed [`TrialRunner::run`].
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// The experiment the run belonged to (empty when unlabeled).
    pub label: String,
    /// Trials completed.
    pub trials: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunnerReport {
    /// Mean wall-clock time per trial.
    pub fn per_trial(&self) -> Duration {
        if self.trials == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.trials).unwrap_or(u32::MAX)
        }
    }
}

/// Wall-clock instruments for one sweep, present only while a metrics
/// registry is installed. All handles are lock-free atomics, so worker
/// threads record without coordination.
struct RunnerObs {
    trial_seconds: Histogram,
    queue_wait: Histogram,
    trials: Counter,
    trials_per_sec: Gauge,
}

impl RunnerObs {
    fn for_label(label: &str) -> Option<Self> {
        let metrics = metrics()?;
        let figure = if label.is_empty() { "unlabeled" } else { label };
        Some(RunnerObs {
            trial_seconds: metrics.histogram("runner_trial_seconds", &[("figure", figure)]),
            queue_wait: metrics.histogram("runner_queue_wait_seconds", &[("figure", figure)]),
            trials: metrics.counter("runner_trials_total", &[("figure", figure)]),
            trials_per_sec: metrics.gauge("runner_trials_per_sec", &[("figure", figure)]),
        })
    }

    /// Records one finished trial: its wall time and how long it sat in
    /// the queue before a worker picked it up.
    fn record_trial(&self, span: &Stopwatch, queue_wait_nanos: u64) {
        self.trial_seconds.observe(span);
        self.queue_wait.observe_nanos(queue_wait_nanos);
        self.trials.inc();
    }
}

/// Throttled `--progress` heartbeat emitter. Heartbeats are JSONL on
/// stderr — stdout stays reserved for the deterministic tables.
struct Heartbeat {
    enabled: bool,
    label: String,
    total: u64,
    /// Sweep-relative time of the last beat, for ~2 Hz throttling.
    last_beat_secs: Mutex<f64>,
}

impl Heartbeat {
    const MIN_INTERVAL_SECS: f64 = 0.5;

    fn new(label: &str, total: u64) -> Self {
        Heartbeat {
            enabled: progress_enabled(),
            label: label.to_string(),
            total,
            last_beat_secs: Mutex::new(f64::NEG_INFINITY),
        }
    }

    /// Emits a heartbeat if enough time has passed since the previous
    /// one. The final trial always beats, so every sweep ends with a
    /// `trials_done == trials_total` line.
    fn beat(&self, completed: u64, sweep: &Stopwatch) {
        if !self.enabled {
            return;
        }
        let elapsed = sweep.elapsed_secs();
        {
            let mut last = self
                .last_beat_secs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if completed < self.total && elapsed - *last < Self::MIN_INTERVAL_SECS {
                return;
            }
            *last = elapsed;
        }
        let trials_per_sec = if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        };
        let eta_secs = if trials_per_sec > 0.0 {
            self.total.saturating_sub(completed) as f64 / trials_per_sec
        } else {
            0.0
        };
        let rounds_per_sec = match (
            metrics().and_then(|m| m.counter_value("engine_rounds_total")),
            elapsed > 0.0,
        ) {
            (Some(rounds), true) => rounds as f64 / elapsed,
            _ => 0.0,
        };
        eprintln!(
            "{{\"event\":\"progress\",\"figure\":\"{}\",\"trials_done\":{},\"trials_total\":{},\"elapsed_secs\":{:.3},\"trials_per_sec\":{:.2},\"eta_secs\":{:.1},\"rounds_per_sec\":{:.1}}}",
            escape_label(&self.label),
            completed,
            self.total,
            finite_or_zero(elapsed),
            finite_or_zero(trials_per_sec),
            finite_or_zero(eta_secs),
            finite_or_zero(rounds_per_sec),
        );
    }
}

/// Clamps a rate/duration to 0.0 unless it is finite. Rust formats
/// non-finite floats as `inf`/`NaN`, which is **not JSON** — one
/// degenerate heartbeat (zero-duration sweep, clock anomaly) would
/// poison the whole `--progress` stream for downstream parsers. The CI
/// JSONL validator rejects non-finite values, so this clamp is what
/// keeps heartbeats machine-readable by construction.
fn finite_or_zero(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// Minimal JSON string escaping for figure labels in heartbeats.
fn escape_label(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A deterministic parallel Monte-Carlo sweep: a base seed, a trial
/// count, and (optionally) an explicit worker count.
#[derive(Debug, Clone)]
pub struct TrialRunner {
    base_seed: u64,
    trials: u64,
    threads: Option<usize>,
    label: String,
}

impl TrialRunner {
    /// A runner executing `trials` trials seeded from `base_seed`.
    pub fn new(base_seed: u64, trials: u64) -> Self {
        TrialRunner {
            base_seed,
            trials,
            threads: None,
            label: String::new(),
        }
    }

    /// A runner for the named figure: its sweep seed is derived from the
    /// process-wide [`base_seed`] and the label, so different figures
    /// never share trial seeds even under one `--seed` value.
    pub fn for_figure(label: &str, trials: u64) -> Self {
        let mut runner = TrialRunner::new(derive_labeled_seed(base_seed(), label), trials);
        runner.label = label.to_string();
        runner
    }

    /// Overrides the worker count for this run (`0` restores the
    /// process-wide default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Labels this run in its [`RunnerReport`].
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The seed trial `trial_index` will receive.
    pub fn trial_seed(&self, trial_index: u64) -> u64 {
        derive_trial_seed(self.base_seed, trial_index)
    }

    /// The worker count this run will use.
    pub fn effective_workers(&self) -> usize {
        let configured = self.threads.unwrap_or_else(|| {
            let process_default = default_threads();
            if process_default > 0 {
                process_default
            } else {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }
        });
        let trials = usize::try_from(self.trials).unwrap_or(usize::MAX);
        configured.clamp(1, trials.max(1))
    }

    /// Runs `f` once per trial with that trial's derived seed, fanning
    /// trials out across scoped threads, and returns the results **in
    /// trial-index order**.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        self.run_indexed(|_, seed| f(seed))
    }

    /// Like [`TrialRunner::run`], but also hands `f` the trial index —
    /// for figures that label rows per run.
    pub fn run_indexed<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        let trials = usize::try_from(self.trials).expect("trial count fits usize");
        let workers = self.effective_workers();
        // Wall-clock plane only: the sweep stopwatch, per-trial spans and
        // heartbeats never influence trial seeds or table output, which
        // derive purely from the seed tree.
        let sweep = Stopwatch::start();
        let obs = RunnerObs::for_label(&self.label);
        let heartbeat = Heartbeat::new(&self.label, self.trials);
        let done = AtomicU64::new(0);
        let finish = |index_elapsed_nanos: u64, span: Stopwatch| {
            if let Some(obs) = &obs {
                obs.record_trial(&span, index_elapsed_nanos);
            }
            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
            heartbeat.beat(completed, &sweep);
        };

        let results: Vec<T> = if workers <= 1 || trials <= 1 {
            (0..trials)
                .map(|i| {
                    let queued = sweep.elapsed_nanos();
                    let span = Stopwatch::start();
                    let result = f(i, self.trial_seed(i as u64));
                    finish(queued, span);
                    result
                })
                .collect()
        } else {
            // Work-stealing by atomic counter: each worker claims the next
            // unstarted trial, computes it, and deposits the result into
            // its index's slot. Determinism needs no coordination beyond
            // the slot order, because seeds depend only on the index.
            let next = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..trials).map(|_| None).collect());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= trials {
                            break;
                        }
                        // Queue wait: how long the trial sat unclaimed
                        // after the sweep opened.
                        let queued = sweep.elapsed_nanos();
                        let span = Stopwatch::start();
                        let result = f(index, self.trial_seed(index as u64));
                        finish(queued, span);
                        slots.lock().expect("result slot lock")[index] = Some(result);
                    });
                }
            });
            slots
                .into_inner()
                .expect("result slot lock")
                .into_iter()
                .map(|slot| slot.expect("every trial deposits a result"))
                .collect()
        };

        let elapsed = sweep.elapsed();
        if let Some(obs) = &obs {
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                obs.trials_per_sec.set(self.trials as f64 / secs);
            }
        }
        REPORTS
            .lock()
            .expect("runner report lock")
            .push(RunnerReport {
                label: self.label.clone(),
                trials: self.trials,
                workers,
                elapsed,
            });
        results
    }

    /// Runs every trial and folds the results **in trial-index order**
    /// into an accumulator — the deterministic per-trial merge for
    /// counter-style aggregates. Because [`TrialRunner::run`] already
    /// restores index order, the fold sees the same sequence for any
    /// worker count, so merged counters (e.g.
    /// `stochastic_noc::events::CounterSink`) are `--threads`-independent.
    pub fn run_fold<T, A, F, M>(&self, f: F, init: A, merge: M) -> A
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
        M: FnMut(A, T) -> A,
    {
        self.run(f).into_iter().fold(init, merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_trial_index_order() {
        let runner = TrialRunner::new(7, 32).threads(4);
        let expected: Vec<u64> = (0..32).map(|i| runner.trial_seed(i)).collect();
        let got = runner.run(|seed| seed);
        assert_eq!(got, expected);
    }

    #[test]
    fn output_is_identical_for_any_thread_count() {
        let baseline = TrialRunner::new(99, 17).threads(1).run(|seed| {
            // A cheap but seed-sensitive computation.
            (0..100u64).fold(seed, |acc, i| acc.rotate_left(7) ^ i)
        });
        for threads in [2, 3, 8] {
            let parallel = TrialRunner::new(99, 17)
                .threads(threads)
                .run(|seed| (0..100u64).fold(seed, |acc, i| acc.rotate_left(7) ^ i));
            assert_eq!(parallel, baseline, "threads={threads}");
        }
    }

    #[test]
    fn uneven_trial_loads_still_collect_in_order() {
        // Early trials take longest, so late trials finish first under
        // parallel execution; order must be restored by index.
        let runner = TrialRunner::new(1, 12).threads(4);
        let got = runner.run_indexed(|index, seed| {
            std::thread::sleep(Duration::from_millis(12u64.saturating_sub(index as u64)));
            (index, seed)
        });
        let indices: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_clamped_to_trials() {
        assert_eq!(TrialRunner::new(0, 2).threads(16).effective_workers(), 2);
        assert_eq!(TrialRunner::new(0, 0).threads(16).effective_workers(), 1);
        assert!(TrialRunner::new(0, 100).effective_workers() >= 1);
    }

    #[test]
    fn figure_runners_use_distinct_seed_streams() {
        let a = TrialRunner::for_figure("fig4-4", 4);
        let b = TrialRunner::for_figure("fig4-5", 4);
        assert_ne!(a.trial_seed(0), b.trial_seed(0));
        // Stable for a fixed global base seed.
        let a2 = TrialRunner::for_figure("fig4-4", 4);
        assert_eq!(a.trial_seed(0), a2.trial_seed(0));
    }

    #[test]
    fn shard_default_roundtrips() {
        let _guard = GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(default_shards(), 1, "sequential rounds by default");
        set_default_shards(8);
        assert_eq!(default_shards(), 8);
        set_default_shards(1);
    }

    #[test]
    fn trace_path_roundtrips() {
        set_trace_path(Some("events.jsonl".to_string()));
        assert_eq!(trace_path().as_deref(), Some("events.jsonl"));
        set_trace_path(None);
        assert_eq!(trace_path(), None);
    }

    #[test]
    fn merged_event_counters_are_thread_count_independent() {
        use noc_fabric::NodeId;
        use stochastic_noc::events::CounterSink;
        use stochastic_noc::{SimulationBuilder, StochasticConfig};

        // Per-trial CounterSinks merged in trial-index order must be
        // identical — per-tile, per-link, and in totals — whether the
        // trials ran on 1, 2 or 8 workers.
        let run_merged = |threads: usize| {
            TrialRunner::new(1234, 12).threads(threads).run_fold(
                |seed| {
                    let mut sim = SimulationBuilder::square_grid(4)
                        .config(StochasticConfig::new(0.5, 8).unwrap().with_max_rounds(20))
                        .fault_model(
                            noc_faults::FaultModel::builder()
                                .p_upset(0.1)
                                .sigma_synch(0.2)
                                .build()
                                .unwrap(),
                        )
                        .seed(seed)
                        .build_with_sink(CounterSink::new());
                    sim.inject(NodeId(5), NodeId(11), vec![1, 2, 3]);
                    let (report, counters) = sim.run_to_report_and_sink();
                    counters.reconcile(&report).expect("trial reconciles");
                    counters
                },
                CounterSink::new(),
                |mut acc, trial| {
                    acc.merge(&trial);
                    acc
                },
            )
        };

        let serial = run_merged(1);
        assert!(serial.totals().frames_sent > 0, "trials did real work");
        for threads in [2, 8] {
            assert_eq!(run_merged(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn installed_metrics_record_trial_wall_time_and_throughput() {
        // Other tests in this binary share the process-wide registry
        // slot, so install our own, run, and restore promptly. The
        // unique label keeps the assertion independent of what else ran.
        let _guard = GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let registry = Arc::new(Metrics::new());
        install_metrics(Some(Arc::clone(&registry)));
        let baseline = TrialRunner::new(5, 9)
            .threads(3)
            .label("obs-probe")
            .run(|seed| seed.wrapping_mul(3));
        install_metrics(None);
        assert_eq!(baseline.len(), 9);

        let snap = registry.snapshot();
        let labels = vec![("figure".to_string(), "obs-probe".to_string())];
        let trial = snap
            .histograms
            .iter()
            .find(|h| h.name == "runner_trial_seconds" && h.labels == labels)
            .expect("trial histogram registered");
        assert_eq!(trial.count, 9, "one observation per trial");
        let wait = snap
            .histograms
            .iter()
            .find(|h| h.name == "runner_queue_wait_seconds" && h.labels == labels)
            .expect("queue-wait histogram registered");
        assert_eq!(wait.count, 9);
        let trials = snap
            .counters
            .iter()
            .find(|c| c.name == "runner_trials_total" && c.labels == labels)
            .expect("trial counter registered");
        assert_eq!(trials.value, 9);
        let tps = snap
            .gauges
            .iter()
            .find(|g| g.name == "runner_trials_per_sec" && g.labels == labels)
            .expect("throughput gauge registered");
        assert!(tps.value > 0.0, "sweep took nonzero time");

        // With no registry installed the runner records nothing new and
        // figures get no engine instruments. (Kept in this test rather
        // than its own so the process-wide registry slot has a single
        // owner under parallel test execution.)
        assert!(engine_obs().is_none());
        let before = registry.snapshot();
        let _ = TrialRunner::new(5, 4).label("obs-probe").run(|seed| seed);
        let after = registry.snapshot();
        assert_eq!(
            before.counters, after.counters,
            "uninstalled registry sees no new trials"
        );

        install_metrics(Some(Arc::clone(&registry)));
        assert!(engine_obs().is_some(), "instruments bind to the registry");
        install_metrics(None);
    }

    #[test]
    fn per_trial_of_a_zero_trial_report_is_zero_not_a_panic() {
        // Regression: a sweep of zero trials (e.g. a filtered figure)
        // used to divide by zero in the observability summary.
        let report = RunnerReport {
            label: "empty".to_string(),
            trials: 0,
            workers: 4,
            elapsed: Duration::from_millis(17),
        };
        assert_eq!(report.per_trial(), Duration::ZERO);
        // Oversized trial counts saturate instead of overflowing.
        let huge = RunnerReport {
            trials: u64::MAX,
            ..report
        };
        assert!(huge.per_trial() <= Duration::from_millis(17));
    }

    #[test]
    fn zero_trial_sweeps_run_and_report_without_panicking() {
        let _ = take_reports();
        let results = TrialRunner::new(9, 0).label("zero").run(|seed| seed);
        assert!(results.is_empty());
        let report = take_reports()
            .into_iter()
            .find(|r| r.label == "zero")
            .expect("zero-trial sweep still reports");
        assert_eq!(report.trials, 0);
        assert_eq!(report.per_trial(), Duration::ZERO);
    }

    #[test]
    fn heartbeat_fields_are_clamped_to_finite_values() {
        assert_eq!(finite_or_zero(2.5), 2.5);
        assert_eq!(finite_or_zero(0.0), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
    }

    #[test]
    fn reports_record_trials_and_workers() {
        let _ = take_reports();
        let _ = TrialRunner::new(3, 6).threads(2).label("probe").run(|s| s);
        let reports = take_reports();
        let report = reports
            .iter()
            .find(|r| r.label == "probe")
            .expect("report recorded");
        assert_eq!(report.trials, 6);
        assert_eq!(report.workers, 2);
        assert!(report.per_trial() <= report.elapsed);
    }
}
