//! `noc-lint` — an offline static-analysis pass enforcing the
//! simulator's determinism and hot-path invariants.
//!
//! The whole value of this reproduction rests on byte-identical seeded
//! determinism: golden-report digests, the `ReferenceSimulation` oracle,
//! and `--threads`-independent merges all assume no code path ever
//! consults ambient entropy, wall-clock time, or unordered-map iteration
//! order. The tests enforce those invariants *after the fact*; this
//! linter enforces them *statically*, before a nondeterministic
//! construct can ship.
//!
//! The pass is dependency-free (no syn, no proc-macro machinery) and
//! runs in two tiers. The **lexical tier**: a hand-rolled
//! comment/string/raw-string-aware Rust lexer ([`lexer`]) feeds a rule
//! engine ([`rules`]) of per-file token-pattern invariants. The
//! **structural tier**: a token-tree parser ([`parser`]) groups the
//! same stream by matched delimiters, an item model ([`items`])
//! extracts structs/enums/fns/impls/closures from the trees, and
//! cross-file rules ([`structural`]) enforce the checkpoint-coverage,
//! rng-draw-site, and event-coverage contracts over the whole scanned
//! set. Findings in both tiers are suppressible only through the
//! reasoned `// noc-lint: allow(<rule>, reason = "…")` grammar
//! ([`annotations`]), and every allow is accounted for: one that
//! covers nothing becomes a `suppression-debt` finding, and the full
//! inventory ships in the JSON artifact. See DESIGN.md §10 for the
//! lexical rule catalogue and §15 for the structural tier.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p noc-lint            # human-readable findings
//! cargo run -p noc-lint -- --format json
//! ```
//!
//! Exit codes are stable: `0` — no unannotated findings; `1` — at least
//! one unannotated finding; `2` — usage or I/O error.

#![forbid(unsafe_code)]

pub mod annotations;
pub mod driver;
pub mod items;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod structural;

pub use driver::{
    lint_files, lint_root, lint_source, render_json, render_text, Report, Suppression,
};
pub use rules::{Finding, RuleInfo, RULES};
