//! Framing payloads with an appended CRC tag, and verifying them.

use std::error::Error;
use std::fmt;

use crate::{CrcAlgorithm, CrcParams, TableCrc};

/// Encodes payloads as `payload || crc` and verifies/strips the tag on
/// receive — the per-tile check of the stochastic communication protocol.
///
/// # Examples
///
/// ```
/// use noc_crc::{CrcParams, PacketCodec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let codec = PacketCodec::new(CrcParams::CRC16_CCITT);
/// let framed = codec.encode(b"hello tile 12");
/// let payload = codec.decode(&framed)?;
/// assert_eq!(payload, b"hello tile 12");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PacketCodec {
    crc: TableCrc,
}

/// Error returned by [`PacketCodec::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame is shorter than the CRC tag itself.
    TooShort {
        /// Observed frame length in bytes.
        len: usize,
        /// Minimum length (the tag size) in bytes.
        min: usize,
    },
    /// The recomputed CRC did not match the received tag: the packet was
    /// scrambled in flight and must be discarded.
    CrcMismatch {
        /// CRC recomputed over the received payload.
        computed: u64,
        /// CRC tag carried by the frame.
        received: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort { len, min } => {
                write!(f, "frame of {len} bytes shorter than {min}-byte crc tag")
            }
            DecodeError::CrcMismatch { computed, received } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#x}, received {received:#x}"
                )
            }
        }
    }
}

impl Error for DecodeError {}

impl PacketCodec {
    /// Creates a codec using the given CRC parameter set.
    pub fn new(params: CrcParams) -> Self {
        Self {
            crc: TableCrc::new(params),
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &CrcParams {
        self.crc.params()
    }

    /// Number of overhead bytes appended to each payload.
    pub fn overhead_bytes(&self) -> usize {
        self.crc.params().tag_bytes()
    }

    /// Frames `payload`, returning `payload || crc_tag` (big-endian tag).
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + self.overhead_bytes());
        self.encode_into(payload, &mut out);
        out
    }

    /// Appends `payload || crc_tag` to `out` without allocating, so a
    /// caller encoding many packets can reuse one scratch buffer.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(payload);
        self.append_tag(out, start);
    }

    /// Computes the CRC over `frame[body_start..]` and appends the
    /// big-endian tag in place. The body must already be in `frame`; this
    /// is the in-place half of [`PacketCodec::encode`] for callers that
    /// build the packet body directly in a reusable buffer.
    pub fn append_tag(&self, frame: &mut Vec<u8>, body_start: usize) {
        let tag = self.crc.checksum(&frame[body_start..]);
        let n = self.overhead_bytes();
        frame.extend_from_slice(&tag.to_be_bytes()[8 - n..]);
    }

    /// Checks whether `frame` carries a consistent CRC tag.
    pub fn verify(&self, frame: &[u8]) -> bool {
        self.decode(frame).is_ok()
    }

    /// Verifies `frame` and returns the payload with the tag stripped.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TooShort`] if the frame cannot even hold the tag;
    /// [`DecodeError::CrcMismatch`] if the recomputed CRC differs from the
    /// carried tag (the packet experienced a data upset).
    pub fn decode<'a>(&self, frame: &'a [u8]) -> Result<&'a [u8], DecodeError> {
        let n = self.overhead_bytes();
        if frame.len() < n {
            return Err(DecodeError::TooShort {
                len: frame.len(),
                min: n,
            });
        }
        let (payload, tag_bytes) = frame.split_at(frame.len() - n);
        let mut tag = 0u64;
        for &b in tag_bytes {
            tag = tag << 8 | b as u64;
        }
        let computed = self.crc.checksum(payload);
        if computed != tag {
            return Err(DecodeError::CrcMismatch {
                computed,
                received: tag,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn too_short_frames_are_rejected() {
        let codec = PacketCodec::new(CrcParams::CRC32);
        assert_eq!(
            codec.decode(&[0xAB]),
            Err(DecodeError::TooShort { len: 1, min: 4 })
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let codec = PacketCodec::new(CrcParams::CRC16_CCITT);
        let framed = codec.encode(&[]);
        assert_eq!(framed.len(), 2);
        assert_eq!(codec.decode(&framed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let codec = PacketCodec::new(CrcParams::CRC16_CCITT);
        let mut scratch = Vec::new();
        for payload in [&b"alpha"[..], &b""[..], &b"a longer payload body"[..]] {
            scratch.clear();
            codec.encode_into(payload, &mut scratch);
            assert_eq!(scratch, codec.encode(payload));
        }
    }

    #[test]
    fn append_tag_respects_body_start() {
        let codec = PacketCodec::new(CrcParams::CRC32);
        let mut frame = b"prefix".to_vec();
        let start = frame.len();
        frame.extend_from_slice(b"body bytes");
        codec.append_tag(&mut frame, start);
        assert_eq!(codec.decode(&frame[start..]).unwrap(), b"body bytes");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DecodeError::CrcMismatch {
            computed: 0xAB,
            received: 0xCD,
        };
        let s = e.to_string();
        assert!(s.contains("0xab") && s.contains("0xcd"));
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
            for &params in CrcParams::ALL {
                let codec = PacketCodec::new(params);
                let framed = codec.encode(&payload);
                prop_assert_eq!(codec.decode(&framed).unwrap(), payload.as_slice());
            }
        }

        #[test]
        fn any_single_bit_flip_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in 0usize..512,
        ) {
            let codec = PacketCodec::new(CrcParams::CRC16_CCITT);
            let mut framed = codec.encode(&payload);
            let nbits = framed.len() * 8;
            let bit = flip_bit % nbits;
            framed[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(!codec.verify(&framed));
        }
    }
}
