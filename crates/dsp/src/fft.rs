//! Radix-2 Cooley–Tukey FFT, 1-D and 2-D.
//!
//! The divide-and-conquer scheme of §4.1.2 (Equation 5): the DFT of `N`
//! samples splits into the DFTs of the even- and odd-indexed halves,
//! reducing `O(N²)` work to `O(N log N)`. The iterative in-place
//! bit-reversal formulation below is algebraically identical to the
//! recursive tree the paper maps onto the NoC.

use crate::complex::Complex64;

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two (radix-2 requirement) or is
/// zero.
///
/// # Examples
///
/// ```
/// use noc_dsp::{fft, Complex64};
///
/// // The FFT of a constant signal is an impulse at DC:
/// let mut data = vec![Complex64::ONE; 8];
/// fft(&mut data);
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.abs() < 1e-12));
/// ```
pub fn fft(data: &mut [Complex64]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (normalized by `1/N`, so `ifft(fft(x)) == x`).
///
/// # Panics
///
/// Panics if the length is not a power of two or is zero.
pub fn ifft(data: &mut [Complex64]) {
    fft_dir(data, true);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

fn fft_dir(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(n > 0, "fft of an empty buffer");
    assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let theta = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex64::from_polar(1.0, theta);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for k in 0..half {
                let even = chunk[k];
                let odd = chunk[k + half] * w;
                chunk[k] = even + odd;
                chunk[k + half] = even - odd;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// Textbook `O(N²)` DFT, used as the FFT's test oracle.
pub fn dft_naive(data: &[Complex64]) -> Vec<Complex64> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::from_polar(1.0, theta);
            }
            acc
        })
        .collect()
}

/// In-place 2-D FFT of a row-major `rows × cols` matrix: the FFT2
/// workload of §4.1.2 (Equation 5 applied to both dimensions).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or either dimension is not a
/// power of two.
pub fn fft2d(data: &mut [Complex64], rows: usize, cols: usize) {
    fft2d_dir(data, rows, cols, false);
}

/// In-place inverse 2-D FFT (normalized, so `ifft2d(fft2d(x)) == x`).
///
/// # Panics
///
/// Panics under the same conditions as [`fft2d`].
pub fn ifft2d(data: &mut [Complex64], rows: usize, cols: usize) {
    fft2d_dir(data, rows, cols, true);
}

fn fft2d_dir(data: &mut [Complex64], rows: usize, cols: usize, inverse: bool) {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    let transform: fn(&mut [Complex64]) = if inverse { ifft } else { fft };
    // Rows in place.
    for r in 0..rows {
        transform(&mut data[r * cols..(r + 1) * cols]);
    }
    // Columns via gather/scatter.
    let mut column = vec![Complex64::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            column[r] = data[r * cols + c];
        }
        transform(&mut column);
        for r in 0..rows {
            data[r * cols + c] = column[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 16];
        data[0] = Complex64::ONE;
        fft(&mut data);
        assert!(data.iter().all(|z| close(*z, Complex64::ONE, 1e-12)));
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut data: Vec<Complex64> = (0..n)
            .map(|j| {
                Complex64::from_polar(1.0, 2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64)
            })
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == k0 {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let data: Vec<Complex64> = (0..32)
            .map(|j| Complex64::new((j as f64 * 0.37).sin(), (j as f64 * 0.11).cos()))
            .collect();
        let oracle = dft_naive(&data);
        let mut fast = data;
        fft(&mut fast);
        for (a, b) in fast.iter().zip(&oracle) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let data: Vec<Complex64> = (0..128)
            .map(|j| Complex64::new((j as f64).sin(), (j as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = data;
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = vec![Complex64::new(3.0, -1.0)];
        fft(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
        ifft(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex64::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fft_panics() {
        fft(&mut []);
    }

    #[test]
    fn fft2d_separable_tone() {
        // A 2-D complex exponential concentrates into a single 2-D bin.
        let (rows, cols) = (8, 16);
        let (k0, l0) = (3, 5);
        let mut data: Vec<Complex64> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let phase = 2.0
                    * std::f64::consts::PI
                    * ((k0 * r) as f64 / rows as f64 + (l0 * c) as f64 / cols as f64);
                Complex64::from_polar(1.0, phase)
            })
            .collect();
        fft2d(&mut data, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let z = data[r * cols + c];
                if (r, c) == (k0, l0) {
                    assert!((z.abs() - (rows * cols) as f64).abs() < 1e-8);
                } else {
                    assert!(z.abs() < 1e-8, "leakage at ({r},{c})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn fft2d_shape_checked() {
        let mut data = vec![Complex64::ZERO; 10];
        fft2d(&mut data, 4, 4);
    }

    proptest! {
        #[test]
        fn ifft_inverts_fft(
            values in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..6)
        ) {
            // Round the length up to a power of two by padding with zeros.
            let n = values.len().next_power_of_two().max(2);
            let mut data: Vec<Complex64> = values
                .iter()
                .map(|&(re, im)| Complex64::new(re, im))
                .chain(std::iter::repeat(Complex64::ZERO))
                .take(n)
                .collect();
            let original = data.clone();
            fft(&mut data);
            ifft(&mut data);
            for (a, b) in data.iter().zip(&original) {
                prop_assert!((*a - *b).abs() < 1e-9);
            }
        }

        #[test]
        fn fft_is_linear(
            re_a in -10.0f64..10.0,
            re_b in -10.0f64..10.0,
        ) {
            let x: Vec<Complex64> = (0..16).map(|j| Complex64::from_re((j as f64 * 0.3).sin())).collect();
            let y: Vec<Complex64> = (0..16).map(|j| Complex64::from_re((j as f64 * 0.7).cos())).collect();
            let combo: Vec<Complex64> = x.iter().zip(&y)
                .map(|(&a, &b)| a.scale(re_a) + b.scale(re_b))
                .collect();
            let mut fx = x; fft(&mut fx);
            let mut fy = y; fft(&mut fy);
            let mut fc = combo; fft(&mut fc);
            for k in 0..16 {
                let expect = fx[k].scale(re_a) + fy[k].scale(re_b);
                prop_assert!((fc[k] - expect).abs() < 1e-8);
            }
        }

        #[test]
        fn ifft2d_inverts_fft2d(seed in 0u64..1000) {
            let (rows, cols) = (4, 8);
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let data: Vec<Complex64> = (0..rows * cols)
                .map(|_| Complex64::new(next(), next()))
                .collect();
            let mut work = data.clone();
            fft2d(&mut work, rows, cols);
            ifft2d(&mut work, rows, cols);
            for (a, b) in work.iter().zip(&data) {
                prop_assert!((*a - *b).abs() < 1e-9);
            }
        }
    }
}
