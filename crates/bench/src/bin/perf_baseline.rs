//! Step-throughput baseline for the zero-copy hot path.
//!
//! Times representative gossip workloads (4×4/8×8/16×16 grids, flooding
//! and p = 0.5, faulty and fault-free) on both engines:
//!
//! * **before** — [`stochastic_noc::reference::ReferenceSimulation`], the
//!   retained naive implementation (per-round allocations, one encode per
//!   tile, byte-cloned fan-out);
//! * **after** — the optimized [`stochastic_noc::Simulation`] (shared
//!   `Arc` frames, per-round CRC memo, persistent arenas).
//!
//! Both engines are seed-for-seed byte-identical (see the golden-report
//! and engine-equivalence tests), so the comparison is pure speed. The
//! results are written as JSON (hand-rolled — the vendored serde is a
//! no-op shim) to `BENCH_PR2.json`, establishing the repo's perf
//! trajectory; see EXPERIMENTS.md for methodology.
//!
//! Since the event-tracing layer landed, the optimized engine routes
//! every decision point through an [`stochastic_noc::EventSink`]. A
//! second measurement section times the 8×8 workloads with the default
//! build, an explicit `NullSink`, a `CounterSink` (preallocated dense
//! tables, via `CounterSink::with_capacity`), and an installed
//! `EngineObs` (the wall-clock observability plane behind
//! `--metrics-out`). The observability plane is gated at ≤ 5%
//! (`CounterSink` stays informational); the NullSink column compares
//! `build()` against itself — `build()` *is* `build_with_sink(NullSink)`
//! — so it serves as a same-code noise canary that disarms the
//! percentage gates on hosts too noisy to resolve them.
//!
//! Since the sharded round engine landed, a third section times
//! mega-grid flooding (64×64, plus 128×128 at `--scale full`) at
//! `--shards 1` vs `--shards 8` and a frontier "linger" workload whose
//! late rounds are quiescent, writing the results to `BENCH_PR7.json`.
//! The ≥3× shard speedup gate only arms when the host exposes at least
//! 8 cores; the frontier gate (quiescent rounds ≥ 5× cheaper than dense
//! rounds) is unconditional.
//!
//! Usage: `cargo run --release -p noc-bench --bin perf_baseline --
//! [--scale quick|full] [--out PATH] [--out-pr7 PATH]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use noc_obs::Stopwatch;

use noc_faults::{CrashSchedule, ErrorModel, FaultModel};
use stochastic_noc::reference::ReferenceSimulation;
use stochastic_noc::{CounterSink, EventSink, NullSink, SimulationBuilder, StochasticConfig};

use noc_fabric::{IpContext, IpCore, NodeId, Topology};

/// One benchmark workload: a topology/config/fault-model point.
struct Workload {
    name: &'static str,
    side: usize,
    config: StochasticConfig,
    faulty: bool,
    injections: usize,
}

/// Measured numbers for one engine on one workload.
struct Measurement {
    rounds: u64,
    packets: u64,
    seconds: f64,
    steps_per_sec: f64,
}

const SEED: u64 = 2003;

fn fault_model(faulty: bool) -> FaultModel {
    if faulty {
        FaultModel::builder()
            .p_upset(0.1)
            .p_overflow(0.05)
            .sigma_synch(0.2)
            .error_model(ErrorModel::RandomErrorVector)
            .build()
            .expect("valid fault model")
    } else {
        FaultModel::none()
    }
}

fn workloads() -> Vec<Workload> {
    let flooding = |ttl: u8| StochasticConfig::flooding(ttl).with_max_rounds(60);
    let gossip = |ttl: u8| {
        let mut c = StochasticConfig::flooding(ttl).with_max_rounds(60);
        c.forward_probability = 0.5;
        c
    };
    vec![
        Workload {
            name: "grid4_flooding_fault_free",
            side: 4,
            config: flooding(12),
            faulty: false,
            injections: 2,
        },
        Workload {
            name: "grid4_gossip_faulty",
            side: 4,
            config: gossip(16),
            faulty: true,
            injections: 2,
        },
        Workload {
            name: "grid8_flooding_fault_free",
            side: 8,
            config: flooding(20),
            faulty: false,
            injections: 3,
        },
        Workload {
            name: "grid8_flooding_faulty",
            side: 8,
            config: flooding(20),
            faulty: true,
            injections: 3,
        },
        Workload {
            name: "grid8_gossip_faulty",
            side: 8,
            config: gossip(24),
            faulty: true,
            injections: 3,
        },
        Workload {
            name: "grid16_flooding_fault_free",
            side: 16,
            config: flooding(28),
            faulty: false,
            injections: 4,
        },
        Workload {
            name: "grid16_gossip_faulty",
            side: 16,
            config: gossip(32),
            faulty: true,
            injections: 4,
        },
    ]
}

/// Deterministic corner-ish source/destination pairs for `k` injections.
fn pairs(side: usize, k: usize) -> Vec<(NodeId, NodeId)> {
    let n = side * side;
    (0..k)
        .map(|i| (NodeId((i * 7) % n), NodeId(n - 1 - (i * 3) % n)))
        .collect()
}

fn run_reference(w: &Workload, reps: usize) -> Measurement {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Stopwatch::start();
    for rep in 0..reps {
        let mut sim = ReferenceSimulation::new(
            Topology::grid(w.side, w.side),
            w.config,
            fault_model(w.faulty),
            CrashSchedule::new(),
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            SEED + rep as u64,
        );
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    let seconds = start.elapsed_secs();
    Measurement {
        rounds,
        packets,
        seconds,
        steps_per_sec: rounds as f64 / seconds.max(1e-9),
    }
}

fn run_optimized(w: &Workload, reps: usize) -> Measurement {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Stopwatch::start();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build();
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    let seconds = start.elapsed_secs();
    Measurement {
        rounds,
        packets,
        seconds,
        steps_per_sec: rounds as f64 / seconds.max(1e-9),
    }
}

/// One timed batch of `reps` full runs of a workload built with `sink`.
///
/// Returns `(seconds, rounds, packets)`; the totals double as a
/// determinism check across sink variants — sinks observe, they never
/// steer the schedule.
fn sink_batch<S: EventSink, F: Fn() -> S>(w: &Workload, reps: usize, sink: F) -> (f64, u64, u64) {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Stopwatch::start();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build_with_sink(sink());
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    (start.elapsed_secs(), rounds, packets)
}

/// Like [`sink_batch`] but through the default `build()` path.
fn default_batch(w: &Workload, reps: usize) -> (f64, u64, u64) {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Stopwatch::start();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build();
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    (start.elapsed_secs(), rounds, packets)
}

/// Like [`default_batch`] but with an [`stochastic_noc::EngineObs`]
/// installed, timing the wall-clock observability plane's overhead
/// (span stopwatches around every engine phase plus histogram records).
fn obs_batch(w: &Workload, reps: usize, obs: &stochastic_noc::EngineObs) -> (f64, u64, u64) {
    let mut rounds = 0u64;
    let mut packets = 0u64;
    let start = Stopwatch::start();
    for rep in 0..reps {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(w.config)
            .fault_model(fault_model(w.faulty))
            // noc-lint: allow(ambient-rng, reason = "bench seeds are frozen workload ids: rederiving them changes the timed workload and breaks the BENCH_PR2.json perf trajectory; stream independence is irrelevant to timing")
            .seed(SEED + rep as u64)
            .build_with_obs(obs.clone());
        for (s, d) in pairs(w.side, w.injections) {
            sim.inject(s, d, vec![0xA5; 16]);
        }
        let report = sim.run_to_report();
        rounds += report.rounds_executed;
        packets += report.packets_sent;
    }
    (start.elapsed_secs(), rounds, packets)
}

/// Best-of interleaved timings for one workload across sink variants
/// and the wall-clock observability plane.
struct SinkOverhead {
    default_secs: f64,
    null_secs: f64,
    counter_secs: f64,
    obs_secs: f64,
}

impl SinkOverhead {
    /// NullSink overhead over the default build, as a fraction (0.02 = 2%).
    fn null_overhead(&self) -> f64 {
        self.null_secs / self.default_secs.max(1e-12) - 1.0
    }

    /// CounterSink overhead over the default build (informational).
    fn counter_overhead(&self) -> f64 {
        self.counter_secs / self.default_secs.max(1e-12) - 1.0
    }

    /// Observability-plane overhead over the default build, gated at 5%.
    fn obs_overhead(&self) -> f64 {
        self.obs_secs / self.default_secs.max(1e-12) - 1.0
    }
}

/// Interleaves `samples` batches of each variant and keeps the best
/// (minimum) time per variant, so slow outliers (scheduler noise,
/// frequency ramps) hit every variant equally and drop out of the
/// comparison.
fn measure_sink_overhead(w: &Workload, reps: usize, samples: usize) -> SinkOverhead {
    // Warm-up + reference totals.
    let baseline = default_batch(w, reps);
    // One registry for the whole measurement: registration happens here,
    // so the timed batches pay only the per-span record cost — the shape
    // `--metrics-out` users see after the first trial.
    let metrics = noc_obs::Metrics::new();
    let obs = stochastic_noc::EngineObs::new(&metrics);
    let topo = Topology::grid(w.side, w.side);
    let (nodes, links) = (topo.node_count(), topo.link_count());
    let mut best = SinkOverhead {
        default_secs: f64::INFINITY,
        null_secs: f64::INFINITY,
        counter_secs: f64::INFINITY,
        obs_secs: f64::INFINITY,
    };
    for _ in 0..samples {
        let (t, r, p) = default_batch(w, reps);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: default drifted",
            w.name
        );
        best.default_secs = best.default_secs.min(t);
        let (t, r, p) = sink_batch(w, reps, || NullSink);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: NullSink perturbed",
            w.name
        );
        best.null_secs = best.null_secs.min(t);
        let (t, r, p) = sink_batch(w, reps, || CounterSink::with_capacity(nodes, links));
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: CounterSink perturbed",
            w.name
        );
        best.counter_secs = best.counter_secs.min(t);
        let (t, r, p) = obs_batch(w, reps, &obs);
        assert_eq!(
            (r, p),
            (baseline.1, baseline.2),
            "{}: EngineObs perturbed",
            w.name
        );
        best.obs_secs = best.obs_secs.min(t);
    }
    best
}

/// One mega-grid shard-scaling workload (the PR7 section).
struct MegaWorkload {
    name: &'static str,
    side: usize,
    faulty: bool,
    messages: usize,
}

fn mega_workloads(reps: usize) -> Vec<MegaWorkload> {
    let mut all = vec![
        MegaWorkload {
            name: "mega64_flooding_fault_free",
            side: 64,
            faulty: false,
            messages: 8,
        },
        MegaWorkload {
            name: "mega64_flooding_faulty",
            side: 64,
            faulty: true,
            messages: 8,
        },
    ];
    if reps >= 25 {
        all.push(MegaWorkload {
            name: "mega128_flooding_fault_free",
            side: 128,
            faulty: false,
            messages: 8,
        });
        all.push(MegaWorkload {
            name: "mega128_flooding_faulty",
            side: 128,
            faulty: true,
            messages: 8,
        });
    }
    all
}

/// Times the best of `samples` single trials of a mega-grid workload at
/// the given shard count; returns `(seconds, rounds, packets)`.
fn time_mega(w: &MegaWorkload, shards: usize, samples: usize) -> (f64, u64, u64) {
    let n = w.side * w.side;
    let mut best = f64::INFINITY;
    let mut totals = (0u64, 0u64);
    for _ in 0..samples {
        let mut sim = SimulationBuilder::new(Topology::grid(w.side, w.side))
            .config(StochasticConfig::flooding(40).with_max_rounds(60))
            .fault_model(fault_model(w.faulty))
            .shards(shards)
            .seed(SEED)
            .build();
        for i in 0..w.messages {
            let src = (i * n) / w.messages;
            sim.inject(NodeId(src), NodeId(n - 1 - src), vec![0xA5; 16]);
        }
        let start = Stopwatch::start();
        let report = sim.run_to_report();
        best = best.min(start.elapsed_secs());
        totals = (report.rounds_executed, report.packets_sent);
    }
    (best, totals.0, totals.1)
}

/// Keeps a trial alive (not done) for a fixed number of rounds without
/// injecting anything — the late-round workload whose tail is entirely
/// quiescent, exercising the active-frontier fast path.
struct LingerIp {
    rounds_left: u64,
}

impl IpCore for LingerIp {
    fn on_round(&mut self, _ctx: &mut IpContext) {
        self.rounds_left = self.rounds_left.saturating_sub(1);
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }

    fn name(&self) -> &str {
        "linger"
    }
}

/// Times the linger workload: one short 64×64 flood followed by ~1500
/// rounds of quiescence. Returns `(seconds, rounds, quiescent_rounds)`.
fn time_linger(samples: usize) -> (f64, u64, u64) {
    const LINGER_ROUNDS: u64 = 1_500;
    let mut best = f64::INFINITY;
    let mut totals = (0u64, 0u64);
    for _ in 0..samples {
        let mut sim = SimulationBuilder::new(Topology::grid(64, 64))
            .config(StochasticConfig::flooding(20).with_max_rounds(LINGER_ROUNDS))
            .with_ip(
                NodeId(0),
                Box::new(LingerIp {
                    rounds_left: LINGER_ROUNDS,
                }),
            )
            .seed(SEED)
            .build();
        sim.inject(NodeId(1), NodeId(64 * 64 - 1), vec![0xA5; 16]);
        let start = Stopwatch::start();
        let report = sim.run_to_report();
        best = best.min(start.elapsed_secs());
        totals = (report.rounds_executed, report.quiescent_rounds);
    }
    (best, totals.0, totals.1)
}

fn main() {
    let mut scale = "full".to_string();
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut out_pr7_path = "BENCH_PR7.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().expect("--scale needs quick|full"),
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--out-pr7" => out_pr7_path = args.next().expect("--out-pr7 needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_baseline [--scale quick|full] [--out PATH] [--out-pr7 PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let reps = match scale.as_str() {
        "quick" => 3,
        "full" => 25,
        other => {
            eprintln!("unknown scale `{other}` (expected quick|full)");
            std::process::exit(2);
        }
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_baseline\",");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"reps_per_workload\": {reps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"before_engine\": \"ReferenceSimulation (naive pre-optimization data flow)\","
    );
    let _ = writeln!(
        json,
        "  \"after_engine\": \"Simulation (Arc frames + CRC memo + reusable arenas)\","
    );
    json.push_str("  \"workloads\": [\n");

    let all = workloads();
    let mut failures = Vec::new();
    for (i, w) in all.iter().enumerate() {
        // Warm-up once so neither engine pays first-touch costs.
        run_optimized(w, 1);
        run_reference(w, 1);
        let before = run_reference(w, reps);
        let after = run_optimized(w, reps);
        assert_eq!(
            (before.rounds, before.packets),
            (after.rounds, after.packets),
            "{}: engines diverged — determinism contract broken",
            w.name
        );
        let speedup = after.steps_per_sec / before.steps_per_sec.max(1e-9);
        eprintln!(
            "{:<28} before {:>9.0} steps/s   after {:>9.0} steps/s   speedup {:>5.2}x",
            w.name, before.steps_per_sec, after.steps_per_sec, speedup
        );
        let gate = w.name == "grid8_flooding_faulty" || w.name == "grid8_flooding_fault_free";
        if gate && speedup < 2.0 {
            failures.push(format!("{} speedup {speedup:.2}x < 2x", w.name));
        }
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"grid\": \"{0}x{0}\",", w.side);
        let _ = writeln!(
            json,
            "      \"forward_probability\": {},",
            w.config.forward_probability
        );
        let _ = writeln!(json, "      \"ttl\": {},", w.config.default_ttl);
        let _ = writeln!(json, "      \"faulty\": {},", w.faulty);
        let _ = writeln!(json, "      \"rounds_total\": {},", after.rounds);
        let _ = writeln!(json, "      \"packets_total\": {},", after.packets);
        let _ = writeln!(
            json,
            "      \"before_steps_per_sec\": {:.1},",
            before.steps_per_sec
        );
        let _ = writeln!(
            json,
            "      \"after_steps_per_sec\": {:.1},",
            after.steps_per_sec
        );
        let _ = writeln!(json, "      \"before_seconds\": {:.6},", before.seconds);
        let _ = writeln!(json, "      \"after_seconds\": {:.6},", after.seconds);
        let _ = writeln!(json, "      \"speedup\": {speedup:.3}");
        json.push_str(if i + 1 == all.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");

    // Event-sink overhead on the 8x8 matrix: the default build, an
    // explicit NullSink, a CounterSink and an EngineObs-instrumented
    // build must execute the identical schedule; the observability
    // plane is gated at <= 5%, with the same-code NullSink column as
    // the noise canary that arms the gate. Quick-scale batches (reps=3)
    // are milliseconds long, so take the min over more interleaved
    // samples instead of longer batches — that converges both variants'
    // minima without stretching CI wall-clock.
    let samples = if reps >= 25 { 7 } else { 15 };
    let overhead_reps = reps;
    json.push_str("  \"sink_overhead\": [\n");
    let grid8: Vec<&Workload> = all.iter().filter(|w| w.side == 8).collect();
    for (i, w) in grid8.iter().enumerate() {
        let m = measure_sink_overhead(w, overhead_reps, samples);
        let null_pct = 100.0 * m.null_overhead();
        let counter_pct = 100.0 * m.counter_overhead();
        let obs_pct = 100.0 * m.obs_overhead();
        // `build()` IS `build_with_sink(NullSink)`, so the null column
        // compares identical code against itself: it is a noise canary.
        // When the same-code spread exceeds the 2% gate, this host
        // cannot resolve single-digit overheads and the gates disarm —
        // the full-scale run on a quiet machine is the one of record.
        let gates_armed = m.null_overhead().abs() <= 0.02;
        eprintln!(
            "{:<28} NullSink overhead {:>+6.2}%   CounterSink overhead {:>+6.2}%   EngineObs overhead {:>+6.2}%   (best of {samples}{})",
            w.name,
            null_pct,
            counter_pct,
            obs_pct,
            if gates_armed {
                ""
            } else {
                "; gates disarmed: noisy host"
            }
        );
        if gates_armed && m.obs_overhead() > 0.05 {
            failures.push(format!("{}: EngineObs overhead {obs_pct:.2}% > 5%", w.name));
        }
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"runs_per_sample\": {overhead_reps},");
        let _ = writeln!(json, "      \"best_of_samples\": {samples},");
        let _ = writeln!(json, "      \"default_seconds\": {:.6},", m.default_secs);
        let _ = writeln!(json, "      \"null_sink_seconds\": {:.6},", m.null_secs);
        let _ = writeln!(
            json,
            "      \"counter_sink_seconds\": {:.6},",
            m.counter_secs
        );
        let _ = writeln!(json, "      \"obs_seconds\": {:.6},", m.obs_secs);
        let _ = writeln!(json, "      \"null_overhead_pct\": {null_pct:.3},");
        let _ = writeln!(json, "      \"counter_overhead_pct\": {counter_pct:.3},");
        let _ = writeln!(json, "      \"obs_overhead_pct\": {obs_pct:.3},");
        let _ = writeln!(json, "      \"gates_armed\": {gates_armed}");
        json.push_str(if i + 1 == grid8.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    // ---- PR7: mega-grid shard scaling + frontier win -------------------
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The shard gate measures parallel scaling, which a <8-core host
    // cannot express; the frontier gate is machine-independent.
    let shard_gate_armed = cores >= 8;
    let mega_samples = if reps >= 25 { 3 } else { 2 };

    let mut pr7 = String::new();
    pr7.push_str("{\n");
    let _ = writeln!(pr7, "  \"bench\": \"shard_scaling\",");
    let _ = writeln!(pr7, "  \"pr\": 7,");
    let _ = writeln!(pr7, "  \"scale\": \"{scale}\",");
    let _ = writeln!(pr7, "  \"seed\": {SEED},");
    let _ = writeln!(pr7, "  \"host_cores\": {cores},");
    let _ = writeln!(pr7, "  \"speedup_gate_armed\": {shard_gate_armed},");
    let _ = writeln!(pr7, "  \"speedup_gate_min\": 3.0,");
    pr7.push_str("  \"workloads\": [\n");

    let megas = mega_workloads(reps);
    let mut dense_rounds_per_sec = 0.0f64;
    for (i, w) in megas.iter().enumerate() {
        time_mega(w, 1, 1); // warm-up
        let (t1, rounds1, packets1) = time_mega(w, 1, mega_samples);
        let (t8, rounds8, packets8) = time_mega(w, 8, mega_samples);
        assert_eq!(
            (rounds1, packets1),
            (rounds8, packets8),
            "{}: shard counts diverged — determinism contract broken",
            w.name
        );
        let speedup = t1 / t8.max(1e-12);
        eprintln!(
            "{:<28} shards=1 {:>8.3}s   shards=8 {:>8.3}s   speedup {:>5.2}x{}",
            w.name,
            t1,
            t8,
            speedup,
            if shard_gate_armed {
                ""
            } else {
                "   (gate disarmed: <8 cores)"
            }
        );
        // The fault-free rows run the uniform-forward fast path the
        // scaling claim is about; faulty rows pay a serial draw-tape
        // pre-pass and are reported without a gate.
        if shard_gate_armed && !w.faulty && speedup < 3.0 {
            failures.push(format!("{}: shard speedup {speedup:.2}x < 3x", w.name));
        }
        if w.name == "mega64_flooding_fault_free" {
            dense_rounds_per_sec = rounds1 as f64 / t1.max(1e-12);
        }
        pr7.push_str("    {\n");
        let _ = writeln!(pr7, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(pr7, "      \"grid\": \"{0}x{0}\",", w.side);
        let _ = writeln!(pr7, "      \"faulty\": {},", w.faulty);
        let _ = writeln!(pr7, "      \"messages\": {},", w.messages);
        let _ = writeln!(pr7, "      \"rounds_total\": {rounds1},");
        let _ = writeln!(pr7, "      \"packets_total\": {packets1},");
        let _ = writeln!(pr7, "      \"shards1_seconds\": {t1:.6},");
        let _ = writeln!(pr7, "      \"shards8_seconds\": {t8:.6},");
        let _ = writeln!(pr7, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(pr7, "      \"gated\": {}", shard_gate_armed && !w.faulty);
        pr7.push_str(if i + 1 == megas.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    pr7.push_str("  ],\n");

    // Frontier win: a run whose tail is ~1480 quiescent rounds must
    // execute rounds far faster than the dense flood — O(active), not
    // O(n), per round.
    let (linger_secs, linger_rounds, quiescent) = time_linger(mega_samples);
    let linger_rounds_per_sec = linger_rounds as f64 / linger_secs.max(1e-12);
    let win_ratio = linger_rounds_per_sec / dense_rounds_per_sec.max(1e-12);
    eprintln!(
        "frontier linger: {linger_rounds} rounds ({quiescent} quiescent) at {linger_rounds_per_sec:.0} rounds/s vs dense {dense_rounds_per_sec:.0} rounds/s — {win_ratio:.1}x"
    );
    assert!(
        quiescent > linger_rounds / 2,
        "linger workload is not quiescence-dominated ({quiescent}/{linger_rounds})"
    );
    if win_ratio < 5.0 {
        failures.push(format!(
            "frontier win {win_ratio:.2}x < 5x (quiescent rounds are not O(active))"
        ));
    }
    pr7.push_str("  \"frontier\": {\n");
    let _ = writeln!(pr7, "    \"linger_rounds\": {linger_rounds},");
    let _ = writeln!(pr7, "    \"quiescent_rounds\": {quiescent},");
    let _ = writeln!(pr7, "    \"linger_seconds\": {linger_secs:.6},");
    let _ = writeln!(
        pr7,
        "    \"linger_rounds_per_sec\": {linger_rounds_per_sec:.1},"
    );
    let _ = writeln!(
        pr7,
        "    \"dense_rounds_per_sec\": {dense_rounds_per_sec:.1},"
    );
    let _ = writeln!(pr7, "    \"win_ratio\": {win_ratio:.3},");
    let _ = writeln!(pr7, "    \"gate_min_ratio\": 5.0");
    pr7.push_str("  }\n}\n");
    std::fs::write(&out_pr7_path, &pr7).expect("write shard benchmark json");
    eprintln!("wrote {out_pr7_path}");

    if !failures.is_empty() {
        eprintln!("PERF REGRESSION: {}", failures.join("; "));
        std::process::exit(1);
    }
}
