//! Property test: the zero-copy engine is observably identical to the
//! naive reference implementation.
//!
//! [`stochastic_noc::reference::ReferenceSimulation`] preserves the
//! pre-optimization data flow (per-round allocations, full decode, one
//! encode per tile, byte-cloned fan-out). The optimized engine replaces
//! all of that with shared `Arc` frames, a per-round encode memo, and
//! persistent arenas — none of which may change a single observable:
//! every counter, the delivered set, and every latency must match across
//! random topologies, fault models, crash schedules, and seeds.

use noc_fabric::{NodeId, Topology};
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, ErrorModel, FaultModel, OverflowMode,
};
use proptest::prelude::*;
use stochastic_noc::reference::ReferenceSimulation;
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

/// Everything observable about a finished run, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    rounds_executed: u64,
    completed: bool,
    packets_sent: u64,
    bits_sent: u64,
    upsets_detected: u64,
    upsets_undetected: u64,
    overflow_drops: u64,
    crash_drops: u64,
    clock_slips: u64,
    ttl_expirations: u64,
    partition_drops: u64,
    byzantine_forges: u64,
    byzantine_replays: u64,
    adversarial_delays: u64,
    adversarial_reorders: u64,
    /// `(id, source, destination, injected, delivered)` sorted by id.
    records: Vec<(u64, usize, usize, u64, Option<u64>)>,
}

fn observe(report: &SimulationReport) -> Observables {
    let mut records: Vec<_> = report
        .records()
        .map(|r| {
            (
                r.id.0,
                r.source.index(),
                r.destination.index(),
                r.injected_round,
                r.delivered_round,
            )
        })
        .collect();
    records.sort_unstable();
    Observables {
        rounds_executed: report.rounds_executed,
        completed: report.completed,
        packets_sent: report.packets_sent,
        bits_sent: report.bits_sent.bits(),
        upsets_detected: report.upsets_detected,
        upsets_undetected: report.upsets_undetected,
        overflow_drops: report.overflow_drops,
        crash_drops: report.crash_drops,
        clock_slips: report.clock_slips,
        ttl_expirations: report.ttl_expirations,
        partition_drops: report.partition_drops,
        byzantine_forges: report.byzantine_forges,
        byzantine_replays: report.byzantine_replays,
        adversarial_delays: report.adversarial_delays,
        adversarial_reorders: report.adversarial_reorders,
        records,
    }
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..6, 2usize..6).prop_map(|(w, h)| Topology::grid(w, h)),
        (3usize..6, 3usize..6).prop_map(|(w, h)| Topology::torus(w, h)),
        (4usize..12).prop_map(Topology::fully_connected),
    ]
}

fn error_model_strategy() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        Just(ErrorModel::RandomErrorVector),
        Just(ErrorModel::RandomBitError),
    ]
}

fn overflow_mode_strategy() -> impl Strategy<Value = OverflowMode> {
    prop_oneof![
        Just(OverflowMode::Probabilistic),
        (2usize..6).prop_map(|capacity| OverflowMode::Structural { capacity }),
    ]
}

fn fault_model_strategy() -> impl Strategy<Value = FaultModel> {
    (
        0.0f64..0.35,
        0.0f64..0.25,
        0.0f64..0.4,
        0.0f64..0.15,
        0.0f64..0.15,
        error_model_strategy(),
        overflow_mode_strategy(),
    )
        .prop_map(
            |(p_upset, p_overflow, sigma, p_tiles, p_links, error_model, overflow_mode)| {
                FaultModel::builder()
                    .p_upset(p_upset)
                    .p_overflow(p_overflow)
                    .sigma_synch(sigma)
                    .p_tiles(p_tiles)
                    .p_links(p_links)
                    .error_model(error_model)
                    .overflow_mode(overflow_mode)
                    .build()
                    .expect("strategy generates valid models")
            },
        )
}

/// Raw `(index, round)` kill events, clamped to the topology inside the
/// test since the node/link counts are topology-dependent.
type KillEvents = Vec<(usize, u64)>;

/// `(tile_kills, link_kills)` as raw indices.
fn crash_strategy() -> impl Strategy<Value = (KillEvents, KillEvents)> {
    (
        proptest::collection::vec((0usize..64, 0u64..10), 0..3),
        proptest::collection::vec((0usize..128, 0u64..10), 0..3),
    )
}

/// Raw, topology-independent adversarial scenario parameters. Link and
/// tile indices are clamped to the sampled topology inside the test.
#[derive(Debug, Clone)]
struct RawAdversary {
    cut_links: Vec<usize>,
    cut_from: u64,
    cut_heal_delta: Option<u64>,
    permanent_tile: Option<(usize, u64)>,
    permanent_link: Option<(usize, u64)>,
    delay_p: f64,
    reorder_p: f64,
    byzantine: Option<(usize, bool, u64)>,
    byzantine_until: Option<u64>,
}

fn adversary_strategy() -> impl Strategy<Value = RawAdversary> {
    // The vendored proptest has no `option::of`; gate each optional
    // component on a sampled bool instead.
    (
        (
            proptest::collection::vec(0usize..128, 0..4),
            0u64..8,
            (any::<bool>(), 1u64..12),
        ),
        (any::<bool>(), 0usize..64, 0u64..10),
        (any::<bool>(), 0usize..128, 0u64..10),
        (0.0f64..0.3, 0.0f64..0.3),
        (any::<bool>(), 0usize..64, any::<bool>(), 1u64..64),
        (any::<bool>(), 1u64..20),
    )
        .prop_map(
            |(
                (cut_links, cut_from, (heal_some, heal_delta)),
                (tile_some, tile, tile_round),
                (link_some, link, link_round),
                (delay_p, reorder_p),
                (byz_some, byz_tile, byz_forge, byz_activation),
                (until_some, until),
            )| RawAdversary {
                cut_links,
                cut_from,
                cut_heal_delta: heal_some.then_some(heal_delta),
                permanent_tile: tile_some.then_some((tile, tile_round)),
                permanent_link: link_some.then_some((link, link_round)),
                delay_p,
                reorder_p,
                byzantine: byz_some.then_some((byz_tile, byz_forge, byz_activation)),
                byzantine_until: until_some.then_some(until),
            },
        )
}

/// Realizes a [`RawAdversary`] against concrete node/link counts.
fn build_adversary(raw: &RawAdversary, n: usize, m: usize) -> AdversarialScenario {
    let mut builder = AdversarialScenario::builder()
        .delay_probability(raw.delay_p)
        .reorder_probability(raw.reorder_p);
    if !raw.cut_links.is_empty() {
        let links: Vec<usize> = raw.cut_links.iter().map(|&l| l % m).collect();
        let heal = raw.cut_heal_delta.map(|d| raw.cut_from + d);
        builder = builder.cut_links(links, raw.cut_from, heal);
    }
    if let Some((tile, round)) = raw.permanent_tile {
        builder = builder.kill_tile(tile % n, round);
    }
    if let Some((link, round)) = raw.permanent_link {
        builder = builder.kill_link(link % m, round);
    }
    if let Some((tile, forge, activation)) = raw.byzantine {
        builder = builder
            .byzantine_tile(tile % n)
            .byzantine_mode(if forge {
                ByzantineMode::Forge
            } else {
                ByzantineMode::Replay
            })
            .byzantine_activation(activation as f64 / 64.0)
            .byzantine_until(raw.byzantine_until);
    }
    builder.build().expect("strategy generates valid scenarios")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_engine_matches_naive_reference(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        (tile_kills, link_kills) in crash_strategy(),
        seed in any::<u64>(),
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 0..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let mut schedule = CrashSchedule::new();
        for (tile, round) in tile_kills {
            schedule.kill_tile(tile % n, round);
        }
        for (link, round) in link_kills {
            schedule.kill_link(link % m, round);
        }
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut optimized = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule.clone())
            .seed(seed)
            .build();
        let mut reference =
            ReferenceSimulation::new(topology, config, model, schedule, seed);

        for (src, dst, payload) in &injections {
            let src = NodeId(src % n);
            let dst = NodeId(dst % n);
            let a = optimized.inject(src, dst, payload.clone());
            let b = reference.inject(src, dst, payload.clone());
            prop_assert_eq!(a, b, "message ids must be assigned identically");
        }

        let fast = observe(&optimized.run());
        let naive = observe(&reference.run());
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn optimized_engine_matches_reference_under_adversary(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        raw in adversary_strategy(),
        seed in any::<u64>(),
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 1..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let adversary = build_adversary(&raw, n, m);
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut optimized = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .adversary(adversary.clone())
            .seed(seed)
            .build();
        let mut reference = ReferenceSimulation::new_with_adversary(
            topology,
            config,
            model,
            CrashSchedule::new(),
            adversary,
            seed,
        );

        for (src, dst, payload) in &injections {
            let src = NodeId(src % n);
            let dst = NodeId(dst % n);
            let a = optimized.inject(src, dst, payload.clone());
            let b = reference.inject(src, dst, payload.clone());
            prop_assert_eq!(a, b, "message ids must be assigned identically");
        }

        let fast = observe(&optimized.run());
        let naive = observe(&reference.run());
        prop_assert_eq!(fast, naive);
    }
}
