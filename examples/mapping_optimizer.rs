//! Communication-aware IP placement (§4.1.3's mapping observation):
//! optimize the MP3 pipeline's stage placement and compare the
//! traffic-weighted hop cost against random placements.
//!
//! ```text
//! cargo run --release --example mapping_optimizer
//! ```

use ocsc::noc_apps::mapping::{optimize_mapping, random_mapping, TrafficGraph};
use ocsc::noc_fabric::Grid2d;

fn main() {
    // The MP3 pipeline's traffic graph (Figure 4-7), weighted by message
    // size: frames are heavy (acquisition fans out to psycho + mdct),
    // coefficients medium, weights/granules light.
    // Roles: 0 acquisition, 1 psycho, 2 mdct, 3 encoder, 4 reservoir, 5 output.
    let mut graph = TrafficGraph::new(6);
    graph
        .add_flow(0, 1, 8.0) // frames to the psychoacoustic model
        .add_flow(0, 2, 8.0) // frames to the MDCT
        .add_flow(1, 3, 2.0) // band weights
        .add_flow(2, 3, 8.0) // coefficients
        .add_flow(3, 4, 1.0) // granules
        .add_flow(4, 5, 1.0); // final bitstream

    let grid = Grid2d::new(4, 4);
    println!("MP3 pipeline placement on a 4x4 NoC (traffic-weighted hop cost):");
    for seed in 0..3 {
        let r = random_mapping(&graph, &grid, seed);
        println!("random placement #{seed}: cost {:.0}", r.cost);
    }
    let tuned = optimize_mapping(&graph, &grid, 8, 1);
    println!(
        "optimized placement : cost {:.0} ({} swap proposals evaluated)",
        tuned.cost, tuned.iterations
    );
    println!();
    println!("stage tiles (acq, psy, mdct, enc, res, out):");
    for (role, tile) in tuned.assignment.iter().enumerate() {
        let (x, y) = grid.coordinates(*tile);
        println!("  role {role}: {tile} at ({x},{y})");
    }
    println!();
    println!("lower hop cost -> lower flooding latency and smaller TTL/energy");
    println!("provisioning for the same delivery probability (see DESIGN.md).");
}
