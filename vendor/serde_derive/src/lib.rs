//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives these traits on value types for downstream
//! compatibility but never serializes anything (no serializer crate is
//! available offline), so the derives can safely expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the vendored `serde::Serialize` trait is a marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the vendored `serde::Deserialize` trait is a marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
