//! Round-by-round tracing of a gossip spread — the programmatic
//! equivalent of the paper's Stateflow animation (Figure 4-1), including
//! an ASCII rendering of which grid tiles know a message.

use noc_fabric::{Grid2d, MessageId, NodeId};

use crate::engine::{RoundStats, Simulation};
use crate::events::EventSink;

/// Snapshot of the network at the end of one round, relative to one
/// tracked message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSnapshot {
    /// The round that was executed.
    pub round: u64,
    /// Which tiles have seen the tracked message.
    pub informed: Vec<bool>,
    /// Number of informed tiles.
    pub informed_count: usize,
    /// Live messages buffered per tile (all messages, not only the
    /// tracked one).
    pub buffer_occupancy: Vec<usize>,
    /// Frames transmitted during the round.
    pub transmissions: u64,
    /// Whether the tracked message had been delivered by this round.
    pub delivered: bool,
}

/// Records one snapshot per executed round for a tracked message.
///
/// # Examples
///
/// ```
/// use noc_fabric::{Grid2d, NodeId};
/// use stochastic_noc::{SimulationBuilder, SpreadTrace, StochasticConfig};
///
/// let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
///     .config(StochasticConfig::flooding(8).with_max_rounds(20))
///     .seed(1)
///     .build();
/// let id = sim.inject(NodeId(5), NodeId(11), vec![1]);
/// let trace = SpreadTrace::record(&mut sim, id, 20);
/// assert_eq!(trace.snapshots()[0].informed_count, 1);
/// assert!(trace.delivery_round().is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpreadTrace {
    message: MessageId,
    snapshots: Vec<RoundSnapshot>,
}

impl SpreadTrace {
    /// Steps `sim` for up to `max_rounds` rounds (or until completion),
    /// snapshotting the state of `message` after each round. Snapshot 0
    /// is the pre-run state, taken at the simulation's current round
    /// before any stepping; each later snapshot corresponds to one
    /// executed round.
    pub fn record<S: EventSink>(
        sim: &mut Simulation<S>,
        message: MessageId,
        max_rounds: u64,
    ) -> Self {
        let mut snapshots = vec![Self::snapshot(sim, message, sim.round(), 0)];
        let start = sim.round();
        while !sim.is_complete() && sim.round() < start + max_rounds {
            let stats: RoundStats = sim.step();
            snapshots.push(Self::snapshot(
                sim,
                message,
                stats.round,
                stats.transmissions,
            ));
        }
        Self { message, snapshots }
    }

    fn snapshot<S: EventSink>(
        sim: &Simulation<S>,
        message: MessageId,
        round: u64,
        transmissions: u64,
    ) -> RoundSnapshot {
        let n = sim.node_count();
        let informed: Vec<bool> = (0..n)
            .map(|i| sim.node_informed(NodeId(i), message))
            .collect();
        let informed_count = informed.iter().filter(|&&b| b).count();
        RoundSnapshot {
            round,
            informed,
            informed_count,
            buffer_occupancy: (0..n).map(|i| sim.buffer_len(NodeId(i))).collect(),
            transmissions,
            delivered: sim.report().delivered(message),
        }
    }

    /// The tracked message.
    pub fn message(&self) -> MessageId {
        self.message
    }

    /// All recorded snapshots (the first is the pre-run state).
    pub fn snapshots(&self) -> &[RoundSnapshot] {
        &self.snapshots
    }

    /// The informed-count curve, one entry per snapshot — directly
    /// comparable to Figure 3-1's spread curves.
    pub fn informed_curve(&self) -> Vec<usize> {
        self.snapshots.iter().map(|s| s.informed_count).collect()
    }

    /// First snapshot index at which the message was delivered, if any.
    pub fn delivery_round(&self) -> Option<u64> {
        self.snapshots.iter().find(|s| s.delivered).map(|s| s.round)
    }

    /// Renders one snapshot as an ASCII grid: `#` informed, `.` not,
    /// `D`/`d` the (informed/uninformed) destination tile.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot index is out of range or the grid shape
    /// does not match the traced network.
    pub fn render_grid(&self, grid: &Grid2d, snapshot: usize, destination: NodeId) -> String {
        let snap = &self.snapshots[snapshot];
        assert_eq!(
            snap.informed.len(),
            grid.width() * grid.height(),
            "grid shape does not match the traced network"
        );
        let mut out = String::new();
        for y in 0..grid.height() {
            for x in 0..grid.width() {
                let node = grid.node_at(x, y);
                let informed = snap.informed[node.index()];
                out.push(match (node == destination, informed) {
                    (true, true) => 'D',
                    (true, false) => 'd',
                    (false, true) => '#',
                    (false, false) => '.',
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationBuilder, StochasticConfig};

    fn traced() -> (SpreadTrace, Grid2d, NodeId) {
        let grid = Grid2d::new(4, 4);
        let mut sim = SimulationBuilder::new(grid.clone())
            .config(StochasticConfig::flooding(10).with_max_rounds(20))
            .seed(9)
            .build();
        let id = sim.inject(NodeId(5), NodeId(11), vec![1]);
        (SpreadTrace::record(&mut sim, id, 20), grid, NodeId(11))
    }

    #[test]
    fn trace_starts_with_only_the_source_informed() {
        let (trace, _, _) = traced();
        assert_eq!(trace.snapshots()[0].informed_count, 1);
        assert!(trace.snapshots()[0].informed[5]);
        assert!(!trace.snapshots()[0].delivered);
    }

    #[test]
    fn informed_curve_is_monotone_and_saturates_under_flooding() {
        let (trace, _, _) = traced();
        let curve = trace.informed_curve();
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*curve.last().unwrap(), 16, "flooding informs all tiles");
    }

    #[test]
    fn delivery_round_matches_report() {
        let (trace, _, _) = traced();
        assert_eq!(trace.delivery_round(), Some(3), "3 hops under flooding");
    }

    #[test]
    fn ascii_rendering_shape() {
        let (trace, grid, dst) = traced();
        let art = trace.render_grid(&grid, 0, dst);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Initially: source informed, destination not yet.
        assert_eq!(art.matches('#').count(), 1);
        assert_eq!(art.matches('d').count(), 1);
        // Final: everyone informed, destination marked 'D'.
        let last = trace.render_grid(&grid, trace.snapshots().len() - 1, dst);
        assert_eq!(last.matches('#').count(), 15);
        assert_eq!(last.matches('D').count(), 1);
        assert_eq!(last.matches('.').count(), 0);
    }

    #[test]
    fn buffer_occupancy_drains_by_ttl() {
        let (trace, _, _) = traced();
        let final_snap = trace.snapshots().last().unwrap();
        assert!(
            final_snap.buffer_occupancy.iter().all(|&b| b == 0),
            "all buffers drained after ttl expiry"
        );
    }
}
