//! A deliberately naive reference implementation of the gossip engine.
//!
//! This module preserves the *pre-optimization* data flow of
//! [`Simulation::step`](crate::Simulation::step) — every frame is a fresh
//! `Vec<u8>` clone, every tile re-encodes every buffered message each
//! round, and every round allocates fresh inbox/delivery vectors. It
//! exists for two reasons:
//!
//! 1. **Specification oracle.** The zero-copy engine (shared `Arc`
//!    frames, per-round CRC memoization, reusable round arenas) must be
//!    observably indistinguishable from this one: same `(topology,
//!    config, fault model, seed)` → byte-identical [`SimulationReport`].
//!    The `engine_equivalence` property test drives both across random
//!    workloads and compares every counter and per-message record.
//! 2. **Perf baseline.** The `perf_baseline` harness in `noc-bench`
//!    times this engine against the optimized one to measure the
//!    step-throughput win (`BENCH_PR2.json`).
//!
//! It intentionally supports only the protocol core — injected
//! messages, fault injection, crash schedules — not IP cores, egress
//! limits or per-tile probability overrides, which are orthogonal to the
//! hot-path data flow.
//!
//! Determinism parity relies on consuming the shared RNG stream in
//! exactly the same order as the optimized engine: alive-tile then
//! alive-link sampling at build; per-frame overflow draws in receive
//! order; per-tile skew, then per-(message, link) forwarding and upset
//! draws in buffer order. Adversarial mechanisms follow the same
//! contract from their own derived streams: per-link chaos draws (delay
//! then reorder, per surviving frame), and per-tile Byzantine draws
//! (activation, then forge offset and mask) — see
//! [`ReferenceSimulation::new_with_adversary`].

use noc_energy::{Bits, TechnologyLibrary};
use noc_fabric::{
    ClockDomain, LinkId, Message, MessageId, NodeId, ReceiveBuffer, Topology, WireCodec,
};
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, FaultInjector, FaultModel, OverflowMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::{BTreeMap, BTreeSet};

use crate::config::StochasticConfig;
use crate::engine::RoundStats;
use crate::metrics::{MessageRecord, SimulationReport};
use crate::seed::{derive_labeled_seed, derive_trial_seed};
use crate::send_buffer::SendBuffer;

/// A frame in flight on a link, owned byte-for-byte (the naive layout).
#[derive(Debug, Clone)]
struct Frame {
    bytes: Vec<u8>,
    scrambled: bool,
}

/// The clone-everything gossip engine kept as the behavioural oracle.
///
/// # Examples
///
/// ```
/// use noc_fabric::{NodeId, Topology};
/// use noc_faults::{CrashSchedule, FaultModel};
/// use stochastic_noc::reference::ReferenceSimulation;
/// use stochastic_noc::StochasticConfig;
///
/// let mut sim = ReferenceSimulation::new(
///     Topology::grid(4, 4),
///     StochasticConfig::flooding(12),
///     FaultModel::none(),
///     CrashSchedule::new(),
///     1,
/// );
/// let id = sim.inject(NodeId(5), NodeId(11), b"x".to_vec());
/// let report = sim.run();
/// assert!(report.delivered(id));
/// ```
pub struct ReferenceSimulation {
    topology: Topology,
    config: StochasticConfig,
    crash_schedule: CrashSchedule,
    adversary: AdversarialScenario,
    chaos_streams: Vec<StdRng>,
    byz_streams: BTreeMap<usize, StdRng>,
    byz_last_frame: Vec<Option<(MessageId, Vec<u8>)>>,
    injector: FaultInjector,
    codec: WireCodec,
    tiles_alive: Vec<bool>,
    links_alive: Vec<bool>,
    buffers: Vec<SendBuffer>,
    clocks: Vec<ClockDomain>,
    inbox_next: Vec<Vec<Frame>>,
    inbox_later: Vec<Vec<Frame>>,
    terminated: BTreeSet<MessageId>,
    report: SimulationReport,
    round: u64,
    next_message_id: u64,
    completed: bool,
}

impl ReferenceSimulation {
    /// Builds a reference simulation, sampling initial tile/link health
    /// from the seeded injector exactly like the optimized builder.
    pub fn new(
        topology: impl Into<Topology>,
        config: StochasticConfig,
        fault_model: FaultModel,
        crash_schedule: CrashSchedule,
        seed: u64,
    ) -> Self {
        Self::new_with_adversary(
            topology,
            config,
            fault_model,
            crash_schedule,
            AdversarialScenario::benign(),
            seed,
        )
    }

    /// Builds a reference simulation under an adversarial scenario,
    /// deriving the same per-link chaos and per-tile Byzantine streams
    /// as [`crate::SimulationBuilder::adversary`].
    pub fn new_with_adversary(
        topology: impl Into<Topology>,
        config: StochasticConfig,
        fault_model: FaultModel,
        crash_schedule: CrashSchedule,
        adversary: AdversarialScenario,
        seed: u64,
    ) -> Self {
        let topology = topology.into();
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        adversary
            .validate()
            .unwrap_or_else(|e| panic!("invalid adversarial scenario: {e}"));
        let mut injector = FaultInjector::new(fault_model, seed);
        let n = topology.node_count();
        let m = topology.link_count();
        let tiles_alive = injector.sample_alive_tiles(n);
        let links_alive = injector.sample_alive_links(m);
        let mut crash_schedule = crash_schedule;
        for (tile, at) in adversary.permanent.tile_events() {
            crash_schedule.kill_tile(tile, at);
        }
        for (link, at) in adversary.permanent.link_events() {
            crash_schedule.kill_link(link, at);
        }
        let chaos_streams: Vec<StdRng> = if adversary.chaos.is_active() {
            let base = derive_labeled_seed(seed, "adversary-link");
            (0..m)
                .map(|link| StdRng::seed_from_u64(derive_trial_seed(base, link as u64)))
                .collect()
        } else {
            Vec::new()
        };
        let byz_streams: BTreeMap<usize, StdRng> = if adversary.byzantine.is_active() {
            let base = derive_labeled_seed(seed, "adversary-tile");
            adversary
                .byzantine
                .tiles
                .iter()
                .map(|&tile| {
                    (
                        tile,
                        StdRng::seed_from_u64(derive_trial_seed(base, tile as u64)),
                    )
                })
                .collect()
        } else {
            BTreeMap::new()
        };
        Self {
            report: SimulationReport::new(TechnologyLibrary::NOC_LINK_0_25UM),
            buffers: (0..n).map(|_| SendBuffer::new()).collect(),
            clocks: vec![ClockDomain::new(); n],
            inbox_next: vec![Vec::new(); n],
            inbox_later: vec![Vec::new(); n],
            terminated: BTreeSet::new(),
            tiles_alive,
            links_alive,
            topology,
            config,
            crash_schedule,
            adversary,
            chaos_streams,
            byz_streams,
            byz_last_frame: vec![None; n],
            injector,
            codec: WireCodec::default(),
            round: 0,
            next_message_id: 0,
            completed: false,
        }
    }

    /// The current round (number of rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True once the network has drained.
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    fn tile_alive(&self, node: NodeId) -> bool {
        self.tiles_alive[node.index()] && !self.crash_schedule.tile_dead(node.index(), self.round)
    }

    /// Injects a message, mirroring [`crate::Simulation::inject`].
    pub fn inject(&mut self, source: NodeId, destination: NodeId, payload: Vec<u8>) -> MessageId {
        let id = MessageId(self.next_message_id);
        self.next_message_id += 1;
        let frame_bits = self.codec.frame_bits(payload.len());
        self.report.record_injection(MessageRecord {
            id,
            source,
            destination,
            injected_round: self.round,
            delivered_round: None,
            frame_bits,
        });
        let message = Message::new(id, source, destination, self.config.default_ttl, payload);
        if !self.tile_alive(source) {
            return id;
        }
        if destination == source {
            self.report.record_delivery(id, self.round);
            let frame = self.codec.encode(&message);
            self.inbox_next[source.index()].push(Frame {
                bytes: frame,
                scrambled: false,
            });
            return id;
        }
        self.buffers[source.index()].insert(message);
        id
    }

    /// Runs until the network drains or the round budget is exhausted.
    pub fn run(&mut self) -> SimulationReport {
        while !self.completed && self.round < self.config.max_rounds {
            self.step();
        }
        let mut report = self.report.clone();
        report.clock_slips = self.clocks.iter().map(ClockDomain::slips).sum();
        report.ttl_expirations = self.buffers.iter().map(SendBuffer::expired_count).sum();
        report
    }

    /// Executes one gossip round with the naive clone-everything data
    /// flow (the pre-optimization hot path, preserved verbatim).
    pub fn step(&mut self) -> RoundStats {
        let round = self.round;
        let n = self.topology.node_count();
        let mut stats = RoundStats {
            round,
            ..RoundStats::default()
        };

        // Shift the delay line, allocating a fresh vector per round.
        let current: Vec<Vec<Frame>> =
            std::mem::replace(&mut self.inbox_next, std::mem::take(&mut self.inbox_later));
        self.inbox_later = vec![Vec::new(); n];

        // Phase 1: receive, fully decoding every accepted frame.
        for (tile, frames) in current.into_iter().enumerate() {
            let node = NodeId(tile);
            if !self.tile_alive(node) {
                self.report.crash_drops += frames.len() as u64;
                continue;
            }
            let accepted = self.apply_overflow(frames);
            for frame in accepted {
                match self.codec.decode(&frame.bytes) {
                    Ok(message) => {
                        if self.terminated.contains(&message.id) {
                            continue;
                        }
                        if frame.scrambled {
                            self.report.upsets_undetected += 1;
                        }
                        let is_new = !self.buffers[tile].has_seen(message.id);
                        if message.destination == node && is_new {
                            self.report.record_delivery(message.id, round);
                            stats.deliveries += 1;
                            if self.config.terminate_on_delivery {
                                self.terminated.insert(message.id);
                            }
                        }
                        self.buffers[tile].insert(message);
                    }
                    Err(_) => {
                        self.report.upsets_detected += 1;
                    }
                }
            }
        }

        // Phase 2 (compute) is empty: the reference carries no IP cores.

        // Phase 3: purge terminated spreads, then age TTLs.
        if self.config.terminate_on_delivery && !self.terminated.is_empty() {
            for buffer in &mut self.buffers {
                for &id in &self.terminated {
                    buffer.remove(id);
                }
            }
        }
        for buffer in &mut self.buffers {
            buffer.age();
        }
        stats.live_messages = self.buffers.iter().map(|b| b.len() as u64).sum();

        // Phase 4: forward, cloning the buffer and re-encoding per tile.
        let p = self.config.forward_probability;
        for tile in 0..n {
            let node = NodeId(tile);
            if !self.tile_alive(node) || self.buffers[tile].is_empty() {
                continue;
            }
            let skew = self.injector.round_skew();
            let slipped = self.clocks[tile].advance(skew) > 0;
            let out_links: Vec<_> = self.topology.out_links(node).to_vec();
            let messages: Vec<Message> = self.buffers[tile].iter().cloned().collect();
            for message in &messages {
                let frame = self.codec.encode(message);
                if self.byz_streams.contains_key(&tile) {
                    self.byz_last_frame[tile] = Some((message.id, frame.clone()));
                }
                for &link_id in &out_links {
                    if p < 1.0 && !bernoulli(self.injector.rng(), p) {
                        continue;
                    }
                    self.transmit(&mut stats, round, link_id, &frame, slipped);
                }
            }
            // Byzantine attack, mirroring the engine's draw order from
            // the tile's dedicated stream: one activation draw per armed
            // round, then (for forgeries) one offset and one mask draw.
            if self.adversary.byzantine.armed(tile, round) && self.byz_streams.contains_key(&tile) {
                let activation_probability = self.adversary.byzantine.activation_probability;
                let activated = self
                    .byz_streams
                    .get_mut(&tile)
                    .map(|stream| bernoulli(stream, activation_probability))
                    .unwrap_or(false);
                if activated {
                    let attack: Option<(MessageId, Vec<u8>)> = match self.adversary.byzantine.mode {
                        ByzantineMode::Forge => {
                            let victim = &messages[0];
                            let mut payload = victim.payload.to_vec();
                            if payload.is_empty() {
                                None
                            } else {
                                use rand::Rng;
                                let (at, mask) = {
                                    let stream = self
                                        .byz_streams
                                        .get_mut(&tile)
                                        .expect("armed Byzantine tile has a stream");
                                    (
                                        stream.gen_range(0..payload.len()),
                                        stream.gen_range(1..=255u64) as u8,
                                    )
                                };
                                payload[at] ^= mask;
                                let forged = Message::new(
                                    victim.id,
                                    victim.source,
                                    victim.destination,
                                    victim.ttl,
                                    payload,
                                );
                                self.report.byzantine_forges += 1;
                                Some((victim.id, self.codec.encode(&forged)))
                            }
                        }
                        ByzantineMode::Replay => {
                            let stored = self.byz_last_frame[tile].clone();
                            if stored.is_some() {
                                self.report.byzantine_replays += 1;
                            }
                            stored
                        }
                    };
                    if let Some((_, frame)) = attack {
                        for &link_id in &out_links {
                            self.transmit(&mut stats, round, link_id, &frame, slipped);
                        }
                    }
                }
            }
        }

        self.round += 1;
        let drained = self.buffers.iter().all(SendBuffer::is_empty)
            && self.inbox_next.iter().all(Vec::is_empty)
            && self.inbox_later.iter().all(Vec::is_empty);
        self.completed = drained;
        self.report.rounds_executed = self.round;
        self.report.completed = self.completed;
        stats
    }

    /// One frame over one link: counting, link death, partition,
    /// upset scrambling, and chaos jitter — the exact per-hop tail the
    /// engine's `transmit_frame` performs, in the same draw order.
    fn transmit(
        &mut self,
        stats: &mut RoundStats,
        round: u64,
        link_id: LinkId,
        frame: &[u8],
        slipped: bool,
    ) {
        stats.transmissions += 1;
        self.report.packets_sent += 1;
        self.report.bits_sent += Bits((frame.len() * 8) as u64);
        let link_dead = !self.links_alive[link_id.index()]
            || self.crash_schedule.link_dead(link_id.index(), round);
        if link_dead {
            self.report.crash_drops += 1;
            return;
        }
        // Partition check is RNG-free and sits after link death, before
        // the upset draw — identical to the engine.
        if self.adversary.partitions.link_cut(link_id.index(), round) {
            self.report.partition_drops += 1;
            return;
        }
        let to = self.topology.link(link_id).to;
        let mut out = Frame {
            bytes: frame.to_vec(),
            scrambled: false,
        };
        if self.injector.upset_occurs() {
            self.injector.scramble(&mut out.bytes);
            out.scrambled = true;
        }
        let mut held = slipped;
        let mut front = false;
        if !self.chaos_streams.is_empty() {
            let chaos = self.adversary.chaos;
            let stream = &mut self.chaos_streams[link_id.index()];
            if bernoulli(stream, chaos.delay_probability) {
                self.report.adversarial_delays += 1;
                held = true;
            }
            if bernoulli(stream, chaos.reorder_probability) {
                self.report.adversarial_reorders += 1;
                front = true;
            }
        }
        let inbox = if held {
            &mut self.inbox_later[to.index()]
        } else {
            &mut self.inbox_next[to.index()]
        };
        if front {
            inbox.insert(0, out);
        } else {
            inbox.push(out);
        }
    }

    fn apply_overflow(&mut self, frames: Vec<Frame>) -> Vec<Frame> {
        match self.injector.model().overflow_mode {
            OverflowMode::Probabilistic => {
                let p = self.injector.model().p_overflow;
                if p == 0.0 {
                    return frames;
                }
                let mut kept = Vec::with_capacity(frames.len());
                for frame in frames {
                    if self.injector.overflow_drop() {
                        self.report.overflow_drops += 1;
                    } else {
                        kept.push(frame);
                    }
                }
                kept
            }
            OverflowMode::Structural { capacity } => {
                let mut buffer = ReceiveBuffer::bounded(capacity);
                for frame in frames {
                    if buffer.push(frame).is_some() {
                        self.report.overflow_drops += 1;
                    }
                }
                buffer.drain().collect()
            }
        }
    }
}

fn bernoulli(rng: &mut rand::rngs::StdRng, p: f64) -> bool {
    use rand::Rng;
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulationBuilder;
    use noc_faults::ErrorModel;

    /// Formats the observable state of a report for equality checks.
    fn digest(report: &SimulationReport) -> String {
        let mut records: Vec<_> = report.records().collect();
        records.sort_by_key(|r| r.id);
        let mut out = format!(
            "{} {} {} {} {} {} {} {} {} {}",
            report.rounds_executed,
            report.completed,
            report.packets_sent,
            report.bits_sent.bits(),
            report.upsets_detected,
            report.upsets_undetected,
            report.overflow_drops,
            report.crash_drops,
            report.clock_slips,
            report.ttl_expirations,
        );
        for r in records {
            out.push_str(&format!(" {}@{:?}", r.id, r.delivered_round));
        }
        out
    }

    #[test]
    fn reference_matches_engine_on_faulty_gossip() {
        let model = FaultModel::builder()
            .p_upset(0.2)
            .p_overflow(0.1)
            .sigma_synch(0.3)
            .error_model(ErrorModel::RandomErrorVector)
            .build()
            .unwrap();
        let config = StochasticConfig::new(0.5, 20).unwrap().with_max_rounds(100);
        let mut reference = ReferenceSimulation::new(
            Topology::grid(8, 8),
            config,
            model,
            CrashSchedule::new(),
            42,
        );
        let mut engine = SimulationBuilder::new(Topology::grid(8, 8))
            .config(config)
            .fault_model(model)
            .seed(42)
            .build();
        reference.inject(NodeId(0), NodeId(63), b"corner".to_vec());
        engine.inject(NodeId(0), NodeId(63), b"corner".to_vec());
        reference.inject(NodeId(9), NodeId(54), b"x".to_vec());
        engine.inject(NodeId(9), NodeId(54), b"x".to_vec());
        assert_eq!(digest(&reference.run()), digest(&engine.run()));
    }

    #[test]
    fn reference_matches_engine_on_crash_schedule() {
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(7, 0).kill_tile(14, 5).kill_link(3, 8);
        let model = FaultModel::builder().p_upset(0.05).build().unwrap();
        let config = StochasticConfig::new(0.6, 15).unwrap().with_max_rounds(60);
        let mut reference =
            ReferenceSimulation::new(Topology::grid(6, 6), config, model, schedule.clone(), 5);
        let mut engine = SimulationBuilder::new(Topology::grid(6, 6))
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule)
            .seed(5)
            .build();
        reference.inject(NodeId(1), NodeId(34), b"survivor".to_vec());
        engine.inject(NodeId(1), NodeId(34), b"survivor".to_vec());
        reference.inject(NodeId(35), NodeId(0), b"reverse".to_vec());
        engine.inject(NodeId(35), NodeId(0), b"reverse".to_vec());
        assert_eq!(digest(&reference.run()), digest(&engine.run()));
    }

    #[test]
    fn reference_self_delivery_is_instant() {
        let mut sim = ReferenceSimulation::new(
            Topology::grid(4, 4),
            StochasticConfig::default(),
            FaultModel::none(),
            CrashSchedule::new(),
            4,
        );
        let id = sim.inject(NodeId(6), NodeId(6), b"me".to_vec());
        let report = sim.run();
        assert!(report.delivered(id));
        assert_eq!(report.latency(id), Some(0));
    }
}
