//! On-chip stochastic communication: a gossip-based fault-tolerant
//! broadcast protocol for networks-on-chip.
//!
//! This crate is a from-scratch reproduction of the communication paradigm
//! of *On-Chip Stochastic Communication* (Dumitraş & Mărculescu, DATE
//! 2003): instead of routing, every tile keeps a send buffer of messages
//! it knows about and, each gossip round, forwards every buffered message
//! over each of its output links independently with probability `p`
//! (Figure 3-4). Packets are CRC-protected; receivers silently discard
//! scrambled packets, relying on the redundancy of the spread rather than
//! retransmission requests. Messages carry a TTL decremented once per
//! round so the broadcast dies out after the destination has been reached
//! with high probability.
//!
//! The crate provides:
//!
//! * [`StochasticConfig`]/[`SimulationBuilder`] — protocol parameters
//!   (`p`, TTL, round budget) and simulation assembly;
//! * [`Simulation`] — a deterministic, seeded, round-synchronous engine
//!   over any [`noc_fabric::Topology`], with full fault injection from
//!   [`noc_faults`];
//! * [`SendBuffer`] — the per-tile deduplicating output buffer;
//! * [`SimulationReport`] — latency, packet-count, energy and
//!   fault-tolerance metrics;
//! * [`Checkpoint`] — serializable round-boundary snapshots;
//!   [`SimulationBuilder::resume`] continues an interrupted run
//!   byte-identically;
//! * [`spread`] — the epidemic-spreading theory of §3.1 (Equation 1) and
//!   the 1000-node rumor experiment of Figure 3-1.
//!
//! # Examples
//!
//! Producer–consumer on the paper's 4×4 grid (Figure 3-3):
//!
//! ```
//! use noc_fabric::{Grid2d, NodeId};
//! use stochastic_noc::SimulationBuilder;
//!
//! let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
//!     .forward_probability(0.5)
//!     .ttl(12)
//!     .seed(7)
//!     .build();
//! // Producer on tile 6 (0-based 5) sends to the consumer on tile 12
//! // (0-based 11):
//! let msg = sim.inject(NodeId(5), NodeId(11), b"sample".to_vec());
//! let report = sim.run();
//! assert!(report.delivered(msg), "gossip delivered the message");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod engine;
pub mod events;
mod frontier;
mod metrics;
pub mod obs;
pub mod reference;
pub mod seed;
mod send_buffer;
mod shard;
pub mod spread;
mod trace;
pub mod tuning;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{InvalidConfig, StochasticConfig};
pub use engine::{RoundStats, Simulation, SimulationBuilder};
pub use events::{CounterSink, DropSite, EventSink, JsonlSink, NullSink, SimEvent, TeeSink};
pub use metrics::{MessageRecord, SimulationReport};
pub use obs::{EngineObs, EnginePhase};
pub use send_buffer::{InsertOutcome, SendBuffer};
pub use trace::{RoundSnapshot, SpreadTrace};
