//! Corpus fixture: the event enum with a variant one consumer misses
//! (true positive) and a diagnostic-only variant both consumers skip
//! under a reasoned allow.

pub enum SimEvent {
    /// Reconciled and serialized by both sinks.
    FrameSent { round: u64 },
    /// JsonlSink serializes this; CounterSink forgot it.
    Delivery { round: u64 },
    /// Deliberately unreconciled probe.
    // noc-lint: allow(event-coverage, reason = "diagnostic-only probe emitted by debug builds; counters and JSONL deliberately ignore it")
    DebugProbe { round: u64 },
}

pub struct CounterSink {
    frames: u64,
}

impl EventSink for CounterSink {
    fn emit(&mut self, event: &SimEvent) {
        if let SimEvent::FrameSent { .. } = event {
            self.frames += 1;
        }
    }
}

pub struct JsonlSink;

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &SimEvent) {
        match event {
            SimEvent::FrameSent { round } => drop(round),
            SimEvent::Delivery { round } => drop(round),
            _ => {}
        }
    }
}
