//! **Figure 4-4** — latency and energy dissipation of the two case
//! studies (FFT2 on 4×4, Master–Slave on 5×5) versus the number of tile
//! crash failures, for `p ∈ {1.0, 0.75, 0.5, 0.25}`.
//!
//! Expected shapes from the paper: flooding (`p = 1`) is latency-optimal
//! and energy-worst; `p = 0.5` is close to flooding's latency at roughly
//! half its energy; tile crashes barely move latency until modules die or
//! the network partitions.

use noc_apps::fft2d::{Fft2dApp, Fft2dParams};
use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use noc_faults::{CrashSchedule, FaultInjector, FaultModel};
use stochastic_noc::StochasticConfig;

use crate::stats::mean_std;
use crate::{Scale, TrialRunner};

/// Which case study a row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStudy {
    /// Parallel 2-D FFT on a 4×4 grid.
    Fft2d,
    /// Master–Slave π on a 5×5 grid.
    MasterSlave,
}

impl CaseStudy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CaseStudy::Fft2d => "FFT2 (4x4)",
            CaseStudy::MasterSlave => "Master-Slave (5x5)",
        }
    }
}

/// One point of the Figure 4-4 curves.
#[derive(Debug, Clone)]
pub struct CaseStudyPoint {
    /// Which application.
    pub case: CaseStudy,
    /// Forwarding probability `p`.
    pub p: f64,
    /// Number of crashed tiles (the x-axis).
    pub dead_tiles: usize,
    /// Mean completion latency in rounds over completed runs.
    pub latency_rounds: Option<f64>,
    /// Fraction of runs that completed.
    pub completion_ratio: f64,
    /// Mean communication energy in joules.
    pub energy_joules: f64,
}

const P_VALUES: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

/// Kills exactly `k` non-essential tiles (never the master/root or a
/// worker/slave tile), modelling defects on the routing fabric — the
/// regime where the paper observes latency is barely affected.
fn fabric_crash_schedule(
    total_tiles: usize,
    essential: &[usize],
    k: usize,
    seed: u64,
) -> CrashSchedule {
    let candidates: Vec<usize> = (0..total_tiles)
        .filter(|t| !essential.contains(t))
        .collect();
    let mut injector = FaultInjector::new(FaultModel::none(), seed.wrapping_mul(7919));
    let chosen = injector.sample_exact_dead_tiles(candidates.len(), k.min(candidates.len()));
    let mut schedule = CrashSchedule::new();
    for idx in chosen {
        schedule.kill_tile(candidates[idx], 0);
    }
    schedule
}

/// Runs the Figure 4-4 sweep.
pub fn run(scale: Scale) -> Vec<CaseStudyPoint> {
    let dead_counts: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4],
        Scale::Full => vec![0, 1, 2, 3, 4, 5, 6],
    };
    let mut rows = Vec::new();
    for case in [CaseStudy::Fft2d, CaseStudy::MasterSlave] {
        for &p in &P_VALUES {
            for &k in &dead_counts {
                rows.push(run_point(case, p, k, scale));
            }
        }
    }
    rows
}

fn run_point(case: CaseStudy, p: f64, dead_tiles: usize, scale: Scale) -> CaseStudyPoint {
    let config = StochasticConfig::new(p, 16)
        .expect("valid config")
        .with_max_rounds(150);
    let reps = scale.repetitions();
    let label = format!("fig4-4/{}/p={p:.2}/k={dead_tiles}", case.name());
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| match case {
        CaseStudy::Fft2d => {
            let base = Fft2dParams {
                config,
                seed,
                ..Fft2dParams::default()
            };
            let essential: Vec<usize> = {
                let app = Fft2dApp::new(base.clone());
                let mut v: Vec<usize> = app
                    .worker_assignments()
                    .into_iter()
                    .flat_map(|(_, tiles)| tiles)
                    .map(|n| n.index())
                    .collect();
                v.push(app.root_tile().index());
                v
            };
            let params = Fft2dParams {
                crash_schedule: fabric_crash_schedule(16, &essential, dead_tiles, seed),
                ..base
            };
            let outcome = Fft2dApp::new(params).run();
            (
                outcome.completed,
                outcome.completion_round,
                outcome.report.total_energy().joules(),
            )
        }
        CaseStudy::MasterSlave => {
            let base = MasterSlaveParams {
                config,
                seed,
                terms: 10_000,
                ..MasterSlaveParams::default()
            };
            let essential: Vec<usize> = {
                let app = MasterSlaveApp::new(base.clone());
                let mut v: Vec<usize> = app
                    .slave_assignments()
                    .into_iter()
                    .flatten()
                    .map(|n| n.index())
                    .collect();
                v.push(app.master_tile().index());
                v
            };
            let params = MasterSlaveParams {
                crash_schedule: fabric_crash_schedule(25, &essential, dead_tiles, seed),
                ..base
            };
            let outcome = MasterSlaveApp::new(params).run();
            (
                outcome.completed,
                outcome.completion_round,
                outcome.report.total_energy().joules(),
            )
        }
    });
    let mut latencies = Vec::new();
    let mut energies = Vec::new();
    let mut completions = 0u64;
    for (completed, latency, energy) in outcomes {
        if completed {
            completions += 1;
            if let Some(l) = latency {
                latencies.push(l as f64);
            }
        }
        energies.push(energy);
    }
    CaseStudyPoint {
        case,
        p,
        dead_tiles,
        latency_rounds: mean_std(&latencies).map(|(m, _)| m),
        completion_ratio: completions as f64 / reps as f64,
        energy_joules: mean_std(&energies).map(|(m, _)| m).unwrap_or(0.0),
    }
}

/// Prints both panels of Figure 4-4.
pub fn print(rows: &[CaseStudyPoint]) {
    crate::stats::print_table_header(
        "Figure 4-4: latency & energy vs tile crash failures",
        &[
            "case",
            "p",
            "dead tiles",
            "latency [rounds]",
            "completion",
            "energy [J]",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:.2}\t{}\t{}\t{:.2}\t{:.3e}",
            r.case.name(),
            r.p,
            r.dead_tiles,
            r.latency_rounds
                .map_or("-".to_string(), |l| format!("{l:.1}")),
            r.completion_ratio,
            r.energy_joules
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rows: &[CaseStudyPoint], case: CaseStudy, p: f64, k: usize) -> &CaseStudyPoint {
        rows.iter()
            .find(|r| r.case == case && r.p == p && r.dead_tiles == k)
            .expect("point present")
    }

    #[test]
    fn flooding_is_latency_optimal_and_energy_worst() {
        let rows = run(Scale::Quick);
        for case in [CaseStudy::Fft2d, CaseStudy::MasterSlave] {
            let flood = point(&rows, case, 1.0, 0);
            let half = point(&rows, case, 0.5, 0);
            let flood_latency = flood.latency_rounds.expect("flooding completes");
            if let Some(half_latency) = half.latency_rounds {
                assert!(
                    flood_latency <= half_latency + 1e-9,
                    "{}: flooding {flood_latency} vs p=0.5 {half_latency}",
                    case.name()
                );
            }
            assert!(
                flood.energy_joules > half.energy_joules,
                "{}: flooding energy must exceed p=0.5",
                case.name()
            );
        }
    }

    #[test]
    fn p_half_energy_is_roughly_half_of_flooding() {
        let rows = run(Scale::Quick);
        let flood = point(&rows, CaseStudy::Fft2d, 1.0, 0).energy_joules;
        let half = point(&rows, CaseStudy::Fft2d, 0.5, 0).energy_joules;
        let ratio = half / flood;
        assert!(
            (0.3..0.75).contains(&ratio),
            "p=0.5 energy ratio {ratio} (paper: about half)"
        );
    }

    #[test]
    fn fabric_crashes_barely_move_latency() {
        let rows = run(Scale::Quick);
        let clean = point(&rows, CaseStudy::MasterSlave, 1.0, 0)
            .latency_rounds
            .unwrap();
        let damaged = point(&rows, CaseStudy::MasterSlave, 1.0, 4)
            .latency_rounds
            .unwrap();
        assert!(
            damaged <= clean * 2.5,
            "4 fabric crashes at flooding: {damaged} vs clean {clean}"
        );
    }
}
