//! The Figure 5-3 architecture comparison: identical beamforming traffic
//! replayed over the three fabrics.

use noc_apps::beamforming::{run_with_builder, BeamformingParams};
use noc_faults::{AdversarialScenario, FaultModel};
use serde::Serialize;
use stochastic_noc::{SimulationBuilder, StochasticConfig};

use crate::architecture::{Architecture, ArchitectureKind};

/// Parameters of an architecture comparison run.
#[derive(Debug, Clone)]
pub struct ComparisonParams {
    /// Quadrant side `s` (each fabric hosts four `s × s` quadrants).
    pub quadrant_side: usize,
    /// Sensors per quadrant (placed at the quadrant corners).
    pub sensors_per_quadrant: usize,
    /// Blocks each sensor streams.
    pub blocks: u32,
    /// Protocol configuration (shared by all fabrics).
    pub config: StochasticConfig,
    /// Fault model (shared by all fabrics).
    pub fault_model: FaultModel,
    /// Bus service rate for the bus-connected fabric (messages per
    /// gossip round).
    pub bus_rate: usize,
    /// Adversarial scenario applied to every fabric (benign by default).
    pub adversary: AdversarialScenario,
    /// Intra-trial shard count passed to the engine (1 = sequential,
    /// 0 = auto-detect); results are byte-identical for every value.
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ComparisonParams {
    /// The full-size comparison: 4×4 quadrants, 3 sensors each.
    pub fn paper_scale() -> Self {
        Self {
            quadrant_side: 4,
            sensors_per_quadrant: 3,
            blocks: 6,
            config: StochasticConfig::new(0.5, 24)
                .expect("valid config")
                .with_max_rounds(2_000),
            fault_model: FaultModel::none(),
            bus_rate: 8,
            adversary: AdversarialScenario::benign(),
            shards: 1,
            seed: 0,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn quick() -> Self {
        Self {
            quadrant_side: 3,
            sensors_per_quadrant: 2,
            blocks: 3,
            config: StochasticConfig::new(0.6, 20)
                .expect("valid config")
                .with_max_rounds(1_000),
            fault_model: FaultModel::none(),
            bus_rate: 1,
            adversary: AdversarialScenario::benign(),
            shards: 1,
            seed: 0,
        }
    }

    /// The hostile variant of a configuration: chaos jitter on every
    /// link plus a Byzantine forger near the centre of quadrant 0 and a
    /// transient partition of the lowest-indexed links. Link and tile
    /// indices outside a fabric's range simply never match, so the same
    /// scenario applies to all three architectures.
    pub fn hostile(self) -> Self {
        let adversary = AdversarialScenario::builder()
            .cut_links(0..4, 5, Some(15))
            .delay_probability(0.05)
            .reorder_probability(0.05)
            .byzantine_tile(self.quadrant_side + 1)
            .byzantine_activation(0.25)
            .build()
            .expect("hostile template is a valid scenario");
        Self { adversary, ..self }
    }
}

/// Result of running the workload on one fabric.
#[derive(Debug, Clone, Serialize)]
pub struct ArchitectureResult {
    /// Which fabric.
    pub kind: ArchitectureKind,
    /// Did the beamformer assemble every block within the budget?
    pub completed: bool,
    /// Rounds until the beamformer finished (budget if it did not).
    pub latency_rounds: u64,
    /// Total message transmissions over links (the Figure 5-3 bar).
    pub transmissions: u64,
    /// Total communication energy in joules.
    pub energy_joules: f64,
}

/// Runs the identical beamforming workload on the flat, hierarchical and
/// bus-connected fabrics and reports the Figure 5-3 metrics for each.
///
/// Sensor placement is logical — the same `(quadrant, x, y)` positions on
/// every fabric — with the beamformer at quadrant 0's gateway.
///
/// # Panics
///
/// Panics if `sensors_per_quadrant` is 0 or exceeds the quadrant corner
/// count (4), or if a placement collides with the beamformer tile.
pub fn compare_architectures(params: &ComparisonParams) -> Vec<ArchitectureResult> {
    assert!(
        (1..=4).contains(&params.sensors_per_quadrant),
        "sensors per quadrant must be 1..=4 (corner placements)"
    );
    let architectures = [
        Architecture::flat(params.quadrant_side),
        Architecture::hierarchical(params.quadrant_side),
        Architecture::bus_connected_with_rate(params.quadrant_side, params.bus_rate),
    ];
    architectures
        .iter()
        .map(|arch| run_one(arch, params))
        .collect()
}

fn run_one(arch: &Architecture, params: &ComparisonParams) -> ArchitectureResult {
    let s = params.quadrant_side;
    let corners = [(0, 0), (s - 1, 0), (0, s - 1), (s - 1, s - 1)];
    let mut sensors = Vec::new();
    for q in 0..4 {
        for &(x, y) in corners.iter().take(params.sensors_per_quadrant) {
            sensors.push(arch.tile(q, x, y));
        }
    }
    let beamformer = arch.gateway(0);
    assert!(
        !sensors.contains(&beamformer),
        "beamformer tile collides with a sensor"
    );

    let mut builder = SimulationBuilder::new(arch.topology().clone())
        .adversary(params.adversary.clone())
        .shards(params.shards);
    if let Some((node, limit)) = arch.bridge_egress_limit() {
        // The shared bus serializes (egress limit) but every transaction
        // it does carry is a reliable broadcast to all listeners (p = 1).
        builder = builder
            .egress_limit(node, limit)
            .forward_probability_at(node, 1.0);
    }
    let bf_params = BeamformingParams {
        blocks: params.blocks,
        block_interval: 2,
        delays: (0..sensors.len()).map(|s| s % 4).collect(),
        config: params.config,
        fault_model: params.fault_model,
        seed: params.seed,
    };
    let outcome = run_with_builder(builder, &sensors, beamformer, bf_params);
    ArchitectureResult {
        kind: arch.kind(),
        completed: outcome.completed,
        latency_rounds: outcome.completion_round.unwrap_or(params.config.max_rounds),
        transmissions: outcome.report.packets_sent,
        energy_joules: outcome.report.total_energy().joules(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_kind(results: &[ArchitectureResult], kind: ArchitectureKind) -> &ArchitectureResult {
        results
            .iter()
            .find(|r| r.kind == kind)
            .expect("all three fabrics present")
    }

    #[test]
    fn all_three_fabrics_run_the_workload() {
        let results = compare_architectures(&ComparisonParams::quick());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.transmissions > 0, "{:?} moved no traffic", r.kind);
            assert!(r.energy_joules > 0.0);
        }
    }

    #[test]
    fn flat_and_hierarchical_complete() {
        let results = compare_architectures(&ComparisonParams::quick());
        assert!(by_kind(&results, ArchitectureKind::Flat).completed);
        assert!(by_kind(&results, ArchitectureKind::Hierarchical).completed);
    }

    #[test]
    fn figure_5_3_shape_holds() {
        // Paper: hierarchical NoC has the lowest number of message
        // transmissions; the flat NoC has slightly better latency; the
        // bus-connected hybrid is less efficient than both.
        let mut flat_lat = 0.0;
        let mut hier_lat = 0.0;
        let mut bus_lat = 0.0;
        let mut flat_tx = 0.0;
        let mut hier_tx = 0.0;
        let seeds = 3;
        for seed in 0..seeds {
            let params = ComparisonParams {
                seed,
                ..ComparisonParams::quick()
            };
            let results = compare_architectures(&params);
            flat_lat += by_kind(&results, ArchitectureKind::Flat).latency_rounds as f64;
            hier_lat += by_kind(&results, ArchitectureKind::Hierarchical).latency_rounds as f64;
            bus_lat += by_kind(&results, ArchitectureKind::BusConnected).latency_rounds as f64;
            flat_tx += by_kind(&results, ArchitectureKind::Flat).transmissions as f64;
            hier_tx += by_kind(&results, ArchitectureKind::Hierarchical).transmissions as f64;
        }
        assert!(
            hier_tx < flat_tx,
            "hierarchical should transmit less: {hier_tx} vs {flat_tx}"
        );
        assert!(
            flat_lat <= hier_lat,
            "flat should not be slower: {flat_lat} vs {hier_lat}"
        );
        assert!(
            bus_lat >= hier_lat,
            "bus serialization cannot beat the router: {bus_lat} vs {hier_lat}"
        );
    }

    #[test]
    fn hostile_template_runs_all_fabrics() {
        let results = compare_architectures(&ComparisonParams::quick().hostile());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.transmissions > 0, "{:?} moved no traffic", r.kind);
        }
    }

    #[test]
    fn hostile_is_deterministic() {
        let params = ComparisonParams::quick().hostile();
        let a = compare_architectures(&params);
        let b = compare_architectures(&params);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.latency_rounds, y.latency_rounds);
            assert_eq!(x.transmissions, y.transmissions);
        }
    }

    #[test]
    fn results_are_shard_count_independent() {
        let baseline = compare_architectures(&ComparisonParams::quick().hostile());
        for shards in [2usize, 8] {
            let params = ComparisonParams {
                shards,
                ..ComparisonParams::quick()
            }
            .hostile();
            let sharded = compare_architectures(&params);
            for (x, y) in baseline.iter().zip(&sharded) {
                assert_eq!(x.kind, y.kind, "shards={shards}");
                assert_eq!(x.completed, y.completed, "shards={shards}");
                assert_eq!(x.latency_rounds, y.latency_rounds, "shards={shards}");
                assert_eq!(x.transmissions, y.transmissions, "shards={shards}");
                assert_eq!(x.energy_joules, y.energy_joules, "shards={shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sensors per quadrant")]
    fn sensor_count_validated() {
        let params = ComparisonParams {
            sensors_per_quadrant: 9,
            ..ComparisonParams::quick()
        };
        let _ = compare_architectures(&params);
    }
}
