//! Property test: attributed events reconcile exactly with report totals.
//!
//! The engine emits one [`stochastic_noc::SimEvent`] at every decision
//! point, attributed to a tile or link. Summing those attributions back
//! up must land exactly on the global counters of the
//! [`stochastic_noc::SimulationReport`] from the same run — for every
//! counter, over random topologies, fault models, crash schedules and
//! seeds. A second bound ties the event stream to the *injection* side:
//! every CRC verdict (reject or undetected acceptance) traces back to
//! one fired upset in the [`noc_faults::FaultInjector`]'s tally.

use noc_fabric::{NodeId, Topology};
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, ErrorModel, FaultModel, OverflowMode,
};
use proptest::prelude::*;
use stochastic_noc::events::CounterSink;
use stochastic_noc::{SimEvent, SimulationBuilder, StochasticConfig};

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..6, 2usize..6).prop_map(|(w, h)| Topology::grid(w, h)),
        (3usize..6, 3usize..6).prop_map(|(w, h)| Topology::torus(w, h)),
        (4usize..12).prop_map(Topology::fully_connected),
    ]
}

fn error_model_strategy() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        Just(ErrorModel::RandomErrorVector),
        Just(ErrorModel::RandomBitError),
    ]
}

fn overflow_mode_strategy() -> impl Strategy<Value = OverflowMode> {
    prop_oneof![
        Just(OverflowMode::Probabilistic),
        (2usize..6).prop_map(|capacity| OverflowMode::Structural { capacity }),
    ]
}

fn fault_model_strategy() -> impl Strategy<Value = FaultModel> {
    (
        0.0f64..0.35,
        0.0f64..0.25,
        0.0f64..0.4,
        0.0f64..0.15,
        0.0f64..0.15,
        error_model_strategy(),
        overflow_mode_strategy(),
    )
        .prop_map(
            |(p_upset, p_overflow, sigma, p_tiles, p_links, error_model, overflow_mode)| {
                FaultModel::builder()
                    .p_upset(p_upset)
                    .p_overflow(p_overflow)
                    .sigma_synch(sigma)
                    .p_tiles(p_tiles)
                    .p_links(p_links)
                    .error_model(error_model)
                    .overflow_mode(overflow_mode)
                    .build()
                    .expect("strategy generates valid models")
            },
        )
}

type KillEvents = Vec<(usize, u64)>;

fn crash_strategy() -> impl Strategy<Value = (KillEvents, KillEvents)> {
    (
        proptest::collection::vec((0usize..64, 0u64..10), 0..3),
        proptest::collection::vec((0usize..128, 0u64..10), 0..3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counter_sink_reconciles_with_report_globals(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        (tile_kills, link_kills) in crash_strategy(),
        seed in any::<u64>(),
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 0..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let mut schedule = CrashSchedule::new();
        for (tile, round) in tile_kills {
            schedule.kill_tile(tile % n, round);
        }
        for (link, round) in link_kills {
            schedule.kill_link(link % m, round);
        }
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut sim = SimulationBuilder::new(topology)
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule)
            .seed(seed)
            .build_with_sink(CounterSink::new());
        for (src, dst, payload) in &injections {
            sim.inject(NodeId(src % n), NodeId(dst % n), payload.clone());
        }
        let report = sim.run();
        let tally = sim.injection_tally();
        let counters = sim.into_sink();

        // The headline identity: per-location event sums == report globals.
        if let Err(mismatch) = counters.reconcile(&report) {
            prop_assert!(false, "reconciliation failed: {mismatch}");
        }

        // Injection-side bound: every CRC verdict needed a fired upset;
        // an upset can also die earlier (crash drop, overflow drop), so
        // the verdicts never exceed the injections.
        let verdicts = counters.totals().crc_rejects + counters.totals().undetected_upsets;
        prop_assert!(
            verdicts <= tally.upsets,
            "CRC verdicts {verdicts} exceed fired upsets {}",
            tally.upsets
        );

        // Probabilistic overflow drops come one per fired Bernoulli hit.
        if matches!(model.overflow_mode, OverflowMode::Probabilistic) {
            prop_assert_eq!(counters.totals().overflow_drops, tally.overflow_drops);
        }
    }

    #[test]
    fn counter_sink_reconciles_under_adversary(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        cut_links in proptest::collection::vec(0usize..128, 0..4),
        cut_from in 0u64..8,
        (heal_some, heal_delta) in (any::<bool>(), 1u64..12),
        (dead_tile, dead_round) in (0usize..64, 0u64..10),
        (delay_p, reorder_p) in (0.0f64..0.3, 0.0f64..0.3),
        (byz_tile, byz_forge, byz_activation) in (0usize..64, any::<bool>(), 1u64..64),
        seed in any::<u64>(),
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 1..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let mut builder = AdversarialScenario::builder()
            .kill_tile(dead_tile % n, dead_round)
            .delay_probability(delay_p)
            .reorder_probability(reorder_p)
            .byzantine_tile(byz_tile % n)
            .byzantine_mode(if byz_forge {
                ByzantineMode::Forge
            } else {
                ByzantineMode::Replay
            })
            .byzantine_activation(byz_activation as f64 / 64.0);
        if !cut_links.is_empty() {
            let links: Vec<usize> = cut_links.iter().map(|&l| l % m).collect();
            builder = builder.cut_links(
                links,
                cut_from,
                heal_some.then(|| cut_from + heal_delta),
            );
        }
        let adversary = builder.build().expect("valid scenario");
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let mut sim = SimulationBuilder::new(topology)
            .config(config)
            .fault_model(model)
            .adversary(adversary)
            .seed(seed)
            .build_with_sink(CounterSink::new());
        for (src, dst, payload) in &injections {
            sim.inject(NodeId(src % n), NodeId(dst % n), payload.clone());
        }
        let report = sim.run();
        let counters = sim.into_sink();
        if let Err(mismatch) = counters.reconcile(&report) {
            prop_assert!(false, "adversarial reconciliation failed: {mismatch}");
        }
    }

    #[test]
    fn event_rounds_are_monotone(
        p in 0.25f64..=1.0,
        ttl in 4u8..12,
        seed in any::<u64>(),
    ) {
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(40);
        let mut sim = SimulationBuilder::square_grid(4)
            .config(config)
            .fault_model(
                FaultModel::builder()
                    .p_upset(0.1)
                    .sigma_synch(0.3)
                    .build()
                    .unwrap(),
            )
            .seed(seed)
            .build_with_sink(Vec::<SimEvent>::new());
        sim.inject(NodeId(0), NodeId(15), vec![7]);
        sim.run();
        let events = sim.into_sink();
        prop_assert!(!events.is_empty(), "a live run emits events");
        prop_assert!(
            events.windows(2).all(|w| w[0].round() <= w[1].round()),
            "emission order is round-monotone"
        );
    }
}
