//! **Figure 4-8** — MP3 encoding latency as a function of the forwarding
//! probability `p` and the data-upset probability `p_upset` (the paper's
//! contour plot).
//!
//! Expected shape: lowest latency at `p = 1, p_upset = 0`; latency grows
//! as `p → 0` and as `p_upset → 1`, up to the region where the encoding
//! cannot finish at all.

use noc_apps::mp3::{Mp3App, Mp3Params};
use noc_faults::FaultModel;
use stochastic_noc::StochasticConfig;

use crate::stats::mean;
use crate::{Scale, TrialRunner};

/// One grid cell of the latency contour.
#[derive(Debug, Clone)]
pub struct LatencyCell {
    /// Forwarding probability.
    pub p: f64,
    /// Upset probability.
    pub p_upset: f64,
    /// Mean encoding latency in rounds over completed runs.
    pub latency_rounds: Option<f64>,
    /// Fraction of runs that finished encoding.
    pub completion_ratio: f64,
}

/// Runs the Figure 4-8 grid.
pub fn run(scale: Scale) -> Vec<LatencyCell> {
    let (ps, upsets, frames): (Vec<f64>, Vec<f64>, u32) = match scale {
        Scale::Quick => (vec![0.5, 1.0], vec![0.0, 0.4], 6),
        Scale::Full => (
            vec![0.2, 0.4, 0.6, 0.8, 1.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8],
            12,
        ),
    };
    let mut cells = Vec::new();
    for &p in &ps {
        for &pu in &upsets {
            cells.push(run_cell(p, pu, frames, scale));
        }
    }
    cells
}

fn run_cell(p: f64, p_upset: f64, frames: u32, scale: Scale) -> LatencyCell {
    let reps = scale.repetitions();
    let label = format!("fig4-8/p={p:.2}/upset={p_upset:.2}");
    let outcomes = TrialRunner::for_figure(&label, reps).run(|seed| {
        let params = Mp3Params {
            frames,
            config: StochasticConfig::new(p, 20)
                .expect("valid")
                .with_max_rounds(500),
            fault_model: FaultModel::builder()
                .p_upset(p_upset)
                .build()
                .expect("valid"),
            seed,
            ..Mp3Params::default()
        };
        Mp3App::new(params).run()
    });
    let mut latencies = Vec::new();
    let mut completions = 0;
    for outcome in outcomes {
        if outcome.completed {
            completions += 1;
            if let Some(r) = outcome.completion_round {
                latencies.push(r as f64);
            }
        }
    }
    LatencyCell {
        p,
        p_upset,
        latency_rounds: mean(&latencies),
        completion_ratio: completions as f64 / reps as f64,
    }
}

/// Prints the contour grid.
pub fn print(cells: &[LatencyCell]) {
    crate::stats::print_table_header(
        "Figure 4-8: MP3 latency over (p x p_upset)",
        &["p", "p_upset", "latency [rounds]", "completion"],
    );
    for c in cells {
        println!(
            "{:.2}\t{:.2}\t{}\t{:.2}",
            c.p,
            c.p_upset,
            c.latency_rounds
                .map_or("-".to_string(), |l| format!("{l:.1}")),
            c.completion_ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(cells: &[LatencyCell], p: f64, pu: f64) -> &LatencyCell {
        cells
            .iter()
            .find(|c| c.p == p && c.p_upset == pu)
            .expect("cell present")
    }

    #[test]
    fn best_corner_is_flooding_without_upsets() {
        let cells = run(Scale::Quick);
        let best = cell(&cells, 1.0, 0.0);
        assert_eq!(best.completion_ratio, 1.0);
        let best_latency = best.latency_rounds.unwrap();
        for c in &cells {
            if let Some(l) = c.latency_rounds {
                assert!(
                    best_latency <= l + 1e-9,
                    "p={},pu={} latency {l} beats the best corner {best_latency}",
                    c.p,
                    c.p_upset
                );
            }
        }
    }

    #[test]
    fn upsets_increase_latency_at_fixed_p() {
        let cells = run(Scale::Quick);
        let clean = cell(&cells, 1.0, 0.0).latency_rounds.unwrap();
        if let Some(noisy) = cell(&cells, 1.0, 0.4).latency_rounds {
            assert!(noisy >= clean, "noisy {noisy} vs clean {clean}");
        }
    }
}
