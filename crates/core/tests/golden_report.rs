//! Golden-report determinism regression tests.
//!
//! The digests below were captured from the engine *before* the zero-copy
//! hot-path optimization (shared `Arc` frames, per-round CRC memoization,
//! reusable round arenas). The optimized engine must reproduce every
//! figure-table input byte-for-byte: same `(topology, config, fault
//! model, seed)` → identical `SimulationReport`, including per-message
//! delivery rounds. A mismatch here means the optimization changed
//! observable behaviour, not just speed.

use noc_fabric::{NodeId, Topology};
use noc_faults::{CrashSchedule, ErrorModel, FaultModel, OverflowMode};
use stochastic_noc::events::{CounterSink, JsonlSink};
use stochastic_noc::{Simulation, SimulationBuilder, SimulationReport, StochasticConfig};

/// Serializes every observable field of a report into a stable string.
fn digest(report: &SimulationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rounds={} completed={} packets={} bits={} upd={} upu={} ovf={} crash={} slips={} ttlx={}\n",
        report.rounds_executed,
        report.completed,
        report.packets_sent,
        report.bits_sent.bits(),
        report.upsets_detected,
        report.upsets_undetected,
        report.overflow_drops,
        report.crash_drops,
        report.clock_slips,
        report.ttl_expirations,
    ));
    let mut records: Vec<_> = report.records().collect();
    records.sort_by_key(|r| r.id);
    for r in records {
        out.push_str(&format!(
            "{}:{}->{} inj={} del={:?} bits={}\n",
            r.id,
            r.source,
            r.destination,
            r.injected_round,
            r.delivered_round,
            r.frame_bits.bits(),
        ));
    }
    out
}

fn check(name: &str, sim: &mut Simulation, expected: &str) {
    let report = sim.run();
    let actual = digest(&report);
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "golden digest drifted for workload `{name}`:\n--- actual ---\n{actual}"
    );
}

/// One golden workload: how to build it, what to inject, and the
/// pinned digest. The table drives the per-workload tests and the
/// obs-plane invariance suites below from a single definition.
struct GoldenWorkload {
    name: &'static str,
    builder: SimulationBuilder,
    injections: Vec<(usize, usize, &'static [u8])>,
    golden: &'static str,
}

/// Every golden workload in this file, freshly built.
fn golden_workloads() -> Vec<GoldenWorkload> {
    let grid16_model = FaultModel::builder()
        .p_upset(0.1)
        .p_tiles(0.05)
        .p_links(0.05)
        .error_model(ErrorModel::RandomBitError)
        .build()
        .unwrap();
    let torus_model = FaultModel::builder()
        .sigma_synch(0.2)
        .overflow_mode(OverflowMode::Structural { capacity: 4 })
        .build()
        .unwrap();
    let mut crash = CrashSchedule::new();
    crash.kill_tile(7, 0).kill_tile(14, 5).kill_link(3, 8);
    let crash_model = FaultModel::builder().p_upset(0.05).build().unwrap();
    vec![
        GoldenWorkload {
            name: "grid4_flooding_fault_free",
            builder: SimulationBuilder::new(Topology::grid(4, 4))
                .config(StochasticConfig::flooding(12).with_max_rounds(40))
                .seed(1),
            injections: vec![(5, 11, b"figure 3-3")],
            golden: GOLDEN_GRID4_FLOODING,
        },
        GoldenWorkload {
            name: "grid8_gossip_under_faults",
            builder: grid8_gossip_builder(),
            injections: vec![(0, 63, b"corner to corner"), (9, 54, b"x")],
            golden: GOLDEN_GRID8_GOSSIP,
        },
        GoldenWorkload {
            name: "grid16_flooding_with_defects",
            builder: SimulationBuilder::new(Topology::grid(16, 16))
                .config(StochasticConfig::flooding(24).with_max_rounds(60))
                .fault_model(grid16_model)
                .seed(7),
            injections: vec![(0, 255, b"big grid")],
            golden: GOLDEN_GRID16_FLOOD,
        },
        GoldenWorkload {
            name: "torus_structural_overflow",
            builder: SimulationBuilder::new(Topology::torus(6, 6))
                .forward_probability(0.35)
                .ttl(18)
                .max_rounds(80)
                .fault_model(torus_model)
                .seed(9),
            injections: vec![(0, 21, b"a"), (17, 4, b"bb"), (30, 8, b"ccc")],
            golden: GOLDEN_TORUS_STRUCTURAL,
        },
        GoldenWorkload {
            name: "fully_connected_with_termination",
            builder: SimulationBuilder::new(Topology::fully_connected(16))
                .config(
                    StochasticConfig::flooding(6)
                        .with_max_rounds(30)
                        .with_termination(true),
                )
                .seed(11),
            injections: vec![(2, 13, b"bus-like")],
            golden: GOLDEN_FULL16_TERMINATION,
        },
        GoldenWorkload {
            name: "grid6_with_crash_schedule",
            builder: SimulationBuilder::new(Topology::grid(6, 6))
                .forward_probability(0.6)
                .ttl(15)
                .max_rounds(60)
                .fault_model(crash_model)
                .crash_schedule(crash)
                .seed(5),
            injections: vec![(1, 34, b"survivor"), (35, 0, b"reverse")],
            golden: GOLDEN_GRID6_CRASH,
        },
    ]
}

/// Builds and checks the named table workload through the default path.
fn check_workload(name: &'static str) {
    let workload = golden_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .expect("known workload");
    let mut sim = workload.builder.build();
    for (src, dst, payload) in &workload.injections {
        sim.inject(NodeId(*src), NodeId(*dst), payload.to_vec());
    }
    check(name, &mut sim, workload.golden);
}

#[test]
fn golden_grid4_flooding_fault_free() {
    check_workload("grid4_flooding_fault_free");
}

/// The richest golden workload (upsets, overflow, slips, expirations),
/// reused by the sink-invariance tests below.
fn grid8_gossip_builder() -> SimulationBuilder {
    let model = FaultModel::builder()
        .p_upset(0.2)
        .p_overflow(0.1)
        .sigma_synch(0.3)
        .error_model(ErrorModel::RandomErrorVector)
        .build()
        .unwrap();
    SimulationBuilder::new(Topology::grid(8, 8))
        .forward_probability(0.5)
        .ttl(20)
        .max_rounds(100)
        .fault_model(model)
        .seed(42)
}

#[test]
fn golden_grid8_gossip_under_faults() {
    check_workload("grid8_gossip_under_faults");
}

/// Sinks observe, they never influence: installing any sink must leave
/// the report digest byte-identical to the default (NullSink) build.
#[test]
fn golden_digest_is_identical_with_jsonl_sink_installed() {
    let mut sim = grid8_gossip_builder().build_with_sink(JsonlSink::new(Vec::new()));
    sim.inject(NodeId(0), NodeId(63), b"corner to corner".to_vec());
    sim.inject(NodeId(9), NodeId(54), b"x".to_vec());
    let report = sim.run();
    assert_eq!(digest(&report).trim(), GOLDEN_GRID8_GOSSIP.trim());
    let sink = sim.into_sink();
    assert!(sink.events_written() > 0, "a faulty run emits events");
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert_eq!(text.lines().count() as u64, digest_event_count(&text));
}

/// Every JSONL line is one object; returns the line count as a sanity
/// proxy (full JSON validation lives in the CI bench-smoke job).
fn digest_event_count(text: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with("{\"event\":\"") && l.ends_with('}'))
        .count() as u64
}

#[test]
fn golden_digest_is_identical_with_counter_sink_installed() {
    let mut sim = grid8_gossip_builder().build_with_sink(CounterSink::new());
    sim.inject(NodeId(0), NodeId(63), b"corner to corner".to_vec());
    sim.inject(NodeId(9), NodeId(54), b"x".to_vec());
    let report = sim.run();
    assert_eq!(digest(&report).trim(), GOLDEN_GRID8_GOSSIP.trim());
    sim.into_sink()
        .reconcile(&report)
        .expect("golden workload reconciles");
}

#[test]
fn golden_grid16_flooding_with_defects() {
    check_workload("grid16_flooding_with_defects");
}

#[test]
fn golden_torus_structural_overflow() {
    check_workload("torus_structural_overflow");
}

#[test]
fn golden_fully_connected_with_termination() {
    check_workload("fully_connected_with_termination");
}

#[test]
fn golden_grid6_with_crash_schedule() {
    check_workload("grid6_with_crash_schedule");
}

/// Runs every table workload with the wall-clock plane installed (and a
/// CounterSink), at the given shard count, asserting each digest stays
/// byte-identical. Returns the registry for span assertions.
fn run_suite_with_obs(shards: usize) -> noc_obs::Metrics {
    let metrics = noc_obs::Metrics::new();
    let obs = stochastic_noc::EngineObs::new(&metrics);
    for workload in golden_workloads() {
        let mut sim = workload
            .builder
            .shards(shards)
            .obs(obs.clone())
            .build_with_sink(CounterSink::new());
        for (src, dst, payload) in &workload.injections {
            sim.inject(NodeId(*src), NodeId(*dst), payload.to_vec());
        }
        let report = sim.run();
        assert_eq!(
            digest(&report).trim(),
            workload.golden.trim(),
            "digest for `{}` drifted with obs plane enabled (shards={shards})",
            workload.name
        );
        sim.into_sink()
            .reconcile(&report)
            .expect("obs-enabled workload reconciles");
    }
    metrics
}

/// The two-plane contract, deterministic side: installing the wall-clock
/// plane must leave every golden digest byte-identical.
#[test]
fn golden_digests_are_identical_with_obs_plane_enabled() {
    let metrics = run_suite_with_obs(1);
    let snap = metrics.snapshot();
    let round = snap
        .histograms
        .iter()
        .find(|h| {
            h.name == "engine_phase_seconds"
                && h.labels == vec![("phase".to_string(), "round".to_string())]
        })
        .expect("sequential engines record round spans");
    assert!(round.count > 0, "the obs plane actually recorded spans");
    assert!(
        metrics.counter_value("engine_rounds_total").unwrap_or(0) > 0,
        "rounds were counted"
    );
}

/// Same contract through the sharded round loop: spans for every
/// sharded phase, digests still pinned.
#[test]
fn golden_digests_are_identical_with_obs_plane_enabled_and_sharded() {
    let metrics = run_suite_with_obs(4);
    let snap = metrics.snapshot();
    for phase in ["tape", "shard_fanout", "merge", "quiescence"] {
        let hist = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == "engine_phase_seconds"
                    && h.labels == vec![("phase".to_string(), phase.to_string())]
            })
            .unwrap_or_else(|| panic!("{phase} histogram registered"));
        assert!(hist.count > 0, "{phase} phase recorded spans");
    }
}

const GOLDEN_GRID4_FLOODING: &str = "\
rounds=12 completed=true packets=440 bits=95040 upd=0 upu=0 ovf=0 crash=0 slips=0 ttlx=16
m0:n5->n11 inj=0 del=Some(3) bits=216";

const GOLDEN_GRID8_GOSSIP: &str = "\
rounds=23 completed=true packets=1622 bits=291048 upd=282 upu=0 ovf=151 crash=0 slips=160 ttlx=113
m0:n0->n63 inj=0 del=None bits=264
m1:n9->n54 inj=0 del=Some(17) bits=144";

const GOLDEN_GRID16_FLOOD: &str = "\
rounds=24 completed=true packets=7238 bits=1447600 upd=643 upu=0 ovf=0 crash=665 slips=0 ttlx=215
m0:n0->n255 inj=0 del=None bits=200";

const GOLDEN_TORUS_STRUCTURAL: &str = "\
rounds=19 completed=true packets=1842 bits=280064 upd=0 upu=0 ovf=312 crash=0 slips=64 ttlx=108
m0:n0->n21 inj=0 del=Some(6) bits=144
m1:n17->n4 inj=0 del=Some(9) bits=152
m2:n30->n8 inj=0 del=Some(6) bits=160";

const GOLDEN_FULL16_TERMINATION: &str = "\
rounds=2 completed=true packets=15 bits=3000 upd=0 upu=0 ovf=0 crash=0 slips=0 ttlx=0
m0:n2->n13 inj=0 del=Some(1) bits=200";

const GOLDEN_GRID6_CRASH: &str = "\
rounds=15 completed=true packets=937 bits=182952 upd=44 upu=0 ovf=0 crash=74 slips=0 ttlx=68
m0:n1->n34 inj=0 del=Some(14) bits=200
m1:n35->n0 inj=0 del=Some(13) bits=192";
