//! True positive: ambient entropy and ad-hoc seed arithmetic.

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn trial_seed(seed: u64, trial: u64) -> u64 {
    seed + trial
}
