//! The Chapter 5 on-chip diversity comparison: identical beamforming
//! traffic over flat, hierarchical, and bus-connected fabrics
//! (Figure 5-3).
//!
//! ```text
//! cargo run --release --example diversity_comparison
//! ```

use ocsc::noc_diversity::{compare_architectures, ComparisonParams};

fn main() {
    let params = ComparisonParams::paper_scale();
    println!("on-chip diversity: beamforming over three fabrics");
    println!(
        "quadrants        : 4 x {}x{}, {} sensors each",
        params.quadrant_side, params.quadrant_side, params.sensors_per_quadrant
    );
    println!();
    println!(
        "{:<22} {:>10} {:>15} {:>10}",
        "architecture", "latency", "transmissions", "done"
    );

    for result in compare_architectures(&params) {
        println!(
            "{:<22} {:>10} {:>15} {:>10}",
            result.kind.name(),
            result.latency_rounds,
            result.transmissions,
            result.completed
        );
    }
    println!();
    println!("expected shape (paper fig 5-3): hierarchical transmits least,");
    println!("flat has slightly better latency, the bus hybrid trails both.");
}
