//! The `noc-lint: allow(<rule>, reason = "…")` annotation grammar.
//!
//! An allow annotation is a line comment of the form:
//!
//! ```text
//! // noc-lint: allow(map-iteration-order, reason = "membership-only set")
//! ```
//!
//! Placement rules:
//!
//! * a **trailing** annotation (code precedes it on the same line)
//!   suppresses matching findings on that line;
//! * an **own-line** annotation suppresses matching findings on its own
//!   line and on the following line.
//!
//! The `reason` is mandatory: an allow without one (or any comment that
//! starts with `noc-lint:` but does not parse) is itself reported as a
//! `bad-annotation` finding, so suppressions can never silently rot.

use crate::lexer::LineComment;

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory human reason.
    pub reason: String,
    /// Source line of the annotation comment.
    pub line: usize,
    /// Whether the comment stood on its own line.
    pub own_line: bool,
}

impl Allow {
    /// Does this annotation cover a finding of `rule` at `line`?
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rule == rule && (line == self.line || (self.own_line && line == self.line + 1))
    }
}

/// A malformed `noc-lint:` comment.
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    pub line: usize,
    pub message: String,
}

/// Scans the file's line comments for annotations.
pub fn parse(comments: &[LineComment]) -> (Vec<Allow>, Vec<BadAnnotation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        let body = comment.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("noc-lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => allows.push(Allow {
                rule,
                reason,
                line: comment.line,
                own_line: comment.own_line,
            }),
            Err(message) => bad.push(BadAnnotation {
                line: comment.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Parses `allow(<rule>, reason = "…")`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(args) = text.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)`, found `{text}`"));
    };
    let args = args.trim_start();
    let inner = args
        .strip_prefix('(')
        .and_then(|a| a.strip_suffix(')'))
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?;
    let (rule, rest) = inner
        .split_once(',')
        .ok_or_else(|| "missing mandatory `reason = \"...\"` argument".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("`{rule}` is not a rule name"));
    }
    let rest = rest.trim();
    let value = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "missing mandatory `reason = \"...\"` argument".to_string())?;
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: usize, own_line: bool) -> LineComment {
        LineComment {
            text: text.to_string(),
            line,
            own_line,
        }
    }

    #[test]
    fn parses_well_formed_allow() {
        let (allows, bad) = parse(&[comment(
            " noc-lint: allow(ambient-rng, reason = \"test harness\")",
            7,
            true,
        )]);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "ambient-rng");
        assert_eq!(allows[0].reason, "test harness");
        assert!(allows[0].covers("ambient-rng", 7));
        assert!(
            allows[0].covers("ambient-rng", 8),
            "own-line covers next line"
        );
        assert!(!allows[0].covers("ambient-rng", 9));
        assert!(!allows[0].covers("hot-path-panic", 7));
    }

    #[test]
    fn trailing_allow_covers_only_its_line() {
        let (allows, _) = parse(&[comment(
            " noc-lint: allow(stdout-in-lib, reason = \"x\")",
            3,
            false,
        )]);
        assert!(allows[0].covers("stdout-in-lib", 3));
        assert!(!allows[0].covers("stdout-in-lib", 4));
    }

    #[test]
    fn reason_is_mandatory() {
        let (allows, bad) = parse(&[comment(" noc-lint: allow(ambient-rng)", 1, true)]);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let (allows, bad) = parse(&[comment(
            " noc-lint: allow(ambient-rng, reason = \"  \")",
            1,
            true,
        )]);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn garbage_after_prefix_is_reported() {
        let (_, bad) = parse(&[comment(" noc-lint: disable-everything", 2, true)]);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (allows, bad) = parse(&[comment(" ordinary words about noc-lint", 1, true)]);
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
