//! Simulation outcome metrics: latency, traffic, energy, fault counters.

use std::collections::BTreeMap;

use noc_energy::{communication_energy, Bits, Joules, TechnologyLibrary};
use noc_fabric::{MessageId, NodeId};
use serde::Serialize;

/// Lifecycle record of one logical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MessageRecord {
    /// The message's id.
    pub id: MessageId,
    /// Originating tile.
    pub source: NodeId,
    /// Destination tile.
    pub destination: NodeId,
    /// Round at which the message entered the network.
    pub injected_round: u64,
    /// Round at which the destination first received it, if ever.
    pub delivered_round: Option<u64>,
    /// Wire size of the message's frames.
    pub frame_bits: Bits,
}

impl MessageRecord {
    /// Delivery latency in rounds, if delivered.
    pub fn latency(&self) -> Option<u64> {
        self.delivered_round.map(|d| d - self.injected_round)
    }
}

/// Aggregated result of a simulation run.
///
/// # Examples
///
/// ```
/// use noc_fabric::{Grid2d, NodeId};
/// use stochastic_noc::SimulationBuilder;
///
/// let mut sim = SimulationBuilder::new(Grid2d::new(4, 4)).seed(1).build();
/// let m = sim.inject(NodeId(0), NodeId(15), vec![42]);
/// let report = sim.run();
/// assert_eq!(report.messages_injected(), 1);
/// if report.delivered(m) {
///     assert!(report.average_latency().unwrap() >= 1.0);
/// }
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct SimulationReport {
    /// Rounds executed before stopping.
    pub rounds_executed: u64,
    /// True if the run stopped because every IP reported done (rather
    /// than exhausting the round budget).
    pub completed: bool,
    /// Total frame transmissions over links (each hop counts).
    pub packets_sent: u64,
    /// Total bits moved over links.
    pub bits_sent: Bits,
    /// Packets discarded by the receive-side CRC check (detected upsets).
    pub upsets_detected: u64,
    /// Scrambled packets that passed the CRC check (residual errors).
    pub upsets_undetected: u64,
    /// Packets lost to buffer overflow (probabilistic or structural).
    pub overflow_drops: u64,
    /// Packets lost because they arrived at a dead tile or crossed a dead
    /// link.
    pub crash_drops: u64,
    /// Round-boundary slips caused by synchronization errors.
    pub clock_slips: u64,
    /// Messages garbage-collected by TTL expiry, summed over all tiles.
    pub ttl_expirations: u64,
    /// Packets lost because they were forwarded onto a partitioned link.
    pub partition_drops: u64,
    /// CRC-valid forged frames emitted by Byzantine tiles.
    pub byzantine_forges: u64,
    /// Stale frames replayed by Byzantine tiles.
    pub byzantine_replays: u64,
    /// Frames held back one round by adversarial latency jitter.
    pub adversarial_delays: u64,
    /// Frames that jumped a receive queue through adversarial reordering.
    pub adversarial_reorders: u64,
    /// Rounds that ended with zero live messages while the run was still
    /// incomplete (frames in the arrival delay line, or IPs not done) —
    /// the active-frontier worklist's O(active) fast-path rounds.
    pub quiescent_rounds: u64,
    /// Per-message lifecycle records, ordered by id so [`Self::records`]
    /// iterates identically however messages were injected or merged.
    records: BTreeMap<MessageId, MessageRecord>,
    /// Technology used for energy conversion.
    tech: TechnologyLibrary,
}

impl SimulationReport {
    /// Creates an empty report (engine-side constructor).
    pub fn new(tech: TechnologyLibrary) -> Self {
        Self {
            rounds_executed: 0,
            completed: false,
            packets_sent: 0,
            bits_sent: Bits(0),
            upsets_detected: 0,
            upsets_undetected: 0,
            overflow_drops: 0,
            crash_drops: 0,
            clock_slips: 0,
            ttl_expirations: 0,
            partition_drops: 0,
            byzantine_forges: 0,
            byzantine_replays: 0,
            adversarial_delays: 0,
            adversarial_reorders: 0,
            quiescent_rounds: 0,
            records: BTreeMap::new(),
            tech,
        }
    }

    /// Registers an injected message (engine-side).
    pub fn record_injection(&mut self, record: MessageRecord) {
        self.records.insert(record.id, record);
    }

    /// Marks first delivery of a message (engine-side). Later calls for
    /// the same id are ignored. Returns `true` exactly when this call
    /// marked the delivery — the engine emits one `Delivery` event per
    /// `true`, so event counts reconcile with
    /// [`SimulationReport::messages_delivered`].
    pub fn record_delivery(&mut self, id: MessageId, round: u64) -> bool {
        if let Some(r) = self.records.get_mut(&id) {
            if r.delivered_round.is_none() {
                r.delivered_round = Some(round);
                return true;
            }
        }
        false
    }

    /// Number of messages injected into the network.
    pub fn messages_injected(&self) -> usize {
        self.records.len()
    }

    /// Number of messages that reached their destination.
    pub fn messages_delivered(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.delivered_round.is_some())
            .count()
    }

    /// Fraction of injected messages delivered (1.0 for an empty run).
    pub fn delivery_ratio(&self) -> f64 {
        if self.records.is_empty() {
            1.0
        } else {
            self.messages_delivered() as f64 / self.records.len() as f64
        }
    }

    /// Was this message delivered?
    pub fn delivered(&self, id: MessageId) -> bool {
        self.records
            .get(&id)
            .is_some_and(|r| r.delivered_round.is_some())
    }

    /// Latency in rounds of a delivered message.
    pub fn latency(&self, id: MessageId) -> Option<u64> {
        self.records.get(&id).and_then(MessageRecord::latency)
    }

    /// The record of a message.
    pub fn record(&self, id: MessageId) -> Option<&MessageRecord> {
        self.records.get(&id)
    }

    /// Iterates over all message records in ascending id order.
    pub fn records(&self) -> impl Iterator<Item = &MessageRecord> {
        self.records.values()
    }

    /// Mean delivery latency over delivered messages, in rounds.
    pub fn average_latency(&self) -> Option<f64> {
        let latencies: Vec<u64> = self
            .records
            .values()
            .filter_map(MessageRecord::latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
        }
    }

    /// Worst delivery latency over delivered messages, in rounds.
    pub fn max_latency(&self) -> Option<u64> {
        self.records
            .values()
            .filter_map(MessageRecord::latency)
            .max()
    }

    /// Total communication energy under Equation 3.
    pub fn total_energy(&self) -> Joules {
        communication_energy(self.bits_sent.bits(), Bits(1), self.tech.energy_per_bit)
    }

    /// The technology point energy figures use.
    pub fn technology(&self) -> &TechnologyLibrary {
        &self.tech
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, injected: u64) -> MessageRecord {
        MessageRecord {
            id: MessageId(id),
            source: NodeId(0),
            destination: NodeId(1),
            injected_round: injected,
            delivered_round: None,
            frame_bits: Bits(100),
        }
    }

    fn report() -> SimulationReport {
        SimulationReport::new(TechnologyLibrary::NOC_LINK_0_25UM)
    }

    #[test]
    fn empty_report_statistics() {
        let r = report();
        assert_eq!(r.messages_injected(), 0);
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.average_latency(), None);
        assert_eq!(r.max_latency(), None);
        assert_eq!(r.total_energy(), Joules::ZERO);
    }

    #[test]
    fn delivery_bookkeeping() {
        let mut r = report();
        r.record_injection(record(1, 2));
        r.record_injection(record(2, 0));
        r.record_delivery(MessageId(1), 5);
        assert!(r.delivered(MessageId(1)));
        assert!(!r.delivered(MessageId(2)));
        assert_eq!(r.latency(MessageId(1)), Some(3));
        assert_eq!(r.delivery_ratio(), 0.5);
        assert_eq!(r.average_latency(), Some(3.0));
        assert_eq!(r.max_latency(), Some(3));
    }

    #[test]
    fn first_delivery_wins() {
        let mut r = report();
        r.record_injection(record(1, 0));
        r.record_delivery(MessageId(1), 4);
        r.record_delivery(MessageId(1), 9);
        assert_eq!(r.latency(MessageId(1)), Some(4));
    }

    #[test]
    fn delivery_of_unknown_message_is_ignored() {
        let mut r = report();
        r.record_delivery(MessageId(42), 1);
        assert!(!r.delivered(MessageId(42)));
        assert_eq!(r.messages_injected(), 0);
    }

    #[test]
    fn energy_follows_bits_sent() {
        let mut r = report();
        r.bits_sent = Bits(1_000);
        let expect = 1000.0 * 2.4e-10;
        assert!((r.total_energy().joules() - expect).abs() < 1e-15);
    }

    #[test]
    fn record_view_is_independent_of_insertion_order() {
        // Regression for the map-iteration-order invariant: the records
        // view (which digests, tables and JSON reports iterate) must not
        // depend on the order messages were injected or delivery marks
        // arrived — BTreeMap keys it by id.
        let ids: Vec<u64> = vec![9, 2, 17, 4, 0, 12, 7];
        let mut forward = report();
        for &id in &ids {
            forward.record_injection(record(id, id % 3));
        }
        let mut reversed = report();
        for &id in ids.iter().rev() {
            reversed.record_injection(record(id, id % 3));
        }
        for (i, &id) in ids.iter().enumerate() {
            forward.record_delivery(MessageId(id), 10 + i as u64);
        }
        for (i, &id) in ids.iter().enumerate().collect::<Vec<_>>().into_iter().rev() {
            reversed.record_delivery(MessageId(id), 10 + i as u64);
        }
        let f: Vec<_> = forward.records().collect();
        let r: Vec<_> = reversed.records().collect();
        assert_eq!(f, r, "iteration order must be by id, not insertion");
        let sorted: Vec<u64> = f.iter().map(|rec| rec.id.0).collect();
        let mut expect = ids.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_eq!(forward.average_latency(), reversed.average_latency());
    }

    #[test]
    fn average_over_multiple_messages() {
        let mut r = report();
        for (id, inj, del) in [(1, 0, 2), (2, 0, 4), (3, 1, 7)] {
            r.record_injection(record(id, inj));
            r.record_delivery(MessageId(id), del);
        }
        assert_eq!(r.average_latency(), Some((2.0 + 4.0 + 6.0) / 3.0));
        assert_eq!(r.max_latency(), Some(6));
    }
}
