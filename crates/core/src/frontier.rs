//! Active-frontier bookkeeping: which tiles have work this round.
//!
//! A mega-grid trial spends most of its late rounds quiescent — the
//! epidemic has died down, yet the engine used to walk every tile in
//! every phase. This module provides the two structures that make each
//! phase O(active) instead of O(n):
//!
//! * [`TileSet`] — a dense bitset over tile indices with ascending-order
//!   iteration, so frontier walks visit tiles in exactly the order the
//!   full `0..n` loop did (the draw-order invariant every golden digest
//!   depends on);
//! * [`Inflight`] — per-arena frame counters plus the tile sets of
//!   non-empty inbox vectors, rotated in lockstep with the engine's
//!   arrival arenas. Quiescence detection reads these counters instead
//!   of scanning the arenas, and correctly sees chaos-delayed frames
//!   parked in the `later` arena as still-pending work.
//!
//! The sets are *exact* (maintained at every transition from empty to
//! non-empty and back), which `Simulation::step` re-asserts against the
//! O(n) scans in debug builds.

/// A dense bitset over tile indices `0..n` with ascending iteration.
#[derive(Debug, Clone, Default)]
pub(crate) struct TileSet {
    words: Vec<u64>,
}

impl TileSet {
    /// An empty set sized for tiles `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Adds `tile` to the set.
    #[inline]
    pub fn insert(&mut self, tile: usize) {
        self.words[tile / 64] |= 1u64 << (tile % 64);
    }

    /// Removes `tile` from the set.
    #[inline]
    pub fn remove(&mut self, tile: usize) {
        self.words[tile / 64] &= !(1u64 << (tile % 64));
    }

    /// Is `tile` in the set?
    #[inline]
    #[allow(dead_code)] // used by the engine's debug-build exactness asserts and unit tests
    pub fn contains(&self, tile: usize) -> bool {
        (self.words[tile / 64] >> (tile % 64)) & 1 == 1
    }

    /// Empties the set, keeping its capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// True when no tile is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of tiles in the set.
    #[allow(dead_code)] // exercised by unit tests; kept as the bitset's natural API
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set tiles in ascending index order.
    pub fn iter(&self) -> TileSetIter<'_> {
        self.iter_range(0, self.words.len() * 64)
    }

    /// Iterates the set tiles in `lo..hi`, in ascending index order —
    /// the shard-partition view of the frontier.
    pub fn iter_range(&self, lo: usize, hi: usize) -> TileSetIter<'_> {
        let start_word = (lo / 64).min(self.words.len());
        let mut current = self.words.get(start_word).copied().unwrap_or(0);
        // Mask off bits below `lo` inside the first word.
        if start_word * 64 < lo {
            current &= !0u64 << (lo % 64);
        }
        TileSetIter {
            words: &self.words,
            word: start_word,
            current,
            hi,
        }
    }
}

/// Ascending iterator over a [`TileSet`] range.
pub(crate) struct TileSetIter<'a> {
    words: &'a [u64],
    word: usize,
    current: u64,
    hi: usize,
}

impl Iterator for TileSetIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                let tile = self.word * 64 + bit;
                if tile >= self.hi {
                    return None;
                }
                self.current &= self.current - 1;
                return Some(tile);
            }
            self.word += 1;
            if self.word >= self.words.len() || self.word * 64 >= self.hi {
                return None;
            }
            self.current = self.words[self.word];
        }
    }
}

/// Frame count and non-empty tile set of one arrival arena.
#[derive(Debug, Clone)]
pub(crate) struct ArenaTrack {
    /// Total frames parked in this arena.
    pub frames: u64,
    /// Tiles whose vector in this arena is non-empty.
    pub tiles: TileSet,
}

impl ArenaTrack {
    pub fn new(n: usize) -> Self {
        Self {
            frames: 0,
            tiles: TileSet::new(n),
        }
    }

    /// Resets to the empty-arena state.
    pub fn clear(&mut self) {
        self.frames = 0;
        self.tiles.clear();
    }
}

/// Tracks the engine's three arrival arenas through their per-round
/// rotation: `next` arrives next round, `later` the round after, and
/// `scratch` is the arena being drained this round.
#[derive(Debug, Clone)]
pub(crate) struct Inflight {
    pub next: ArenaTrack,
    pub later: ArenaTrack,
    pub scratch: ArenaTrack,
}

impl Inflight {
    pub fn new(n: usize) -> Self {
        Self {
            next: ArenaTrack::new(n),
            later: ArenaTrack::new(n),
            scratch: ArenaTrack::new(n),
        }
    }

    /// Mirrors the engine's arena rotation (`next` → `scratch`,
    /// `later` → `next`, drained `scratch` → `later`).
    pub fn rotate(&mut self) {
        std::mem::swap(&mut self.next, &mut self.scratch);
        std::mem::swap(&mut self.next, &mut self.later);
    }

    /// Frames currently in flight (arriving this round or later).
    pub fn pending_frames(&self) -> u64 {
        self.next.frames + self.later.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = TileSet::new(130);
        assert!(!set.contains(0));
        set.insert(0);
        set.insert(63);
        set.insert(64);
        set.insert(129);
        assert!(set.contains(0));
        assert!(set.contains(63));
        assert!(set.contains(64));
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.len(), 4);
        set.remove(63);
        assert!(!set.contains(63));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut set = TileSet::new(200);
        for tile in [150, 3, 64, 0, 199, 65] {
            set.insert(tile);
        }
        let seen: Vec<usize> = set.iter().collect();
        assert_eq!(seen, vec![0, 3, 64, 65, 150, 199]);
    }

    #[test]
    fn range_iteration_respects_bounds() {
        let mut set = TileSet::new(200);
        for tile in [0, 10, 63, 64, 100, 127, 128, 199] {
            set.insert(tile);
        }
        let seen: Vec<usize> = set.iter_range(10, 128).collect();
        assert_eq!(seen, vec![10, 63, 64, 100, 127]);
        let seen: Vec<usize> = set.iter_range(64, 64).collect();
        assert!(seen.is_empty());
        let seen: Vec<usize> = set.iter_range(0, 200).collect();
        assert_eq!(seen.len(), set.len());
    }

    #[test]
    fn range_iteration_matches_filtered_full_iteration() {
        // Pseudo-random membership via a fixed multiplicative pattern.
        let n = 517;
        let mut set = TileSet::new(n);
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for tile in 0..n {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            if x & 3 == 0 {
                set.insert(tile);
            }
        }
        for (lo, hi) in [(0, n), (5, 5), (5, 6), (60, 70), (100, 517), (0, 64)] {
            let ranged: Vec<usize> = set.iter_range(lo, hi).collect();
            let filtered: Vec<usize> = set.iter().filter(|&t| t >= lo && t < hi).collect();
            assert_eq!(ranged, filtered, "range ({lo}, {hi})");
        }
    }

    #[test]
    fn clear_and_empty() {
        let mut set = TileSet::new(10);
        assert!(set.is_empty());
        set.insert(7);
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn inflight_rotation_cycles_arenas() {
        let mut inflight = Inflight::new(8);
        inflight.next.frames = 1;
        inflight.next.tiles.insert(1);
        inflight.later.frames = 2;
        inflight.later.tiles.insert(2);
        inflight.rotate();
        // Old `next` is now being drained; old `later` arrives next.
        assert_eq!(inflight.scratch.frames, 1);
        assert!(inflight.scratch.tiles.contains(1));
        assert_eq!(inflight.next.frames, 2);
        assert!(inflight.next.tiles.contains(2));
        assert_eq!(inflight.later.frames, 0);
        assert_eq!(inflight.pending_frames(), 2);
    }
}
