//! Golden ui-test corpus: every rule is exercised against a fixture
//! mini-tree (`tests/corpus/<rule>/crates/…`) whose paths mimic the real
//! workspace so path-scoped rules fire. The full JSON report for each
//! tree is pinned byte-for-byte in `expected.json` — regenerate with
//! `cargo run -p noc-lint -- --root crates/lint/tests/corpus/<rule>
//! --format json` after an intentional rule change, and hand-verify the
//! diff before committing.

use std::fs;
use std::path::{Path, PathBuf};

use noc_lint::{lint_root, render_json, RULES};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The fixture directory name for a kebab-case rule.
fn fixture_name(rule: &str) -> String {
    rule.replace('-', "_")
}

// Satellite proof that the checkpoint-coverage fixture pair is real,
// compiling Rust, not pseudo-code the lexer happens to accept: both
// files are included verbatim and exercised below.
#[allow(dead_code)]
mod checkpoint_fixture {
    include!("corpus/checkpoint_coverage/crates/core/src/engine.rs");
    include!("corpus/checkpoint_coverage/crates/core/src/checkpoint.rs");
}

#[test]
fn checkpoint_fixture_pair_compiles_and_captures() {
    let mut sim = checkpoint_fixture::Simulation {
        round: 0,
        droppable_cache: Vec::new(),
        frontier_cache: Vec::new(),
    };
    sim.step();
    let ckpt = checkpoint_fixture::Checkpoint::capture(&sim);
    assert_eq!(ckpt.round, 1, "the fixture checkpoint captures `round`");
    assert_eq!(
        sim.droppable_cache,
        vec![1],
        "`droppable_cache` exists but no checkpoint site references it"
    );
}

#[test]
fn every_rule_has_a_nonempty_explain_entry() {
    let mut seen = std::collections::BTreeSet::new();
    for rule in RULES {
        assert!(
            !rule.invariant.trim().is_empty(),
            "rule `{}` has an empty --explain invariant",
            rule.name
        );
        assert_eq!(
            rule.name,
            rule.name.to_ascii_lowercase(),
            "rule `{}` is not kebab-case",
            rule.name
        );
        assert!(
            !rule.name.contains('_') && !rule.name.contains(' '),
            "rule `{}` is not kebab-case",
            rule.name
        );
        assert!(seen.insert(rule.name), "rule `{}` listed twice", rule.name);
    }
}

#[test]
fn every_rule_has_a_corpus_fixture() {
    for rule in RULES {
        let dir = corpus_dir().join(fixture_name(rule.name));
        assert!(
            dir.is_dir(),
            "rule `{}` has no fixture tree at {}",
            rule.name,
            dir.display()
        );
    }
}

#[test]
fn corpus_json_matches_expected_byte_for_byte() {
    for rule in RULES {
        let dir = corpus_dir().join(fixture_name(rule.name));
        let report = lint_root(&dir).expect("fixture tree lints");
        let got = render_json(&report);
        let expected_path = dir.join("expected.json");
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("{}: {e}", expected_path.display()));
        assert_eq!(
            got,
            expected,
            "JSON drift for rule `{}`; if the change is intentional, \
             regenerate {} and hand-verify the diff",
            rule.name,
            expected_path.display()
        );
    }
}

#[test]
fn each_fixture_has_true_positive_and_allowlisted_negative() {
    for rule in RULES {
        let dir = corpus_dir().join(fixture_name(rule.name));
        let report = lint_root(&dir).expect("fixture tree lints");
        let of_rule: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == rule.name)
            .collect();
        assert!(
            of_rule.iter().any(|f| !f.allowed),
            "rule `{}` fixture lacks an unallowed true positive",
            rule.name
        );
        let allowed: Vec<_> = of_rule.iter().filter(|f| f.allowed).collect();
        assert!(
            !allowed.is_empty(),
            "rule `{}` fixture lacks an allowlisted negative",
            rule.name
        );
        for f in allowed {
            let reason = f.reason.as_deref().unwrap_or("");
            assert!(
                !reason.trim().is_empty(),
                "rule `{}` allowlisted finding carries no reason",
                rule.name
            );
        }
        // Fixtures must not trip rules they do not target (a noisy
        // fixture would hide scoping regressions).
        assert_eq!(
            report.findings.len(),
            of_rule.len(),
            "rule `{}` fixture trips foreign rules: {:?}",
            rule.name,
            report
                .findings
                .iter()
                .map(|f| (f.rule, f.file.as_str(), f.line))
                .collect::<Vec<_>>()
        );
    }
}
